"""Cross-backend parity: the N-Queens work pool on the live runtime.

The same decomposition as `repro.apps.queens` (simulated), rebuilt with
live objects: a WorkPool object on node 0, worker threads on every node
pulling batches through function-shipped invocations.  Counting is real,
so the total must match the known solution counts.
"""

import threading

import pytest

from repro.apps.queens import (
    KNOWN_SOLUTIONS,
    count_completions,
    seed_prefixes,
)
from repro.runtime import AmberObject, Cluster, CondVar, current_node


class LiveWorkPool(AmberObject):
    def __init__(self, prefixes):
        self._lock = threading.Lock()
        self._work = list(prefixes)
        self.solutions = 0
        self.units_done = 0

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def take(self, batch=2):
        with self._lock:
            units, self._work = (self._work[:batch],
                                 self._work[batch:])
            return units

    def report(self, solutions, units):
        with self._lock:
            self.solutions += solutions
            self.units_done += units

    def summary(self):
        with self._lock:
            return self.solutions, self.units_done


class LiveWorker(AmberObject):
    def __init__(self, n, pool):
        self.n = n
        self.pool = pool

    def run(self, batch=2):
        solved = 0
        nodes_seen = set()
        while True:
            prefixes = self.pool.take(batch)
            if not prefixes:
                return solved, sorted(nodes_seen)
            nodes_seen.add(current_node())
            total = 0
            for prefix in prefixes:
                solutions, _ = count_completions(self.n, prefix)
                total += solutions
            self.pool.report(total, len(prefixes))
            solved += len(prefixes)


@pytest.fixture(scope="module")
def cluster():
    with Cluster(nodes=3) as c:
        yield c


class TestLiveWorkPool:
    def test_distributed_count_is_correct(self, cluster):
        n = 8
        prefixes = seed_prefixes(n, 2)
        pool = cluster.create(LiveWorkPool, prefixes, node=0)
        workers = [cluster.create(LiveWorker, n, pool, node=node)
                   for node in range(3)]
        threads = [cluster.fork(worker, "run") for worker in workers]
        per_worker = [thread.join(timeout=60) for thread in threads]
        solutions, units = pool.summary()
        assert solutions == KNOWN_SOLUTIONS[n]
        assert units == len(prefixes)
        assert sum(solved for solved, _ in per_worker) == len(prefixes)
        # Each worker executed on its own node.
        for node, (_, nodes_seen) in enumerate(per_worker):
            assert nodes_seen in ([], [node])

    def test_pool_empties_exactly_once(self, cluster):
        prefixes = seed_prefixes(6, 1)
        pool = cluster.create(LiveWorkPool, prefixes, node=1)
        worker = cluster.create(LiveWorker, 6, pool, node=2)
        thread = cluster.fork(worker, "run", 3)
        solved, _ = thread.join(timeout=30)
        assert solved == len(prefixes)
        assert pool.take() == []
