"""AmberElide: classification, artifact hygiene, runtime elision.

The dynamic suite itself lives in ``repro.analyze.elide.scenario``
(``repro elide --verify``); these tests pin the load-bearing unit
behaviors — cross-process artifact determinism, loads that never
raise, stale artifacts that disable silently, and the on/off
equivalence of the elision fast paths.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analyze.elide import runtime as ert
from repro.analyze.elide.artifact import (
    ELIDE_SCHEMA,
    ElideArtifact,
    build_artifact,
    load_artifact,
)
from repro.analyze.elide.diagnostics import diagnose
from repro.analyze.elide.fixtures import FIXTURES
from repro.analyze.elide.model import classify_sources
from repro.analyze.elide.scenario import run_elide_scenarios
from repro.sim.cluster import ClusterConfig
from repro.sim.program import AmberProgram

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _no_leaked_activation():
    """Every test starts and ends with no elision set active."""
    if ert.active() is not None:
        ert.deactivate()
    yield
    if ert.active() is not None:
        ert.deactivate()


def _fixture_artifact(name):
    fx = FIXTURES[name]
    return build_artifact(classify_sources(fx.sources()), fx.sources())


def _run_main(main, nodes=2, cpus_per_node=2):
    config = ClusterConfig(nodes=nodes, cpus_per_node=cpus_per_node)
    result = AmberProgram(config).run(main)
    counters = result.cluster.metrics.counters
    return {
        "value": result.value,
        "elapsed_us": result.elapsed_us,
        "events": result.cluster.sim.events_run,
        "elided": (counters["lock_elided_total"].value
                   if "lock_elided_total" in counters else 0),
        "bailouts": (counters["lock_elide_bailout_total"].value
                     if "lock_elide_bailout_total" in counters else 0),
    }


def _run(name):
    fx = FIXTURES[name]
    return _run_main(fx.load_main(), nodes=fx.nodes,
                     cpus_per_node=fx.cpus_per_node)


class TestClassification:
    def test_confined_counter_lock_is_elidable(self):
        fx = FIXTURES["confined-counter"]
        model = classify_sources(fx.sources())
        assert set(model.confined) == {"Tally"}
        artifact = build_artifact(model, fx.sources())
        assert artifact.lock_owners == [(ert.MAIN_OWNER, "Lock")]

    def test_shared_pool_lock_is_not_elidable(self):
        artifact = _fixture_artifact("shared-pool")
        assert artifact.lock_owners == []
        assert "JobPool" not in artifact.confined

    def test_immutable_table_classes(self):
        fx = FIXTURES["immutable-table"]
        model = classify_sources(fx.sources())
        assert set(model.immutable) == {"SumTable", "TableReader"}

    def test_every_fixture_matches_its_catalog_entry(self):
        for fx in FIXTURES.values():
            model = classify_sources(fx.sources())
            findings = diagnose(model, fx.sources())
            assert sorted(f.rule for f in findings) == \
                sorted(fx.expected_rules), fx.name
            assert set(model.confined) == set(fx.confined), fx.name
            assert set(model.immutable) == set(fx.immutable), fx.name
            artifact = build_artifact(model, fx.sources())
            assert artifact.lock_owners == \
                sorted(fx.elidable_owners), fx.name

    def test_container_append_leaks_lock(self):
        sources = [("<case>", (
            "from repro.sim.sync import Lock\n"
            "def main(ctx):\n"
            "    stash = []\n"
            "    gate = yield New(Lock)\n"
            "    stash.append(gate)\n"
            "    yield Invoke(gate, 'acquire')\n"
            "    yield Invoke(gate, 'release')\n"))]
        artifact = build_artifact(classify_sources(sources), sources)
        assert artifact.lock_owners == []


class TestArtifact:
    def test_byte_identical_across_processes(self, tmp_path):
        """Two freshly started interpreters must emit the same bytes:
        no dict-order, hash-seed, or id() dependence anywhere."""
        script = (
            "import sys\n"
            "from repro.analyze.elide.artifact import build_artifact\n"
            "from repro.analyze.elide.fixtures import FIXTURES\n"
            "from repro.analyze.elide.model import classify_sources\n"
            "for fx in FIXTURES.values():\n"
            "    art = build_artifact(classify_sources(fx.sources()),\n"
            "                         fx.sources())\n"
            "    sys.stdout.write(art.fingerprint + '\\n')\n"
            "    sys.stdout.write(art.to_json())\n")
        outs = []
        for seed in ("0", "1"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, cwd=str(REPO),
                env={"PYTHONPATH": str(REPO / "src"),
                     "PYTHONHASHSEED": seed},
                timeout=120)
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]

    @pytest.mark.parametrize("text", [
        "", "{", "[1, 2, 3]", "null", "\x00\x01",
        '{"schema": "amberelide/99"}',
    ])
    def test_load_never_raises(self, tmp_path, text):
        path = tmp_path / "artifact.json"
        path.write_text(text)
        artifact = load_artifact(str(path))
        assert not artifact.valid

    def test_load_tolerates_mistyped_fields(self, tmp_path):
        """Right schema, hostile field types: loads without raising
        and carries no elision facts."""
        path = tmp_path / "artifact.json"
        path.write_text('{"schema": "amberelide/1", "locks": "nope", '
                        '"sources": 7, "confined": 3, '
                        '"immutable": {"x": 1}}')
        artifact = load_artifact(str(path))
        assert artifact.valid
        assert artifact.lock_owners == []
        assert artifact.skip_classes == []

    def test_load_missing_file(self, tmp_path):
        artifact = load_artifact(str(tmp_path / "absent.json"))
        assert not artifact.valid

    def test_truncated_roundtrip(self, tmp_path):
        good = _fixture_artifact("confined-counter")
        path = tmp_path / "artifact.json"
        path.write_text(good.to_json()[:-25])
        assert not load_artifact(str(path)).valid

    def test_roundtrip_preserves_fingerprint(self, tmp_path):
        good = _fixture_artifact("scratch-workers")
        path = tmp_path / "artifact.json"
        path.write_text(good.to_json())
        loaded = load_artifact(str(path))
        assert loaded.valid
        assert loaded.fingerprint == good.fingerprint
        assert loaded.to_json() == good.to_json()

    def test_stale_source_disables_silently(self):
        fx = FIXTURES["confined-counter"]
        artifact = _fixture_artifact("confined-counter")
        before = ert.STALE_DISABLES
        ok = artifact.activate(
            source_texts={fx.path: fx.source + "\n# drift\n"})
        assert ok is False
        assert ert.active() is None
        assert ert.STALE_DISABLES == before + 1

    def test_invalid_schema_never_activates(self):
        artifact = ElideArtifact(schema="amberelide/2")
        assert artifact.activate() is False
        assert ert.active() is None

    def test_double_activation_rejected(self):
        fx = FIXTURES["confined-counter"]
        artifact = _fixture_artifact("confined-counter")
        assert artifact.activate(source_texts=dict(fx.sources()))
        with pytest.raises(RuntimeError):
            ert.activate(artifact.to_elide_set())
        ert.deactivate()

    def test_audit_mode_skips_nothing(self):
        fx = FIXTURES["confined-counter"]
        artifact = _fixture_artifact("confined-counter")
        assert artifact.activate(source_texts=dict(fx.sources()),
                                 audit=True)
        assert ert.SKIP == frozenset()
        assert ert.LOCK_OWNERS  # elision itself stays on in audit
        ert.deactivate()


class TestElisionRuntime:
    @pytest.mark.parametrize("name", ["confined-counter",
                                      "scratch-workers"])
    def test_elision_is_unobservable_but_cheaper(self, name):
        fx = FIXTURES[name]
        off = _run(name)
        artifact = _fixture_artifact(name)
        assert artifact.activate(source_texts=dict(fx.sources()))
        try:
            on = _run(name)
        finally:
            ert.deactivate()
        assert off["value"] == on["value"] == fx.expect_result
        assert off["elapsed_us"] == on["elapsed_us"]
        assert on["events"] < off["events"]
        assert on["elided"] > 0
        assert on["bailouts"] == 0
        assert off["elided"] == 0

    @pytest.mark.parametrize("name", ["shared-pool", "immutable-table"])
    def test_unelidable_fixtures_run_identically(self, name):
        fx = FIXTURES[name]
        off = _run(name)
        artifact = _fixture_artifact(name)
        assert artifact.activate(source_texts=dict(fx.sources()))
        try:
            on = _run(name)
        finally:
            ert.deactivate()
        assert off == on
        assert on["elided"] == 0

    # Guaranteed contention: each holder keeps the gate across a long
    # charge, that dwarfs fork latency, so the second holder's
    # acquire always sees it held.
    _CONTENDED = (
        "from repro.sim import SimObject\n"
        "from repro.sim.syscalls import Charge, Fork, Invoke, Join, New\n"
        "from repro.sim.sync import Lock\n"
        "class Holder(SimObject):\n"
        "    def __init__(self, gate) -> None:\n"
        "        self.gate = gate\n"
        "    def run(self, ctx):\n"
        "        yield Invoke(self.gate, 'acquire')\n"
        "        yield Charge(100000.0)\n"
        "        yield Invoke(self.gate, 'release')\n"
        "        return 1\n"
        "def main(ctx):\n"
        "    gate = yield New(Lock)\n"
        "    threads = []\n"
        "    for index in range(2):\n"
        "        holder = yield New(Holder, gate, on_node=index)\n"
        "        threads.append((yield Fork(holder, 'run')))\n"
        "    total = 0\n"
        "    for thread in threads:\n"
        "        total += yield Join(thread)\n"
        "    return total\n")

    def _contended_main(self):
        namespace = {}
        exec(compile(self._CONTENDED, "<contended>", "exec"), namespace)
        return namespace["main"]

    def test_contended_elided_lock_bails_out_correctly(self):
        """Force-mark a genuinely contended lock elidable: mutual
        exclusion must still hold (the held-lock fast path bails to
        the slow generator) and the program result must not change."""
        off = _run_main(self._contended_main())
        ert.activate(ert.ElideSet(
            skip_classes=frozenset(),
            lock_owners=frozenset({(ert.MAIN_OWNER, "Lock")}),
            confined=frozenset(), immutable=frozenset(),
            fingerprint="forced"), audit=False)
        try:
            on = _run_main(self._contended_main())
        finally:
            ert.deactivate()
        assert on["value"] == off["value"] == 2
        assert on["elapsed_us"] == off["elapsed_us"]
        assert on["bailouts"] > 0


class TestScenarioSuite:
    def test_fast_suite_passes(self):
        report = run_elide_scenarios()
        assert report.ok, report.render()
        assert {o.name for o in report.outcomes} == {
            "deterministic-analysis", "fixture-catalog",
            "artifact-roundtrip", "hint-promotion", "soundness-audit"}
        assert report.artifact.schema == ELIDE_SCHEMA

    def test_report_json_shape(self):
        report = run_elide_scenarios(paths=["src/repro/apps"])
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["schema"] == "amberelide-report/1"
        assert payload["artifact"]["schema"] == ELIDE_SCHEMA
        assert all(o["ok"] for o in payload["outcomes"])
