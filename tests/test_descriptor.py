"""Tests for object descriptors (paper section 3.2)."""

import pytest

from repro.core.descriptor import Descriptor, DescriptorState, DescriptorTable
from repro.errors import DescriptorError


class TestDescriptorTable:
    def test_missing_entry_means_uninitialized(self):
        """A missing entry is the zero-filled page of section 3.2: the
        object is remote, location unknown."""
        table = DescriptorTable(0)
        assert table.lookup(0x1000) is None
        assert not table.is_resident(0x1000)

    def test_set_resident(self):
        table = DescriptorTable(0)
        table.set_resident(0x1000)
        assert table.is_resident(0x1000)
        descriptor = table.lookup(0x1000)
        assert descriptor.state is DescriptorState.RESIDENT

    def test_forwarding_address(self):
        table = DescriptorTable(0)
        table.set_resident(0x1000)
        table.set_forwarding(0x1000, 3)
        assert not table.is_resident(0x1000)
        assert table.lookup(0x1000).forward_to == 3

    def test_forwarding_to_self_rejected(self):
        table = DescriptorTable(2)
        with pytest.raises(DescriptorError):
            table.set_forwarding(0x1000, 2)

    def test_hint_never_downgrades_resident(self):
        """Path-compression hints are advisory; they must not clobber a
        RESIDENT descriptor (the object really is here)."""
        table = DescriptorTable(0)
        table.set_resident(0x1000)
        table.update_hint(0x1000, 5)
        assert table.is_resident(0x1000)

    def test_hint_updates_stale_forwarding(self):
        table = DescriptorTable(0)
        table.set_forwarding(0x1000, 1)
        table.update_hint(0x1000, 4)
        assert table.lookup(0x1000).forward_to == 4

    def test_hint_to_self_ignored(self):
        table = DescriptorTable(2)
        table.set_forwarding(0x1000, 1)
        table.update_hint(0x1000, 2)
        assert table.lookup(0x1000).forward_to == 1

    def test_hint_installs_on_uninitialized(self):
        table = DescriptorTable(0)
        table.update_hint(0x1000, 4)
        assert table.lookup(0x1000).forward_to == 4

    def test_clear_returns_to_uninitialized(self):
        table = DescriptorTable(0)
        table.set_resident(0x1000)
        table.clear(0x1000)
        assert table.lookup(0x1000) is None
        # Clearing twice is harmless (page already zero-filled).
        table.clear(0x1000)

    def test_len_and_contains(self):
        table = DescriptorTable(0)
        table.set_resident(0x1000)
        table.set_forwarding(0x2000, 1)
        assert len(table) == 2
        assert 0x1000 in table
        assert 0x3000 not in table


class TestDescriptor:
    def test_resident_property(self):
        assert Descriptor(DescriptorState.RESIDENT).resident
        assert not Descriptor(DescriptorState.FORWARDED, 1).resident
