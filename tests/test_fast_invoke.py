"""Tests for FastInvoke, the section 3.6 co-residency optimization."""

import pytest

from repro.errors import InvocationError
from repro.sim.objects import SimObject
from repro.sim.syscalls import (
    Attach,
    Charge,
    FastInvoke,
    Invoke,
    MoveTo,
    New,
    Unattach,
)
from tests.helpers import Cell, run, run_free


class Holder(SimObject):
    """An object with a member-style lock it calls through FastInvoke."""

    def __init__(self, member):
        self.member = member

    def fast_get(self, ctx):
        value = yield FastInvoke(self.member, "get")
        return value

    def fast_set(self, ctx, value):
        yield FastInvoke(self.member, "set", value)

    def slow_get(self, ctx):
        return (yield Invoke(self.member, "get"))

    def self_call(self, ctx):
        return (yield FastInvoke(self, "slow_get"))

    def timed_pair(self, ctx, rounds):
        t0 = ctx.now_us
        for _ in range(rounds):
            yield Invoke(self.member, "get")
        normal = ctx.now_us - t0
        t0 = ctx.now_us
        for _ in range(rounds):
            yield FastInvoke(self.member, "get")
        fast = ctx.now_us - t0
        return normal, fast


def make_pair(attach=True):
    def main(ctx):
        member = yield New(Cell, 7)
        holder = yield New(Holder, member)
        if attach:
            yield Attach(member, holder)
        return holder, member

    return main


class TestFastInvoke:
    def test_attached_member_fast_call(self):
        def main(ctx):
            member = yield New(Cell, 7)
            holder = yield New(Holder, member)
            yield Attach(member, holder)
            return (yield Invoke(holder, "fast_get"))

        assert run_free(main).value == 7

    def test_fast_call_mutates(self):
        def main(ctx):
            member = yield New(Cell)
            holder = yield New(Holder, member)
            yield Attach(member, holder)
            yield Invoke(holder, "fast_set", 42)
            return (yield Invoke(member, "get"))

        assert run_free(main).value == 42

    def test_unattached_target_rejected(self):
        """Without the co-residency guarantee the kernel refuses — the
        disciplined version of 3.6's "incorrect program behavior"."""
        def main(ctx):
            member = yield New(Cell, 7)
            holder = yield New(Holder, member)
            try:
                yield Invoke(holder, "fast_get")
            except InvocationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_guarantee_revoked_by_unattach(self):
        def main(ctx):
            member = yield New(Cell, 7)
            holder = yield New(Holder, member)
            yield Attach(member, holder)
            yield Invoke(holder, "fast_get")     # fine
            yield Unattach(member)
            try:
                yield Invoke(holder, "fast_get")
            except InvocationError:
                return "revoked"

        assert run_free(main).value == "revoked"

    def test_self_fast_invoke_allowed(self):
        def main(ctx):
            member = yield New(Cell, 5)
            holder = yield New(Holder, member)
            return (yield Invoke(holder, "self_call"))

        assert run_free(main).value == 5

    def test_fast_invoke_outside_operation_rejected(self):
        def main(ctx):
            member = yield New(Cell)
            try:
                # Main's root frame is an operation on the main object,
                # which is not attached to member.
                yield FastInvoke(member, "get")
            except InvocationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_fast_is_cheaper_than_checked_invoke(self):
        def main(ctx):
            member = yield New(Cell, 1)
            holder = yield New(Holder, member)
            yield Attach(member, holder)
            return (yield Invoke(holder, "timed_pair", 50))

        normal, fast = run(main).value
        # Normal pays local_invoke + local_return (12 us) per call;
        # fast pays inline_call_us (1 us) plus the same return cost.
        assert fast < normal * 0.5

    def test_group_moves_keep_fast_calls_valid(self):
        """The attachment guarantee survives moves: the pair migrates
        together, so FastInvoke works wherever they land."""
        def main(ctx):
            member = yield New(Cell, 3)
            holder = yield New(Holder, member)
            yield Attach(member, holder)
            yield MoveTo(holder, 1)
            return (yield Invoke(holder, "fast_get"))

        assert run_free(main).value == 3
