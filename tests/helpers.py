"""Shared helpers for the simulator test suite."""

from __future__ import annotations

from repro.core.costs import CostModel
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.syscalls import Charge, Compute


def run(main_fn, *args, nodes=2, cpus=2, costs=None, contended=True):
    """Run a main generator on a small cluster with Table 1 costs."""
    program = AmberProgram(
        ClusterConfig(nodes=nodes, cpus_per_node=cpus,
                      contended_network=contended),
        costs or CostModel.firefly())
    return program.run(main_fn, *args)


def run_free(main_fn, *args, nodes=2, cpus=2):
    """Run with the zero-cost model: pure semantics, no timing noise."""
    return run(main_fn, *args, nodes=nodes, cpus=cpus,
               costs=CostModel.free())


class Cell(SimObject):
    """A tiny mutable object used across kernel tests."""

    SIZE_BYTES = 128

    def __init__(self, value=0):
        self.value = value

    def get(self, ctx):
        if False:
            yield None
        return self.value

    def set(self, ctx, value):
        yield Charge(1.0)
        self.value = value
        return self.value

    def add(self, ctx, n):
        yield Compute(2.0)
        self.value += n
        return self.value

    def where(self, ctx):
        """Reports the node this operation executes on."""
        if False:
            yield None
        return ctx.node

    def get_atomic(self, ctx):
        return self.value

    def boom(self, ctx):
        yield Charge(1.0)
        raise ValueError("boom")
