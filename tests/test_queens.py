"""Tests for the N-Queens work-pool application (dynamic parallelism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.queens import (
    KNOWN_SOLUTIONS,
    count_completions,
    run_amber_queens,
    seed_prefixes,
)


class TestSolver:
    @pytest.mark.parametrize("n", [1, 4, 5, 6, 7, 8, 9])
    def test_known_solution_counts(self, n):
        solutions, visited = count_completions(n, ())
        assert solutions == KNOWN_SOLUTIONS[n]
        assert visited > 0 or n == 1

    def test_prefix_restricts_search(self):
        total, _ = count_completions(6, ())
        by_first_column = [count_completions(6, (col,))[0]
                           for col in range(6)]
        assert sum(by_first_column) == total

    def test_conflicting_prefix_counts_zero(self):
        solutions, visited = count_completions(8, (0, 0))
        assert (solutions, visited) == (0, 0)
        solutions, _ = count_completions(8, (0, 1))   # diagonal conflict
        assert solutions == 0

    def test_seed_prefixes_partition_the_space(self):
        prefixes = seed_prefixes(8, 2)
        assert all(len(prefix) == 2 for prefix in prefixes)
        total = sum(count_completions(8, prefix)[0]
                    for prefix in prefixes)
        assert total == KNOWN_SOLUTIONS[8]

    def test_seed_depth_zero(self):
        assert seed_prefixes(8, 0) == [()]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(4, 8),
       first=st.integers(0, 7), second=st.integers(0, 7))
def test_prefix_decomposition_property(n, first, second):
    """Counting under a prefix equals the sum over its extensions."""
    first %= n
    second %= n
    base, _ = count_completions(n, (first,))
    parts = sum(count_completions(n, (first, col))[0] for col in range(n))
    assert parts == base


class TestAmberQueens:
    def test_correct_total_single_node(self):
        result = run_amber_queens(n=8, nodes=1, cpus_per_node=2,
                                  split_depth=1)
        assert result.solutions == KNOWN_SOLUTIONS[8]
        assert result.work_units == len(seed_prefixes(8, 1))

    def test_correct_total_multi_node(self):
        result = run_amber_queens(n=10, nodes=4, cpus_per_node=2,
                                  split_depth=2, batch=2)
        assert result.solutions == KNOWN_SOLUTIONS[10]

    def test_parallel_speedup(self):
        result = run_amber_queens(n=11, nodes=2, cpus_per_node=4,
                                  split_depth=2, batch=3)
        assert result.speedup > 3.0

    def test_single_worker_near_sequential(self):
        result = run_amber_queens(n=9, nodes=1, cpus_per_node=1,
                                  split_depth=1)
        assert result.speedup == pytest.approx(1.0, abs=0.1)

    def test_batching_reduces_pool_traffic(self):
        fine = run_amber_queens(n=10, nodes=4, cpus_per_node=2,
                                split_depth=2, batch=1)
        coarse = run_amber_queens(n=10, nodes=4, cpus_per_node=2,
                                  split_depth=2, batch=6)
        assert coarse.stats.total_remote_invocations < \
            fine.stats.total_remote_invocations
        assert coarse.elapsed_us < fine.elapsed_us

    def test_all_work_units_accounted(self):
        result = run_amber_queens(n=9, nodes=2, cpus_per_node=2,
                                  split_depth=2)
        assert result.work_units == len(seed_prefixes(9, 2))
        assert sum(result.per_worker_units) == result.work_units

    def test_deterministic(self):
        a = run_amber_queens(n=9, nodes=2, cpus_per_node=2, split_depth=2)
        b = run_amber_queens(n=9, nodes=2, cpus_per_node=2, split_depth=2)
        assert a.elapsed_us == b.elapsed_us
        assert a.per_worker_units == b.per_worker_units

    def test_visited_counts_match_sequential(self):
        result = run_amber_queens(n=9, nodes=2, cpus_per_node=2,
                                  split_depth=2)
        prefixes = seed_prefixes(9, 2)
        expected = sum(count_completions(9, prefix)[1]
                       for prefix in prefixes)
        assert result.nodes_visited == expected
