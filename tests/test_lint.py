"""Static concurrency lint: each AMB rule on purpose-built snippets,
noqa suppression, and cleanliness of the bundled apps and examples."""

from pathlib import Path

import pytest

from repro.analyze.lint import RULES, LintFinding, lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent


def rules_of(source):
    return [(f.rule, f.line) for f in lint_source(source, "case.py")]


class TestAMB101:
    def test_early_return_leaks_lock(self):
        findings = rules_of("""
def op(self, ctx, lock):
    yield Invoke(lock, "acquire")
    if bad():
        return None
    yield Invoke(lock, "release")
""")
        assert findings == [("AMB101", 3)]

    def test_missing_release_at_function_end(self):
        assert rules_of("""
def op(self, ctx, lock):
    yield Invoke(lock, "acquire")
    yield Compute(5.0)
""") == [("AMB101", 3)]

    def test_monitor_enter_without_exit(self):
        assert rules_of("""
def op(self, ctx, mon):
    yield Invoke(mon, "enter")
    work()
""") == [("AMB101", 3)]

    def test_matched_conditional_acquire_release_is_clean(self):
        assert rules_of("""
def op(self, ctx, lock):
    if lock is not None:
        yield Invoke(lock, "acquire")
    work()
    if lock is not None:
        yield Invoke(lock, "release")
""") == []

    def test_try_finally_release_is_clean(self):
        assert rules_of("""
def op(self, ctx, lock):
    lock.acquire()
    try:
        work()
    finally:
        lock.release()
""") == []

    def test_live_idiom_leak(self):
        assert rules_of("""
def op(self, lock):
    lock.acquire()
    work()
""") == [("AMB101", 3)]


class TestAMB102:
    def test_wait_without_monitor(self):
        assert rules_of("""
def op(self, ctx, mon):
    cv = yield New(CondVar, mon)
    yield Invoke(cv, "wait")
""") == [("AMB102", 4)]

    def test_wait_inside_monitor_is_clean(self):
        assert rules_of("""
def op(self, ctx, mon, cond: CondVar):
    yield Invoke(mon, "enter")
    yield Invoke(cond, "wait")
    yield Invoke(mon, "exit")
""") == []

    def test_non_condvar_wait_is_ignored(self):
        # barrier.wait / thread.wait with timeouts are not condvars.
        assert rules_of("""
def op(self, barrier):
    barrier.wait(timeout=60)
""") == []


class TestAMB103:
    def test_fork_without_join(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")
    yield Compute(1.0)
""") == [("AMB103", 3)]

    def test_fork_with_join_is_clean(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")
    yield Join(t)
""") == []

    def test_live_thread_join_method_counts(self):
        assert rules_of("""
def op(self, kernel):
    t = kernel.fork(obj, "run")
    t.join()
""") == []


class TestAMB104:
    def test_moveto_of_attached_member(self):
        assert rules_of("""
def op(self, ctx, index, directory):
    yield Attach(index, directory)
    yield MoveTo(index, 1)
""") == [("AMB104", 4)]

    def test_moving_the_attachment_owner_is_clean(self):
        assert rules_of("""
def op(self, ctx, index, directory):
    yield Attach(index, directory)
    yield MoveTo(directory, 1)
""") == []


class TestAMB105:
    def test_join_under_spinlock(self):
        assert rules_of("""
def op(self, ctx, t):
    spin = yield New(SpinLock)
    yield Invoke(spin, "acquire")
    yield Join(t)
    yield Invoke(spin, "release")
""") == [("AMB105", 5)]

    def test_relinquishing_acquire_under_spinlock(self):
        assert rules_of("""
def op(self, ctx, spin: SpinLock, lock):
    yield Invoke(spin, "acquire")
    yield Invoke(lock, "acquire")
    yield Invoke(lock, "release")
    yield Invoke(spin, "release")
""") == [("AMB105", 4)]

    def test_blocking_under_plain_lock_is_fine(self):
        assert rules_of("""
def op(self, ctx, lock, t):
    yield Invoke(lock, "acquire")
    yield Join(t)
    yield Invoke(lock, "release")
""") == []


class TestSuppression:
    def test_bare_noqa_suppresses_all(self):
        assert rules_of("""
def op(self, ctx, lock):
    yield Invoke(lock, "acquire")  # repro: noqa
""") == []

    def test_rule_scoped_noqa(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")  # repro: noqa[AMB103]
""") == []

    def test_wrong_rule_noqa_does_not_suppress(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")  # repro: noqa[AMB101]
""") == [("AMB103", 3)]


class TestHarness:
    def test_rule_catalogue_is_complete(self):
        assert set(RULES) == {"AMB101", "AMB102", "AMB103",
                              "AMB104", "AMB105"}

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert findings[0].rule == "AMB000"

    def test_finding_render_format(self):
        finding = LintFinding("apps/x.py", 12, "AMB101", "leaked")
        assert finding.render() == "apps/x.py:12: AMB101 leaked"

    def test_lint_paths_walks_files_and_dirs(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def op(self, ctx, anchor):\n"
            "    t = yield Fork(anchor, 'run')\n")
        findings = lint_paths([str(tmp_path)])
        assert [(f.rule, f.line) for f in findings] == [("AMB103", 2)]


class TestRealCode:
    @pytest.mark.parametrize("tree", ["src/repro/apps", "examples",
                                      "src/repro/analyze/fixtures.py"])
    def test_bundled_code_is_lint_clean(self, tree):
        findings = lint_paths([str(REPO / tree)])
        assert findings == [], "\n".join(f.render() for f in findings)
