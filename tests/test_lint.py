"""Static concurrency lint: each AMB rule on purpose-built snippets,
noqa suppression, and cleanliness of the bundled apps and examples."""

from pathlib import Path

import pytest

from repro.analyze.lint import RULES, LintFinding, lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent


def rules_of(source):
    return [(f.rule, f.line) for f in lint_source(source, "case.py")]


class TestAMB101:
    def test_early_return_leaks_lock(self):
        findings = rules_of("""
def op(self, ctx, lock):
    yield Invoke(lock, "acquire")
    if bad():
        return None
    yield Invoke(lock, "release")
""")
        assert findings == [("AMB101", 3)]

    def test_missing_release_at_function_end(self):
        assert rules_of("""
def op(self, ctx, lock):
    yield Invoke(lock, "acquire")
    yield Compute(5.0)
""") == [("AMB101", 3)]

    def test_monitor_enter_without_exit(self):
        assert rules_of("""
def op(self, ctx, mon):
    yield Invoke(mon, "enter")
    work()
""") == [("AMB101", 3)]

    def test_matched_conditional_acquire_release_is_clean(self):
        assert rules_of("""
def op(self, ctx, lock):
    if lock is not None:
        yield Invoke(lock, "acquire")
    work()
    if lock is not None:
        yield Invoke(lock, "release")
""") == []

    def test_try_finally_release_is_clean(self):
        assert rules_of("""
def op(self, ctx, lock):
    lock.acquire()
    try:
        work()
    finally:
        lock.release()
""") == []

    def test_live_idiom_leak(self):
        assert rules_of("""
def op(self, lock):
    lock.acquire()
    work()
""") == [("AMB101", 3)]


class TestAMB102:
    def test_wait_without_monitor(self):
        assert rules_of("""
def op(self, ctx, mon):
    cv = yield New(CondVar, mon)
    yield Invoke(cv, "wait")
""") == [("AMB102", 4)]

    def test_wait_inside_monitor_is_clean(self):
        assert rules_of("""
def op(self, ctx, mon, cond: CondVar):
    yield Invoke(mon, "enter")
    yield Invoke(cond, "wait")
    yield Invoke(mon, "exit")
""") == []

    def test_non_condvar_wait_is_ignored(self):
        # barrier.wait / thread.wait with timeouts are not condvars.
        assert rules_of("""
def op(self, barrier):
    barrier.wait(timeout=60)
""") == []


class TestAMB103:
    def test_fork_without_join(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")
    yield Compute(1.0)
""") == [("AMB103", 3)]

    def test_fork_with_join_is_clean(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")
    yield Join(t)
""") == []

    def test_live_thread_join_method_counts(self):
        assert rules_of("""
def op(self, kernel):
    t = kernel.fork(obj, "run")
    t.join()
""") == []


class TestAMB104:
    def test_moveto_of_attached_member(self):
        assert rules_of("""
def op(self, ctx, index, directory):
    yield Attach(index, directory)
    yield MoveTo(index, 1)
""") == [("AMB104", 4)]

    def test_moving_the_attachment_owner_is_clean(self):
        assert rules_of("""
def op(self, ctx, index, directory):
    yield Attach(index, directory)
    yield MoveTo(directory, 1)
""") == []


class TestAMB105:
    def test_join_under_spinlock(self):
        assert rules_of("""
def op(self, ctx, t):
    spin = yield New(SpinLock)
    yield Invoke(spin, "acquire")
    yield Join(t)
    yield Invoke(spin, "release")
""") == [("AMB105", 5)]

    def test_relinquishing_acquire_under_spinlock(self):
        assert rules_of("""
def op(self, ctx, spin: SpinLock, lock):
    yield Invoke(spin, "acquire")
    yield Invoke(lock, "acquire")
    yield Invoke(lock, "release")
    yield Invoke(spin, "release")
""") == [("AMB105", 4)]

    def test_blocking_under_plain_lock_is_fine(self):
        assert rules_of("""
def op(self, ctx, lock, t):
    yield Invoke(lock, "acquire")
    yield Join(t)
    yield Invoke(lock, "release")
""") == []


class TestAMB108:
    def test_invoke_under_spinlock(self):
        assert rules_of("""
def op(self, ctx, store):
    spin = yield New(SpinLock)
    yield Invoke(spin, "acquire")
    yield Invoke(store, "put", 1)
    yield Invoke(spin, "release")
""") == [("AMB108", 5)]

    def test_fastinvoke_under_spinlock(self):
        assert rules_of("""
def op(self, ctx, spin: SpinLock, table):
    yield Invoke(spin, "acquire")
    value = yield FastInvoke(table, "get", 3)
    yield Invoke(spin, "release")
""") == [("AMB108", 4)]

    def test_noqa_suppresses(self):
        assert rules_of("""
def op(self, ctx, spin: SpinLock, store):
    yield Invoke(spin, "acquire")
    yield Invoke(store, "put", 1)  # repro: noqa[AMB108]
    yield Invoke(spin, "release")
""") == []

    def test_invoke_under_plain_lock_is_fine(self):
        assert rules_of("""
def op(self, ctx, lock, store):
    yield Invoke(lock, "acquire")
    yield Invoke(store, "put", 1)
    yield Invoke(lock, "release")
""") == []


class TestAMB109:
    def test_write_after_seal(self):
        assert rules_of("""
def build(self, ctx):
    table = yield New(Table, 8)
    yield SetImmutable(table)
    table.rows = []
""") == [("AMB109", 5)]

    def test_self_field_write_after_sealing_self(self):
        assert rules_of("""
def seal(self, ctx):
    yield SetImmutable(self)
    self.sealed = True
""") == [("AMB109", 4)]

    def test_augmented_write_after_seal(self):
        assert rules_of("""
def bump(self, ctx, table):
    yield SetImmutable(table)
    table.version += 1
""") == [("AMB109", 4)]

    def test_live_runtime_seal_idiom(self):
        assert rules_of("""
def publish(cluster, handle):
    cluster.set_immutable(handle)
    handle.extra = 1
""") == [("AMB109", 4)]

    def test_write_before_seal_is_fine(self):
        assert rules_of("""
def build(self, ctx):
    table = yield New(Table, 8)
    table.rows = []
    yield SetImmutable(table)
""") == []

    def test_other_object_write_is_fine(self):
        assert rules_of("""
def build(self, ctx, scratch):
    table = yield New(Table, 8)
    yield SetImmutable(table)
    scratch.rows = []
""") == []

    def test_noqa_suppresses(self):
        assert rules_of("""
def build(self, ctx):
    table = yield New(Table, 8)
    yield SetImmutable(table)
    table.rows = []  # repro: noqa[AMB109]
""") == []

    def test_invoke_after_release_is_fine(self):
        assert rules_of("""
def op(self, ctx, spin: SpinLock, store):
    yield Invoke(spin, "acquire")
    yield Invoke(spin, "release")
    yield Invoke(store, "put", 1)
""") == []


class TestAMB106:
    def test_barrier_count_mismatch(self):
        assert rules_of("""
def main(ctx):
    barrier = yield New(Barrier, 4)
    threads = []
    for i in range(2):
        worker = yield New(Worker)
        threads.append((yield Fork(worker, "run", barrier)))
    for t in threads:
        yield Join(t)
""") == [("AMB106", 3)]

    def test_matching_count_is_clean(self):
        for parties in (2, 3):    # workers alone, or workers + forker
            assert rules_of(f"""
def main(ctx):
    barrier = yield New(Barrier, {parties})
    threads = []
    for i in range(2):
        worker = yield New(Worker)
        threads.append((yield Fork(worker, "run", barrier)))
    for t in threads:
        yield Join(t)
""") == []

    def test_direct_constructor_and_range_bounds(self):
        assert rules_of("""
def main(rt):
    barrier = Barrier(9)
    handles = []
    for i in range(1, 4):
        handles.append(rt.fork(work, barrier))
    for h in handles:
        h.join()
""") == [("AMB106", 3)]

    def test_variable_parties_is_skipped(self):
        assert rules_of("""
def main(ctx, n):
    barrier = yield New(Barrier, n)
    for i in range(2):
        t = yield Fork(worker, "run", barrier)
        yield Join(t)
""") == []

    def test_uncountable_forks_are_skipped(self):
        assert rules_of("""
def main(ctx, extra, n):
    barrier = yield New(Barrier, 9)
    t = yield Fork(worker, "run")
    if extra:
        t2 = yield Fork(worker, "run")
        yield Join(t2)
    for i in range(n):
        t3 = yield Fork(worker, "run")
        yield Join(t3)
    yield Join(t)
""") == []

    def test_no_forks_is_skipped(self):
        assert rules_of("""
def main(ctx):
    barrier = yield New(Barrier, 3)
    yield Invoke(barrier, "wait")
""") == []

    def test_noqa(self):
        assert rules_of("""
def main(ctx):
    barrier = yield New(Barrier, 4)  # repro: noqa[AMB106]
    t = yield Fork(worker, "run", barrier)
    yield Join(t)
""") == []


class TestAMB107:
    def test_double_join_flagged(self):
        assert rules_of("""
def main(ctx):
    t = yield Fork(worker, "run")
    yield Join(t)
    yield Join(t)
""") == [("AMB107", 5)]

    def test_join_in_loop_flagged(self):
        assert rules_of("""
def main(ctx):
    t = yield Fork(worker, "run")
    for i in range(3):
        yield Join(t)
""") == [("AMB107", 5)]

    def test_live_runtime_idiom(self):
        assert rules_of("""
def main(rt):
    t = rt.fork(work)
    t.join()
    t.join()
""") == [("AMB107", 5)]

    def test_invoke_join_form(self):
        assert rules_of("""
def main(ctx):
    t = yield Fork(worker, "run")
    yield Invoke(t, "join")
    yield Invoke(t, "join")
""") == [("AMB107", 5)]

    def test_reassigned_handle_is_clean(self):
        assert rules_of("""
def main(ctx):
    t = yield Fork(worker, "run")
    yield Join(t)
    t = yield Fork(worker, "run")
    yield Join(t)
""") == []

    def test_exclusive_branches_are_clean(self):
        assert rules_of("""
def main(ctx, flag):
    t = yield Fork(worker, "run")
    if flag:
        yield Join(t)
    else:
        yield Join(t)
""") == []

    def test_join_per_iteration_handle_is_clean(self):
        assert rules_of("""
def main(ctx):
    for i in range(3):
        t = yield Fork(worker, "run")
        yield Join(t)
""") == []

    def test_str_join_is_not_a_thread_join(self):
        assert rules_of("""
def fmt(parts):
    a = ", ".join(parts)
    b = ", ".join(parts)
    return a + b
""") == []

    def test_noqa(self):
        assert rules_of("""
def main(ctx):
    t = yield Fork(worker, "run")
    yield Join(t)
    yield Join(t)  # repro: noqa[AMB107]
""") == []


class TestSuppression:
    def test_bare_noqa_suppresses_all(self):
        assert rules_of("""
def op(self, ctx, lock):
    yield Invoke(lock, "acquire")  # repro: noqa
""") == []

    def test_rule_scoped_noqa(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")  # repro: noqa[AMB103]
""") == []

    def test_wrong_rule_noqa_does_not_suppress(self):
        assert rules_of("""
def op(self, ctx, anchor):
    t = yield Fork(anchor, "run")  # repro: noqa[AMB101]
""") == [("AMB103", 3)]


class TestHarness:
    def test_rule_catalogue_is_complete(self):
        assert set(RULES) == {"AMB101", "AMB102", "AMB103",
                              "AMB104", "AMB105", "AMB106", "AMB107",
                              "AMB108", "AMB109"}

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert findings[0].rule == "AMB000"

    def test_finding_render_format(self):
        finding = LintFinding("apps/x.py", 12, "AMB101", "leaked")
        assert finding.render() == "apps/x.py:12: AMB101 leaked"

    def test_lint_paths_walks_files_and_dirs(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def op(self, ctx, anchor):\n"
            "    t = yield Fork(anchor, 'run')\n")
        findings = lint_paths([str(tmp_path)])
        assert [(f.rule, f.line) for f in findings] == [("AMB103", 2)]


class TestRealCode:
    @pytest.mark.parametrize("tree", ["src/repro/apps", "examples",
                                      "src/repro/analyze/fixtures.py"])
    def test_bundled_code_is_lint_clean(self, tree):
        findings = lint_paths([str(REPO / tree)])
        assert findings == [], "\n".join(f.render() for f in findings)
