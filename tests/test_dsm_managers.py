"""Tests for the DSM's alternative ownership-management algorithms
(Li & Hudak: centralized, fixed distributed, dynamic distributed).

The dynamic scheme chases *probOwner* hints to the owner itself — the
page-world twin of Amber's forwarding addresses, including the path
compression.
"""

import pytest

from repro.apps.sor import SorProblem
from repro.apps.sor.ivy_sor import run_ivy_sor
from repro.dsm.machine import IvyCluster
from repro.dsm.ops import Compute, Load, Read, Store, TestAndSet, Write
from repro.dsm.pages import PageAccess
from repro.errors import SimulationError

MODES = ("fixed", "centralized", "dynamic")


def locked_counter(cluster, rounds, lock_addr=0, data_addr=5000):
    for _ in range(rounds):
        while True:
            held = yield TestAndSet(lock_addr)
            if not held:
                break
            yield Compute(50.0)
        value = yield Load(data_addr)
        yield Compute(20.0)
        yield Store(data_addr, (value or 0) + 1)
        yield Store(lock_addr, False)


class TestManagerModes:
    @pytest.mark.parametrize("mode", MODES)
    def test_coherent_counting(self, mode):
        cluster = IvyCluster(3, 2, manager_mode=mode)
        for node in range(3):
            cluster.spawn(node, locked_counter, 10)
        cluster.run()
        assert cluster.memory[5000] == 30

    @pytest.mark.parametrize("mode", MODES)
    def test_single_writer_invariant(self, mode):
        def writer(cluster, page):
            yield Write(page * cluster.costs.page_bytes, 8)

        cluster = IvyCluster(3, 1, manager_mode=mode)
        for node in range(3):
            cluster.spawn(node, writer, 2)   # all write page 2
        cluster.run()
        writers = sum(
            1 for node in cluster.nodes
            if node.pages.access(2) is PageAccess.WRITE)
        assert writers == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            IvyCluster(2, 1, manager_mode="quantum")

    def test_centralized_manages_everything_at_node_0(self):
        cluster = IvyCluster(4, 1, manager_mode="centralized")
        assert [cluster.manager_of(page) for page in (0, 5, 13)] == \
            [0, 0, 0]

    def test_dynamic_forwards_along_prob_owner(self):
        """First fault from a far node chases hints; hints then point
        straight at the owner."""
        def toucher(cluster):
            yield Read(0, 8)

        cluster = IvyCluster(4, 1, manager_mode="dynamic")
        cluster.spawn(3, toucher)
        cluster.run()
        # Node 3 now knows the owner directly.
        assert cluster.nodes[3].prob_owner.get(0, 0) == 0

    def test_dynamic_ownership_travels(self):
        def writer(cluster, delay):
            yield Compute(delay)
            yield Write(0, 8)

        cluster = IvyCluster(3, 1, manager_mode="dynamic")
        cluster.spawn(1, writer, 1_000)
        cluster.spawn(2, writer, 50_000)
        cluster.run()
        # The last writer owns the page and holds its record.
        assert 0 in cluster.nodes[2].owned
        assert cluster.nodes[2].owned[0].owner == 2
        assert 0 not in cluster.nodes[1].owned

    def test_dynamic_no_manager_hop_is_cheaper_under_contention(self):
        """The owner services requests directly: lock ping-pong between
        two nodes costs less than with a manager in the loop."""
        def run_mode(mode):
            cluster = IvyCluster(3, 2, manager_mode=mode)
            for node in range(3):
                cluster.spawn(node, locked_counter, 10)
            cluster.run()
            return cluster.elapsed_us

        assert run_mode("dynamic") < run_mode("fixed")

    @pytest.mark.parametrize("mode", MODES)
    def test_sor_runs_under_every_mode(self, mode):
        problem = SorProblem(rows=24, cols=96, iterations=4)
        result = run_ivy_sor(problem, nodes=2, cpus_per_node=2,
                             manager_mode=mode)
        assert result.iterations_run == 4
        assert result.speedup > 1.0

    def test_modes_agree_on_fault_counts_for_simple_patterns(self):
        """Protocol choice changes routing, not what faults: a fixed
        access pattern produces identical fault counts under all three."""
        def reader(cluster):
            yield Read(0, 8)
            yield Write(4096, 8)

        counts = []
        for mode in MODES:
            cluster = IvyCluster(2, 1, manager_mode=mode)
            cluster.spawn(1, reader)
            cluster.run()
            counts.append((cluster.stats.read_faults,
                           cluster.stats.write_faults))
        assert counts[0] == counts[1] == counts[2]
