"""Tests for SOR on the DSM baseline (the section 4 comparison port)."""

import pytest

from repro.apps.sor import SorProblem
from repro.apps.sor.ivy_sor import run_ivy_sor
from repro.apps.sor.amber_sor import run_amber_sor

SMALL = SorProblem(rows=24, cols=96, iterations=5)


class TestIvySor:
    def test_single_node_no_network(self):
        result = run_ivy_sor(SMALL, nodes=1, cpus_per_node=4)
        assert result.network_messages == 0
        assert result.stats.page_transfers == 0
        assert result.speedup > 3.0

    def test_speedup_accounting(self):
        result = run_ivy_sor(SMALL, nodes=2, cpus_per_node=2)
        assert result.speedup == pytest.approx(
            result.sequential_us / result.elapsed_us)
        assert result.iterations_run == SMALL.iterations

    def test_cross_node_edges_fault(self):
        """Neighbor ghost rows live on other nodes: each phase faults the
        pages they span."""
        result = run_ivy_sor(SMALL, nodes=2, cpus_per_node=2)
        assert result.stats.read_faults > 0
        assert result.stats.page_transfers > 0
        assert result.network_messages > 0

    def test_boundary_pages_ping_pong(self):
        """Rows are not page-aligned, so neighboring processes write-share
        boundary pages — the false-sharing cost of section 4.2."""
        result = run_ivy_sor(SMALL, nodes=4, cpus_per_node=1)
        _, hottest = result.stats.hottest_page()
        # A shared boundary page moves repeatedly across iterations.
        assert hottest >= SMALL.iterations

    def test_barrier_every_iteration(self):
        result = run_ivy_sor(SMALL, nodes=2, cpus_per_node=2)
        # One barrier round per iteration.
        assert result.stats.barrier_rounds == SMALL.iterations

    def test_parallelism_helps(self):
        one = run_ivy_sor(SMALL, nodes=1, cpus_per_node=1, processes=1)
        four = run_ivy_sor(SMALL, nodes=1, cpus_per_node=4)
        assert four.elapsed_us < one.elapsed_us / 2

    def test_amber_beats_ivy_across_nodes(self):
        """The headline section 4 claim on a mid-size problem."""
        problem = SorProblem(rows=61, cols=421, iterations=5)
        ivy = run_ivy_sor(problem, nodes=4, cpus_per_node=4)
        amber = run_amber_sor(problem, nodes=4, cpus_per_node=4)
        assert amber.speedup > ivy.speedup

    def test_deterministic(self):
        a = run_ivy_sor(SMALL, nodes=2, cpus_per_node=2)
        b = run_ivy_sor(SMALL, nodes=2, cpus_per_node=2)
        assert a.elapsed_us == b.elapsed_us
        assert a.stats.total_faults == b.stats.total_faults

    def test_custom_process_count(self):
        result = run_ivy_sor(SMALL, nodes=2, cpus_per_node=2, processes=2)
        assert result.processes == 2
