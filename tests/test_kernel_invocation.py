"""Kernel tests: invocation semantics (paper sections 3.2 and 3.4).

Local invocations run in place; invoking a non-resident object migrates the
thread to it (function shipping) and the return-time check brings it home.
"""

import pytest

from repro.errors import InvocationError, ObjectNotFoundError
from repro.sim.objects import SimObject
from repro.sim.syscalls import (
    Charge,
    Compute,
    Delete,
    GetStats,
    Invoke,
    Locate,
    MoveTo,
    New,
)
from tests.helpers import Cell, run, run_free


class TestLocalInvocation:
    def test_result_passed_back(self):
        def main(ctx):
            cell = yield New(Cell, 7)
            value = yield Invoke(cell, "get")
            return value

        assert run_free(main).value == 7

    def test_arguments_passed(self):
        def main(ctx):
            cell = yield New(Cell)
            yield Invoke(cell, "set", 42)
            return (yield Invoke(cell, "get"))

        assert run_free(main).value == 42

    def test_atomic_operation(self):
        def main(ctx):
            cell = yield New(Cell, 5)
            return (yield Invoke(cell, "get_atomic"))

        assert run_free(main).value == 5

    def test_nested_invocations(self):
        class Outer(SimObject):
            def __init__(self, inner):
                self.inner = inner

            def double_inner(self, ctx):
                value = yield Invoke(self.inner, "get")
                return 2 * value

        def main(ctx):
            inner = yield New(Cell, 21)
            outer = yield New(Outer, inner)
            return (yield Invoke(outer, "double_inner"))

        assert run_free(main).value == 42

    def test_user_exception_propagates_to_caller(self):
        def main(ctx):
            cell = yield New(Cell)
            try:
                yield Invoke(cell, "boom")
            except ValueError as error:
                return f"caught {error}"
            return "not caught"

        assert run_free(main).value == "caught boom"

    def test_uncaught_exception_fails_the_program(self):
        def main(ctx):
            cell = yield New(Cell)
            yield Invoke(cell, "boom")

        with pytest.raises(ValueError, match="boom"):
            run_free(main)

    def test_unknown_method_raises_catchable_error(self):
        def main(ctx):
            cell = yield New(Cell)
            try:
                yield Invoke(cell, "no_such_op")
            except InvocationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_invoking_non_object_rejected(self):
        def main(ctx):
            try:
                yield Invoke("not an object", "get")
            except InvocationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_yielding_garbage_rejected(self):
        def main(ctx):
            try:
                yield 12345
            except InvocationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_local_invocations_counted(self):
        def main(ctx):
            cell = yield New(Cell)
            for _ in range(5):
                yield Invoke(cell, "get")
            stats = yield GetStats()
            return stats.total_local_invocations

        assert run_free(main).value == 5


class TestRemoteInvocation:
    def test_operation_executes_at_objects_node(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            where = yield Invoke(cell, "where")
            return (where, ctx.node)

        executed_at, back_home = run_free(main).value
        assert executed_at == 1
        assert back_home == 0   # return-time check brought the thread home

    def test_remote_state_mutation_visible(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            yield Invoke(cell, "set", 99)
            return (yield Invoke(cell, "get"))

        assert run_free(main).value == 99

    def test_migration_stats(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            yield Invoke(cell, "get")
            stats = yield GetStats()
            return (stats.thread_migrations,
                    stats.total_remote_invocations)

        migrations, remote = run_free(main).value
        assert migrations == 2   # there and back
        assert remote == 1

    def test_remote_invoke_latency_matches_table1(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            t0 = ctx.now_us
            yield Invoke(cell, "where")
            return ctx.now_us - t0

        assert run(main).value == pytest.approx(8320.0)

    def test_payload_bytes_add_wire_time(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            t0 = ctx.now_us
            yield Invoke(cell, "where", arg_bytes=5000)
            return ctx.now_us - t0

        assert run(main).value == pytest.approx(8320.0 + 5000 * 0.8)

    def test_nested_remote_chain(self):
        """A invokes B on node 1, which invokes C on node 0: the thread
        hops 0 -> 1 -> 0 -> 1 -> 0 following the objects."""
        class Chain(SimObject):
            def __init__(self, nxt=None):
                self.nxt = nxt

            def depth(self, ctx):
                if self.nxt is None:
                    return (ctx.node,)
                rest = yield Invoke(self.nxt, "depth")
                return (ctx.node,) + rest

        def main(ctx):
            c = yield New(Chain)
            b = yield New(Chain, c)
            yield MoveTo(b, 1)
            return (yield Invoke(b, "depth"))

        assert run_free(main).value == (1, 0)


class TestDelete:
    def test_invoke_after_delete_rejected(self):
        def main(ctx):
            cell = yield New(Cell)
            yield Delete(cell)
            try:
                yield Invoke(cell, "get")
            except (InvocationError, ObjectNotFoundError):
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_heap_block_reused_whole(self):
        def main(ctx):
            a = yield New(Cell, size_bytes=128)
            addr_a = a.vaddr
            yield Delete(a)
            b = yield New(Cell, size_bytes=128)
            return addr_a == b.vaddr

        assert run_free(main).value is True

    def test_delete_requires_residency(self):
        from repro.errors import MobilityError

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            try:
                yield Delete(cell)
            except MobilityError:
                return "rejected"

        assert run_free(main).value == "rejected"


class TestLocate:
    def test_locate_local(self):
        def main(ctx):
            cell = yield New(Cell)
            return (yield Locate(cell))

        assert run_free(main).value == 0

    def test_locate_after_moves(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            first = yield Locate(cell)
            yield MoveTo(cell, 0)
            second = yield Locate(cell)
            return (first, second)

        assert run_free(main, nodes=3).value == (1, 0)
