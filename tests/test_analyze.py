"""AmberSan dynamic analysis: race detection, immutable-write and
residency checks, lock-order deadlock prediction, determinism, and
timing neutrality."""

import pytest

from repro.analyze.fixtures import (
    run_immutable_write,
    run_lock_deadlock,
    run_lock_inversion,
    run_nonresident_touch,
    run_opaque_state,
    run_racy_counter,
    run_rw_inversion,
    run_sync_zoo,
)
from repro.analyze.runtime import sanitize_runs
from repro.analyze.scenario import run_analysis_scenarios
from repro.errors import DeadlockError


def report_of(result):
    return result.cluster.sanitizer.report()


class TestRaceDetection:
    def test_racy_counter_is_flagged(self):
        report = report_of(run_racy_counter(seed=0))
        assert not report.ok
        assert report.races >= 1
        rules = {f.rule for f in report.findings}
        assert rules == {"AMBSAN-RACE"}

    def test_race_finding_names_both_sites(self):
        report = report_of(run_racy_counter(seed=0))
        finding = report.findings[0]
        assert finding.field == "count"
        assert finding.obj_cls == "Tally"
        assert finding.site is not None
        assert finding.prior is not None
        assert finding.site.file.endswith("fixtures.py")
        text = finding.render()
        assert "racing" in text
        assert "migration history" in text

    def test_locked_counter_is_clean(self):
        report = report_of(run_racy_counter(seed=0, locked=True))
        assert report.ok, report.render()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_signatures_deterministic_per_seed(self, seed):
        first = report_of(run_racy_counter(seed=seed)).signatures()
        second = report_of(run_racy_counter(seed=seed)).signatures()
        assert first == second
        assert first  # the race never escapes detection

    def test_signatures_stable_across_seeds(self):
        seen = {tuple(report_of(run_racy_counter(seed=s)).signatures())
                for s in (0, 1, 2)}
        assert len(seen) == 1

    def test_correct_sync_zoo_is_clean(self):
        result = run_sync_zoo(seed=0)
        report = report_of(result)
        assert report.ok, report.render()
        assert result.value["total"] == 6
        assert result.value["handoff"] == 41


class TestImmutableAndResidency:
    def test_write_to_replicated_immutable_is_flagged(self):
        # Regression: a write slipping through after SetImmutable +
        # MoveTo replication silently diverges the replicas.
        report = report_of(run_immutable_write(seed=0))
        rules = [f.rule for f in report.findings]
        assert rules == ["AMBSAN-IMMUT"]
        finding = report.findings[0]
        assert finding.obj_cls == "Config"
        assert finding.field == "value"

    def test_nonresident_touch_reports_migration_history(self):
        report = report_of(run_nonresident_touch(seed=0))
        rules = [f.rule for f in report.findings]
        assert rules == ["AMBSAN-RESIDENT"]
        finding = report.findings[0]
        # The thread hopped 0 -> 1 -> 0 before the bad direct read.
        assert [node for node, _ in finding.migrations] == [0, 1, 0]
        assert "node 0" in finding.render()
        assert "node 1" in finding.render()


class TestOpaqueState:
    def test_slotted_and_property_classes_are_flagged(self):
        # Regression: slotted reads bypass the __dict__-membership
        # check in the field hook, so this race used to be silently
        # *missed* — now the classes themselves are reported.
        report = report_of(run_opaque_state(seed=0))
        opaque = [f for f in report.findings
                  if f.rule == "AMBSAN-OPAQUE"]
        flagged = {(f.obj_cls, f.field) for f in opaque}
        assert ("SlottedTally", "count") in flagged
        assert ("DerivedTally", "count") in flagged
        text = opaque[0].render()
        assert "NOT race-checked" in text

    def test_each_class_flagged_once(self):
        report = report_of(run_opaque_state(seed=0))
        signatures = [f.signature() for f in report.findings
                      if f.rule == "AMBSAN-OPAQUE"]
        assert len(signatures) == len(set(signatures)) == 2

    def test_plain_classes_not_flagged(self):
        report = report_of(run_racy_counter(seed=0, locked=True))
        assert not [f for f in report.findings
                    if f.rule == "AMBSAN-OPAQUE"]

    @pytest.mark.parametrize("seed", [0, 1])
    def test_opaque_signatures_deterministic(self, seed):
        first = report_of(run_opaque_state(seed=seed)).signatures()
        second = report_of(run_opaque_state(seed=seed)).signatures()
        assert first == second


class TestLockOrder:
    def test_inversion_reports_cycle_without_deadlock(self):
        result = run_lock_inversion(seed=0)
        assert result.value is True      # the run completed
        report = report_of(result)
        assert report.order_cycles == 1
        text = report.render()
        assert "lock-order cycle" in text
        assert "order-ab" in text and "order-ba" in text
        assert "fixtures.py" in text     # acquisition sites named

    def test_reader_inversion_records_no_order_edges(self):
        # Read-side acquisitions don't exclude other readers, so an
        # inverted read/read pattern is not a deadlock hazard: no
        # AMBSAN-ORDER edge (and hence no cycle) may be recorded.
        result = run_rw_inversion(seed=0, mode="read")
        assert result.value is True
        report = report_of(result)
        assert report.ok, report.render()
        assert report.order_cycles == 0
        graph = result.cluster.sanitizer.lock_order
        assert graph.edges == []

    def test_writer_inversion_reports_cycle(self):
        # Control: the same program write-side is the classic
        # inversion and must light up exactly like mutexes do.
        result = run_rw_inversion(seed=0, mode="write")
        report = report_of(result)
        assert report.order_cycles == 1
        text = report.render()
        assert "ReaderWriterLock" in text
        assert "rw-ab" in text and "rw-ba" in text

    def test_read_side_holds_nothing_for_wait_reports(self):
        # order=False must also keep read acquisitions out of the
        # held-lock table used by wait-for reporting.
        result = run_rw_inversion(seed=0, mode="read")
        sanitizer = result.cluster.sanitizer
        assert all(not held for held in sanitizer._held.values())

    def test_true_deadlock_names_waiters_and_holders(self):
        with pytest.raises(DeadlockError) as excinfo:
            run_lock_deadlock(seed=0)
        message = str(excinfo.value)
        assert "wait-for cycle detected" in message
        assert "order-ab waits on Lock" in message
        assert "held by order-ba" in message


class TestNeutrality:
    def test_sanitizer_changes_nothing_observable(self):
        plain = run_racy_counter(seed=3, sanitize=False)
        sanitized = run_racy_counter(seed=3, sanitize=True)
        assert plain.elapsed_us == sanitized.elapsed_us
        assert plain.value == sanitized.value

    def test_hooks_are_removed_after_the_run(self):
        from repro.sim.objects import SimObject
        run_racy_counter(seed=0)
        assert "__getattribute__" not in SimObject.__dict__
        assert "__setattr__" not in SimObject.__dict__

    def test_sanitize_runs_collects_each_run(self):
        with sanitize_runs() as sanitizers:
            run_racy_counter(seed=0, sanitize=False)
            run_racy_counter(seed=0, locked=True, sanitize=False)
        assert len(sanitizers) == 2
        assert not sanitizers[0].report().ok
        assert sanitizers[1].report().ok


class TestScenarios:
    def test_all_scenarios_pass(self):
        report = run_analysis_scenarios(seed=0, fast=True)
        assert report.ok, report.render()
        names = [s.name for s in report.scenarios]
        assert "racy-counter" in names
        assert "timing-neutral" in names

    def test_report_is_json_friendly(self):
        import json
        report = run_analysis_scenarios(seed=0, fast=True)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        racy = next(s for s in payload["scenarios"]
                    if s["name"] == "racy-counter")
        assert any("AMBSAN-RACE" in sig for sig in racy["signatures"])


class TestAppsClean:
    @pytest.mark.parametrize("app", ["sor", "queens", "matmul"])
    def test_bundled_apps_run_sanitizer_clean(self, app):
        if app == "sor":
            from repro.apps.sor import SorProblem, run_amber_sor
            job = lambda: run_amber_sor(
                SorProblem(rows=24, cols=16, iterations=4),
                nodes=2, cpus_per_node=2)
        elif app == "queens":
            from repro.apps.queens import run_amber_queens
            job = lambda: run_amber_queens(n=6, nodes=2, cpus_per_node=2)
        else:
            from repro.apps.matmul import run_matmul
            job = lambda: run_matmul(m=24, k=24, n=24, nodes=2,
                                     cpus_per_node=2)
        with sanitize_runs() as sanitizers:
            job()
        assert sanitizers
        for sanitizer in sanitizers:
            report = sanitizer.report()
            assert report.ok, report.render()
