"""Tests for the SOR application (paper section 6).

The key correctness property: the Amber program computes *bitwise
identical* grids to the sequential baseline for any partitioning, because
same-color points never read each other within a phase.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sor import (
    SorProblem,
    make_grid,
    run_amber_sor,
    run_sequential_sor,
    sweep_color,
)
from repro.apps.sor.amber_sor import default_sections
from repro.apps.sor.grid import (
    BLACK,
    RED,
    color_mask,
    count_color_points,
    residual,
    sor_iterate,
)
from repro.apps.sor.sequential import sequential_time_us

SMALL = SorProblem(rows=10, cols=36, iterations=6)


class TestGridKernels:
    def test_boundary_preserved(self):
        grid = make_grid(SMALL)
        top, bottom, left, right = SMALL.boundary
        sor_iterate(grid, SMALL.omega)
        assert np.all(grid[0, :] == np.float32(top))
        assert np.all(grid[-1, :] == np.float32(bottom))
        assert np.all(grid[1:-1, 0] == np.float32(left))
        assert np.all(grid[1:-1, -1] == np.float32(right))

    def test_black_phase_only_touches_black_points(self):
        grid = make_grid(SMALL)
        before = grid.copy()
        sweep_color(grid, SMALL.omega, BLACK)
        changed = grid[1:-1, 1:-1] != before[1:-1, 1:-1]
        mask = color_mask(SMALL.rows, SMALL.cols, BLACK)
        assert not np.any(changed & ~mask)

    def test_iterations_reduce_residual(self):
        grid = make_grid(SMALL)
        initial = residual(grid)
        for _ in range(200):
            sor_iterate(grid, SMALL.omega)
        assert residual(grid) < initial / 100

    def test_convergence_to_laplace_solution(self):
        # float32 against a 100.0 boundary bottoms out around 1e-5, so the
        # tolerance sits above that floor.
        problem = SorProblem(rows=16, cols=16, iterations=2000,
                             omega=1.7, tolerance=1e-4)
        result = run_sequential_sor(problem)
        assert result.iterations_run < 2000   # tolerance triggered
        assert residual(result.grid) < 1e-3

    def test_count_color_points_matches_mask(self):
        for rows, cols in [(1, 1), (3, 5), (10, 36), (7, 8)]:
            for color in (BLACK, RED):
                for row0, col0 in [(0, 0), (1, 0), (3, 7)]:
                    expected = int(color_mask(rows, cols, color,
                                              row0, col0).sum())
                    got = count_color_points(rows, cols, color, row0, col0)
                    assert got == expected

    def test_colors_partition_the_grid(self):
        black = count_color_points(10, 36, BLACK)
        red = count_color_points(10, 36, RED)
        assert black + red == 360


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(2, 12), cols=st.integers(2, 16),
       color=st.sampled_from([BLACK, RED]),
       row0=st.integers(0, 5), col0=st.integers(0, 5))
def test_count_color_points_property(rows, cols, color, row0, col0):
    expected = int(color_mask(rows, cols, color, row0, col0).sum())
    assert count_color_points(rows, cols, color, row0, col0) == expected


class TestAmberSorCorrectness:
    @pytest.mark.parametrize("nodes,cpus,sections", [
        (1, 1, 1),
        (1, 1, 3),
        (1, 4, 8),
        (2, 2, 4),
        (3, 2, 6),
        (4, 4, 8),
    ])
    def test_bitwise_identical_to_sequential(self, nodes, cpus, sections):
        seq = run_sequential_sor(SMALL)
        amber = run_amber_sor(SMALL, nodes=nodes, cpus_per_node=cpus,
                              sections=sections, collect_grid=True)
        assert np.array_equal(seq.grid, amber.grid)
        assert amber.final_delta == pytest.approx(seq.final_delta)

    def test_no_overlap_same_numerics(self):
        seq = run_sequential_sor(SMALL)
        amber = run_amber_sor(SMALL, nodes=2, cpus_per_node=2, sections=4,
                              overlap=False, collect_grid=True)
        assert np.array_equal(seq.grid, amber.grid)

    def test_uneven_partition(self):
        problem = SorProblem(rows=9, cols=31, iterations=5)
        seq = run_sequential_sor(problem)
        amber = run_amber_sor(problem, nodes=2, cpus_per_node=2, sections=5,
                              collect_grid=True)
        assert np.array_equal(seq.grid, amber.grid)

    def test_tolerance_stops_early_and_consistently(self):
        problem = SorProblem(rows=12, cols=12, iterations=500,
                             tolerance=1e-3)
        seq = run_sequential_sor(problem)
        amber = run_amber_sor(problem, nodes=2, cpus_per_node=2, sections=4,
                              collect_grid=True)
        assert amber.iterations_run == seq.iterations_run
        assert amber.iterations_run < 500
        assert np.array_equal(seq.grid, amber.grid)

    def test_deterministic(self):
        a = run_amber_sor(SMALL, nodes=2, cpus_per_node=2, sections=4)
        b = run_amber_sor(SMALL, nodes=2, cpus_per_node=2, sections=4)
        assert a.elapsed_us == b.elapsed_us
        assert a.stats.as_dict() == b.stats.as_dict()


class TestAmberSorStructure:
    def test_paper_sectioning_rule(self):
        assert default_sections(1) == 8
        assert default_sections(2) == 8
        assert default_sections(3) == 6
        assert default_sections(4) == 8
        assert default_sections(6) == 6
        assert default_sections(8) == 8

    def test_static_placement_no_object_moves(self):
        """The SOR program uses static placement: sections are created on
        their nodes and never move."""
        amber = run_amber_sor(SMALL, nodes=2, cpus_per_node=2, sections=4)
        assert amber.stats.object_moves == 0

    def test_edges_cross_nodes_as_remote_invocations(self):
        amber = run_amber_sor(SMALL, nodes=2, cpus_per_node=2, sections=2)
        # One internal boundary between nodes: 2 edges x 2 colors x
        # 6 iterations = 24 remote put_edge calls, plus convergence
        # reports from the far section.
        assert amber.stats.total_remote_invocations >= 24

    def test_single_node_uses_no_network(self):
        amber = run_amber_sor(SMALL, nodes=1, cpus_per_node=4, sections=4)
        cluster = amber.stats
        assert cluster.thread_migrations == 0

    def test_speedup_accounting(self):
        amber = run_amber_sor(SMALL, nodes=1, cpus_per_node=1, sections=1)
        assert amber.sequential_us == sequential_time_us(
            SMALL, amber.iterations_run, amber.per_point_us)
        assert amber.speedup == pytest.approx(
            amber.sequential_us / amber.elapsed_us)


class TestSorPerformanceShape:
    """Coarse performance-shape assertions; the full curves live in the
    benchmark harness."""

    def test_parallelism_helps_at_scale(self):
        problem = SorProblem(rows=61, cols=421, iterations=4)
        one = run_amber_sor(problem, nodes=1, cpus_per_node=1, sections=2)
        four = run_amber_sor(problem, nodes=2, cpus_per_node=2, sections=4)
        assert four.elapsed_us < one.elapsed_us / 2

    def test_overlap_beats_no_overlap(self):
        problem = SorProblem(rows=61, cols=421, iterations=6)
        with_overlap = run_amber_sor(problem, nodes=4, cpus_per_node=2,
                                     sections=8)
        without = run_amber_sor(problem, nodes=4, cpus_per_node=2,
                                sections=8, overlap=False)
        assert with_overlap.elapsed_us < without.elapsed_us

    def test_larger_grids_scale_better(self):
        small = run_amber_sor(SorProblem(rows=20, cols=60, iterations=4),
                              nodes=4, cpus_per_node=2)
        large = run_amber_sor(SorProblem(rows=80, cols=560, iterations=4),
                              nodes=4, cpus_per_node=2)
        assert large.speedup > small.speedup
