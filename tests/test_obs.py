"""Tests for the observability layer (``repro.obs``): metrics registry,
trace sinks, the Chrome/Perfetto exporter, and the profile analyzer."""

import json
import math

import pytest

from repro.obs.metrics import (
    _BUCKET_BASE,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.perfetto import chrome_trace_events, export_chrome_trace
from repro.obs.profile import (
    ThreadProfile,
    analyze_trace,
    bucket_for_state,
    critical_path,
    profile_result,
    render_profile,
)
from repro.obs.sinks import JsonlSink, NullSink, RingSink
from repro.sim import (
    AmberProgram,
    ClusterConfig,
    Compute,
    Fork,
    Invoke,
    Join,
    New,
    Sleep,
    Tracer,
)
from repro.sim.objects import SimObject
from repro.sim.stats import ClusterStats, NodeStats
from repro.sim.sync import Lock
from repro.sim.trace import TraceEvent


class TestCounterGauge:
    def test_counter_increments_and_merges(self):
        a, b = Counter("x"), Counter("x")
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_tracks_last_max_mean(self):
        gauge = Gauge("queue")
        for value in (2, 8, 4):
            gauge.set(value)
        assert gauge.value == 4
        assert gauge.max == 8
        assert gauge.mean == pytest.approx(14 / 3)


class TestLatencyHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = LatencyHistogram("lat")
        for value in (1.0, 10.0, 100.0, 1000.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(1111.0)
        assert histogram.min == 1.0
        assert histogram.max == 1000.0

    def test_percentiles_within_bucket_error(self):
        histogram = LatencyHistogram("lat")
        for value in range(1, 101):          # 1..100
            histogram.observe(float(value))
        # Buckets grow by 10**0.25 (~1.78x): estimates are conservative
        # but within one bucket of the true quantile.
        assert 50 <= histogram.percentile(50) <= 50 * 10 ** 0.25
        assert 90 <= histogram.percentile(90) <= 90 * 10 ** 0.25
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) >= 1.0

    def test_zero_values_get_dedicated_bucket(self):
        histogram = LatencyHistogram("lat")
        for _ in range(9):
            histogram.observe(0.0)
        histogram.observe(1000.0)
        assert histogram.percentile(50) == 0.0
        assert histogram.percentile(99) == pytest.approx(1000.0)

    def test_single_value_percentiles_are_exact(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(123.0)
        for p in (1, 50, 99):
            assert histogram.percentile(p) == 123.0

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram("lat").percentile(99) == 0.0

    def test_rejects_negative_and_bad_percentile(self):
        histogram = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            histogram.observe(-1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_merge_is_bucketwise(self):
        a, b = LatencyHistogram("lat"), LatencyHistogram("lat")
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (1000.0, 2000.0):
            b.observe(value)
        a.merge(b)
        assert a.count == 5
        assert a.min == 1.0
        assert a.max == 2000.0
        assert a.percentile(99) == 2000.0

    def test_summary_has_quantile_keys(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(5.0)
        summary = histogram.summary()
        for key in ("count", "mean", "min", "p50", "p90", "p99", "max"):
            assert key in summary


class TestHistogramQuantileAccuracy:
    """p50/p90/p99 against exact quantiles of known distributions: the
    log-scale estimate must land within one bucket (a factor of
    10**0.25) of the true order statistic, never below it except where
    clamping to the tracked max applies."""

    PERCENTILES = (50, 90, 99)

    @staticmethod
    def _exact(values, p):
        """The order statistic the histogram targets: the smallest
        element whose rank covers ``ceil(count * p / 100)``."""
        ordered = sorted(values)
        rank = max(1, min(math.ceil(len(ordered) * p / 100.0),
                          len(ordered)))
        return ordered[rank - 1]

    def _assert_within_one_bucket(self, values):
        histogram = LatencyHistogram("lat")
        for value in values:
            histogram.observe(value)
        for p in self.PERCENTILES:
            exact = self._exact(values, p)
            got = histogram.percentile(p)
            # Conservative: at or above the exact quantile (up to the
            # tracked max), and no more than one bucket width over.
            assert got >= min(exact, histogram.max) * (1 - 1e-12), \
                (p, exact, got)
            assert got <= max(exact * _BUCKET_BASE, histogram.min), \
                (p, exact, got)

    def test_uniform_distribution(self):
        self._assert_within_one_bucket(
            [float(v) for v in range(1, 1001)])

    def test_log_spaced_distribution(self):
        # Six decades: exercises many distinct buckets.
        self._assert_within_one_bucket(
            [10 ** (i / 100.0) for i in range(0, 600)])

    def test_heavy_tail_distribution(self):
        # 99% fast ops + 1% thousand-fold stragglers: p99 must not be
        # dragged down by the dense head.
        values = [1.0 + (i % 7) * 0.1 for i in range(990)]
        values += [1500.0 + i for i in range(10)]
        self._assert_within_one_bucket(values)

    def test_duplicates_only(self):
        self._assert_within_one_bucket([42.0] * 500)

    def test_subunit_values(self):
        # Below 1.0 the log indices go negative; accuracy must hold.
        self._assert_within_one_bucket(
            [0.001 * v for v in range(1, 400)])

    def test_empty_histogram_percentiles_are_zero(self):
        histogram = LatencyHistogram("lat")
        for p in self.PERCENTILES:
            assert histogram.percentile(p) == 0.0

    def test_single_sample_is_exact_at_every_percentile(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(7.25)
        for p in (0, 1, 50, 90, 99, 100):
            assert histogram.percentile(p) == 7.25


class TestMetricsRegistry:
    def test_shorthands_and_as_dict(self):
        registry = MetricsRegistry()
        registry.inc("moves", 3)
        registry.sample("queue", 7.0)
        registry.observe("invoke_us", 250.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["moves"] == 3
        assert snapshot["gauges"]["queue"]["max"] == 7.0
        for quantile in ("p50", "p90", "p99"):
            assert quantile in snapshot["histograms"]["invoke_us"]

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 10.0)
        b.observe("lat", 1000.0)
        b.inc("n")
        merged = merge_registries([a, b])
        assert merged.histograms["lat"].count == 2
        assert merged.counters["n"].value == 1
        # Inputs unchanged.
        assert a.histograms["lat"].count == 1

    def test_render_mentions_all_instruments(self):
        registry = MetricsRegistry()
        registry.observe("lat", 10.0)
        registry.inc("n", 2)
        registry.sample("depth", 3)
        text = registry.render(title="T")
        for token in ("T", "lat", "n", "depth", "p99"):
            assert token in text
        assert MetricsRegistry().render() == "(no metrics)"


class TestSinks:
    def test_ring_sink_evicts_oldest_with_dropped_count(self):
        sink = RingSink(maxlen=3)
        for t in range(6):
            sink.append(TraceEvent(float(t), "run", 0))
        assert sink.dropped == 3
        assert [event.t_us for event in sink.events] == [3.0, 4.0, 5.0]

    def test_ring_sink_rejects_bad_maxlen(self):
        with pytest.raises(ValueError):
            RingSink(0)

    def test_jsonl_sink_streams_parseable_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer(sink=JsonlSink(str(path)))
        tracer.emit(1.0, "compute", 0, thread="t1", dur_us=5.0)
        tracer.emit(2.0, "migrate-out", 0, thread="t1", vaddr=0x10)
        tracer.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first == {"t_us": 1.0, "kind": "compute", "node": 0,
                         "thread": "t1", "dur_us": 5.0}
        assert second["vaddr"] == 0x10
        assert tracer.dropped == 0

    def test_null_sink_counts_and_discards(self):
        tracer = Tracer(sink=NullSink())
        tracer.emit(1.0, "run", 0)
        assert tracer.events == []
        assert tracer.dropped == 1


def _sor_trace(fast_rows=16):
    """A small traced SOR run (2 nodes, guaranteed migrations)."""
    from repro.apps.sor import SorProblem, run_amber_sor
    tracer = Tracer()
    result = run_amber_sor(SorProblem(rows=fast_rows, cols=48,
                                      iterations=2),
                           nodes=2, cpus_per_node=2, sections=2,
                           tracer=tracer)
    return tracer, result


class TestPerfettoExporter:
    def test_export_writes_loadable_json(self, tmp_path):
        tracer, result = _sor_trace()
        path = tmp_path / "trace.json"
        count = export_chrome_trace(tracer.events, str(path),
                                    nodes=result.cluster.config.nodes)
        document = json.loads(path.read_text())
        assert set(document) >= {"traceEvents", "displayTimeUnit"}
        assert len(document["traceEvents"]) == count > 0
        for entry in document["traceEvents"]:
            assert {"name", "ph", "pid"} <= set(entry)

    def test_schema_timestamps_and_track_mapping(self):
        tracer, result = _sor_trace()
        entries = chrome_trace_events(tracer.events,
                                      nodes=result.cluster.config.nodes)
        nodes = result.cluster.config.nodes
        instant_ts = []
        for entry in entries:
            if entry["ph"] == "M":
                continue
            assert 0 <= entry["pid"] < nodes          # pid == node id
            assert entry["ts"] >= 0
            if entry["ph"] == "X":
                assert entry["dur"] > 0
            if entry["ph"] == "i":
                instant_ts.append(entry["ts"])
        # Events are sorted before export: instants are monotonic.
        assert instant_ts == sorted(instant_ts)

    def test_metadata_names_every_node_and_thread(self):
        tracer, result = _sor_trace()
        entries = chrome_trace_events(tracer.events,
                                      nodes=result.cluster.config.nodes)
        metadata = [e for e in entries if e["ph"] == "M"]
        process_names = {e["pid"]: e["args"]["name"] for e in metadata
                         if e["name"] == "process_name"}
        assert process_names == {0: "node 0", 1: "node 1"}
        thread_names = {e["args"]["name"] for e in metadata
                        if e["name"] == "thread_name"}
        assert "main" in thread_names
        assert "kernel" in thread_names

    def test_migrations_become_flow_pairs(self):
        tracer, _ = _sor_trace()
        entries = chrome_trace_events(tracer.events)
        starts = [e for e in entries if e["ph"] == "s"]
        finishes = [e for e in entries if e["ph"] == "f"]
        assert len(starts) > 0
        # Every finish closes a started flow id; ids are unique.
        start_ids = [e["id"] for e in starts]
        assert len(set(start_ids)) == len(start_ids)
        assert {e["id"] for e in finishes} <= set(start_ids)

    def test_compute_slices_are_backdated(self):
        events = [TraceEvent(100.0, "compute", 0, "t1", dur_us=40.0)]
        entries = [e for e in chrome_trace_events(events)
                   if e["ph"] == "X"]
        assert entries[0]["ts"] == pytest.approx(60.0)
        assert entries[0]["dur"] == pytest.approx(40.0)


def _hand_built_trace():
    """A deterministic 2-node, 2-thread event stream with known answers."""
    E = TraceEvent
    return [
        E(0.0, "ready", 0, "t1"),
        E(10.0, "run", 0, "t1"),                       # queue 10
        E(60.0, "compute", 0, "t1", dur_us=50.0),      # compute 50
        E(60.0, "migrate-out", 0, "t1"),
        E(90.0, "migrate-in", 1, "t1"),                # migration 30
        E(90.0, "ready", 1, "t1"),
        E(95.0, "run", 1, "t1"),                       # queue 5
        E(135.0, "compute", 1, "t1", dur_us=40.0),     # compute 40
        E(135.0, "block", 1, "t1", detail="lock"),
        E(155.0, "ready", 1, "t1"),                    # lock-wait 20
        E(160.0, "run", 1, "t1"),                      # queue 5
        E(0.0, "ready", 0, "t2"),
        E(5.0, "run", 0, "t2"),                        # queue 5
        E(25.0, "compute", 0, "t2", dur_us=20.0),      # compute 20
        E(25.0, "block", 0, "t2", detail="join"),
        E(125.0, "ready", 0, "t2"),                    # blocked 100
    ]


class TestAnalyzeTrace:
    def test_buckets_from_hand_built_two_node_trace(self):
        profiles = {p.name: p for p in analyze_trace(_hand_built_trace())}
        t1 = profiles["t1"]
        assert t1.buckets["compute"] == pytest.approx(90.0)
        assert t1.buckets["migration"] == pytest.approx(30.0)
        assert t1.buckets["queue"] == pytest.approx(20.0)
        assert t1.buckets["lock-wait"] == pytest.approx(20.0)
        assert t1.migrations == 1
        t2 = profiles["t2"]
        assert t2.buckets["compute"] == pytest.approx(20.0)
        assert t2.buckets["blocked"] == pytest.approx(100.0)

    def test_critical_path_is_busiest_thread(self):
        profiles = analyze_trace(_hand_built_trace())
        assert critical_path(profiles).name == "t1"
        assert critical_path([]) is None

    def test_render_reports_buckets_and_critical_path(self):
        profiles = analyze_trace(_hand_built_trace())
        text = render_profile(profiles, elapsed_us=160.0)
        for token in ("compute", "migration", "queue", "lock-wait",
                      "critical path: t1", "TOTAL"):
            assert token in text

    def test_bucket_for_state_classification(self):
        assert bucket_for_state("running") == "compute"
        assert bucket_for_state("ready") == "queue"
        assert bucket_for_state("transit") == "migration"
        assert bucket_for_state("blocked", "lock") == "lock-wait"
        assert bucket_for_state("blocked", "barrier") == "lock-wait"
        assert bucket_for_state("blocked", "join") == "blocked"

    def test_thread_profile_fractions(self):
        profile = ThreadProfile("t", {"compute": 75.0, "queue": 25.0})
        assert profile.total_us == 100.0
        assert profile.fraction("compute") == pytest.approx(0.75)
        assert ThreadProfile("idle").fraction("compute") == 0.0


class _LockUser(SimObject):
    def __init__(self, lock):
        self.lock = lock

    def work(self, ctx, us):
        yield Invoke(self.lock, "acquire")
        yield Compute(us)
        yield Invoke(self.lock, "release")


class TestProfileResult:
    def test_exact_accounting_covers_the_run(self):
        def main(ctx):
            yield Compute(400.0)
            yield Sleep(300.0)

        result = AmberProgram(ClusterConfig(nodes=1)).run(main)
        profiles = {p.name: p for p in profile_result(result)}
        main_profile = profiles["main"]
        assert main_profile.buckets["compute"] >= 400.0
        assert main_profile.buckets["blocked"] >= 300.0
        # All time is attributed somewhere within the run's span.
        assert main_profile.total_us <= result.elapsed_us + 1e-6

    def test_lock_contention_shows_as_lock_wait(self):
        def main(ctx):
            lock = yield New(Lock)
            user = yield New(_LockUser, lock)
            first = yield Fork(user, "work", 2000.0)
            second = yield Fork(user, "work", 2000.0)
            yield Join(first)
            yield Join(second)

        result = AmberProgram(
            ClusterConfig(nodes=1, cpus_per_node=4)).run(main)
        profiles = profile_result(result)
        assert sum(p.buckets.get("lock-wait", 0.0)
                   for p in profiles) > 0.0
        assert result.metrics.histograms["lock_wait_us"].count == 2
        assert result.metrics.histograms["lock_hold_us"].count == 2


class TestClusterStatsExtensions:
    def test_utilization_zero_elapsed(self):
        stats = NodeStats(node=0, cpus=4, cpu_busy_us=100.0)
        assert stats.utilization(0.0) == 0.0
        assert stats.utilization(-5.0) == 0.0

    def test_utilization_zero_cpus(self):
        stats = NodeStats(node=0, cpus=0, cpu_busy_us=100.0)
        assert stats.utilization(1000.0) == 0.0

    def test_utilization_normal(self):
        stats = NodeStats(node=0, cpus=2, cpu_busy_us=1000.0)
        assert stats.utilization(1000.0) == pytest.approx(0.5)

    def test_cluster_mean_utilization_edge_cases(self):
        assert ClusterStats().mean_utilization(1000.0) == 0.0
        stats = ClusterStats(nodes=[NodeStats(0, 2, cpu_busy_us=500.0)])
        assert stats.mean_utilization(0.0) == 0.0

    def test_merge_accumulates_counters_and_metrics(self):
        a = ClusterStats(nodes=[NodeStats(0, 2, local_invocations=3)],
                         thread_migrations=1, metrics=MetricsRegistry())
        a.metrics.observe("invoke_local_us", 10.0)
        b = ClusterStats(nodes=[NodeStats(0, 2, local_invocations=5),
                                NodeStats(1, 2, remote_invocations=2)],
                         thread_migrations=4, metrics=MetricsRegistry())
        b.metrics.observe("invoke_local_us", 1000.0)
        a.merge(b)
        assert a.node(0).local_invocations == 8
        assert a.node(1).remote_invocations == 2      # list extended
        assert a.thread_migrations == 5
        assert a.metrics.histograms["invoke_local_us"].count == 2

    def test_as_dict_reports_histogram_quantiles(self):
        stats = ClusterStats(nodes=[NodeStats(0, 2)],
                             metrics=MetricsRegistry())
        stats.metrics.observe("migration_us", 500.0)
        out = stats.as_dict()
        assert out["migration_us_count"] == 1
        for key in ("migration_us_p50", "migration_us_p90",
                    "migration_us_p99", "migration_us_max"):
            assert key in out

    def test_as_dict_without_metrics_unchanged(self):
        out = ClusterStats(nodes=[NodeStats(0, 2)]).as_dict()
        assert "local_invocations" in out
        assert not any(key.endswith("_p99") for key in out)


class TestRunMetrics:
    def test_sor_run_populates_operation_histograms(self):
        _, result = _sor_trace()
        histograms = result.cluster.metrics.histograms
        for name in ("invoke_local_us", "invoke_remote_us",
                     "migration_us", "net_queue_us"):
            assert histograms[name].count > 0, name
        assert math.isfinite(histograms["invoke_remote_us"].percentile(99))

    def test_remote_invoke_slower_than_local(self):
        _, result = _sor_trace()
        histograms = result.cluster.metrics.histograms
        assert (histograms["invoke_remote_us"].percentile(50)
                > histograms["invoke_local_us"].percentile(50))
