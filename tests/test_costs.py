"""Tests for the cost model's Table 1 calibration (paper section 5)."""

import pytest

from repro.core.costs import CostModel

PAPER_TABLE_1_US = {
    "object create": 180.0,
    "local invoke/return": 12.0,
    "remote invoke/return": 8320.0,
    "object move": 12430.0,
    "thread start/join": 1330.0,
}


class TestFireflyCalibration:
    """The analytic predictions must land exactly on Table 1; the
    microbenchmark in benchmarks/test_table1_latencies.py confirms the
    simulator charges the same numbers end to end."""

    def setup_method(self):
        self.costs = CostModel.firefly()

    def test_object_create(self):
        assert self.costs.object_create_us() == \
            PAPER_TABLE_1_US["object create"]

    def test_local_invoke_return(self):
        total = self.costs.local_invoke_us + self.costs.local_return_us
        assert total == PAPER_TABLE_1_US["local invoke/return"]

    def test_remote_invoke_return(self):
        assert self.costs.remote_invoke_return_us() == \
            pytest.approx(PAPER_TABLE_1_US["remote invoke/return"])

    def test_object_move(self):
        # Table 1 conditions: the object fits in one packet (1000 bytes
        # here), four CPUs per node.
        assert self.costs.object_move_us(1000, source_cpus=4) == \
            pytest.approx(PAPER_TABLE_1_US["object move"])

    def test_thread_start_join(self):
        assert self.costs.thread_start_join_us() == \
            pytest.approx(PAPER_TABLE_1_US["thread start/join"])

    def test_wire_rate_is_10_mbit(self):
        # 0.8 us/byte == 1.25 MB/s == 10 Mbit/s Ethernet.
        assert self.costs.per_byte_us == pytest.approx(0.8)

    def test_remote_is_orders_of_magnitude_dearer_than_local(self):
        """Section 1.1: remote references are "three to four orders of
        magnitude more expensive" than local ones."""
        ratio = (self.costs.remote_invoke_return_us()
                 / (self.costs.local_invoke_us + self.costs.local_return_us))
        assert 100 <= ratio <= 10_000
        assert ratio == pytest.approx(8320 / 12)

    def test_move_cost_grows_with_cpus(self):
        """Section 3.5: "the need to preempt all running threads causes the
        cost of mobility to increase as processors are added"."""
        one = self.costs.object_move_us(1000, source_cpus=1)
        four = self.costs.object_move_us(1000, source_cpus=4)
        eight = self.costs.object_move_us(1000, source_cpus=8)
        assert one < four < eight
        assert four - one == pytest.approx(3 * self.costs.preempt_us)

    def test_move_cost_grows_with_size(self):
        small = self.costs.object_move_us(100, source_cpus=4)
        big = self.costs.object_move_us(10_000, source_cpus=4)
        assert big - small == pytest.approx(9_900 * self.costs.per_byte_us)

    def test_payload_increases_remote_invoke(self):
        empty = self.costs.remote_invoke_return_us(0)
        loaded = self.costs.remote_invoke_return_us(4096)
        assert loaded - empty == pytest.approx(4096 * self.costs.per_byte_us)


class TestCostModelMechanics:
    def test_replace_produces_new_model(self):
        base = CostModel.firefly()
        fast = base.replace(per_byte_us=0.08)
        assert fast.per_byte_us == pytest.approx(0.08)
        assert base.per_byte_us == pytest.approx(0.8)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel.firefly().per_byte_us = 1.0

    def test_free_model_is_zero_cost(self):
        free = CostModel.free()
        assert free.remote_invoke_return_us() == 0
        assert free.object_move_us(1000, 4) == 0
        assert free.timeslice_us == float("inf")

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(local_invoke_us=-1.0)
        with pytest.raises(ValueError):
            CostModel.firefly().replace(per_byte_us=-0.1)

    def test_zero_byte_counts_rejected(self):
        with pytest.raises(ValueError):
            CostModel(page_bytes=0)
        with pytest.raises(ValueError):
            CostModel(thread_packet_bytes=0)

    def test_zero_timeslice_rejected(self):
        with pytest.raises(ValueError):
            CostModel(timeslice_us=0.0)

    def test_page_transfer_composition(self):
        costs = CostModel.firefly()
        expected = (costs.page_fault_us + costs.wire_us(costs.control_bytes)
                    + costs.manager_us + costs.page_pack_us
                    + costs.wire_us(costs.page_bytes) + costs.page_install_us)
        assert costs.page_transfer_us() == pytest.approx(expected)
