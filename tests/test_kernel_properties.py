"""Property-based tests over the simulated kernel.

Random programs of moves, attaches, invocations, and thread forks are run
to completion; afterwards the object space must be consistent:

* every live mutable object is RESIDENT on exactly one node, which is
  the authoritative location, and ``resolve`` from *any* node reaches it;
* attachment groups are fully co-located;
* immutable objects are resident wherever a replica landed, and the set
  of replicas only grows;
* invocations always observe and mutate the single authoritative state
  (counter totals add up), regardless of object motion.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import forwarding
from repro.core.descriptor import DescriptorState
from repro.errors import AmberError
from repro.sim.objects import SimObject
from repro.sim.program import run_program
from repro.sim.syscalls import (
    Attach,
    Compute,
    Fork,
    Invoke,
    Join,
    MoveTo,
    New,
    SetImmutable,
    Unattach,
)

N_NODES = 4
N_OBJECTS = 5


class Box(SimObject):
    def __init__(self, index):
        self.index = index
        self.hits = 0

    def hit(self, ctx, amount):
        yield Compute(3.0)
        self.hits += amount
        return self.hits


# One random program step:
#   ("move", obj, node) | ("invoke", obj) | ("attach", a, b)
#   ("unattach", a) | ("freeze", obj) | ("fork", obj)
step_strategy = st.one_of(
    st.tuples(st.just("move"), st.integers(0, N_OBJECTS - 1),
              st.integers(0, N_NODES - 1)),
    st.tuples(st.just("invoke"), st.integers(0, N_OBJECTS - 1),
              st.just(0)),
    st.tuples(st.just("attach"), st.integers(0, N_OBJECTS - 1),
              st.integers(0, N_OBJECTS - 1)),
    st.tuples(st.just("unattach"), st.integers(0, N_OBJECTS - 1),
              st.just(0)),
    st.tuples(st.just("freeze"), st.integers(0, N_OBJECTS - 1),
              st.just(0)),
    st.tuples(st.just("fork"), st.integers(0, N_OBJECTS - 1),
              st.just(0)),
)


def random_program(steps):
    def main(ctx):
        boxes = []
        for index in range(N_OBJECTS):
            boxes.append((yield New(Box, index,
                                    on_node=index % N_NODES)))
        frozen = set()
        expected_hits = [0] * N_OBJECTS
        threads = []
        for op, a, b in steps:
            box = boxes[a]
            try:
                if op == "move":
                    yield MoveTo(box, b)
                elif op == "invoke":
                    yield Invoke(box, "hit", 1)
                    expected_hits[a] += 1
                elif op == "attach" and a != b:
                    if a in frozen or b in frozen:
                        continue
                    yield Attach(box, boxes[b])
                elif op == "unattach":
                    yield Unattach(box)
                elif op == "freeze":
                    yield SetImmutable(box)
                    frozen.add(a)
                elif op == "fork":
                    if a in frozen:
                        continue
                    threads.append((a, (yield Fork(box, "hit", 1))))
                    expected_hits[a] += 1
            except AmberError:
                # Rejected combinations (attach across nodes, attach of
                # immutables, ...) are fine; invariants must still hold.
                pass
        for _, thread in threads:
            yield Join(thread)
        finals = []
        for box in boxes:
            if box.index in frozen:
                finals.append(None)
            else:
                finals.append((yield Invoke(box, "hit", 0)))
        return boxes, frozen, expected_hits, finals

    return main


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(step_strategy, max_size=25))
def test_object_space_consistent_after_random_program(steps):
    result = run_program(random_program(steps), nodes=N_NODES,
                         cpus_per_node=2)
    boxes, frozen, expected_hits, finals = result.value
    cluster = result.cluster
    tables = cluster.descriptor_tables()

    for box in boxes:
        vaddr = box.vaddr
        resident_nodes = [node for node, table in tables.items()
                          if table.is_resident(vaddr)]
        if box.index in frozen:
            # Immutable: at least the original; every replica RESIDENT.
            assert box._location in resident_nodes
            assert len(resident_nodes) >= 1
        else:
            # Mutable: exactly one authoritative copy...
            assert resident_nodes == [box._location]
            # ...reachable by chain from every node.
            for start in range(N_NODES):
                route = forwarding.resolve(vaddr, start, tables,
                                           cluster.home_node)
                assert route.destination == box._location

    # Attachment groups are co-located.
    for member in cluster.attachments.members():
        group = cluster.attachments.group(member)
        locations = {cluster.objects[v]._location for v in group}
        assert len(locations) == 1

    # Counter totals: every invocation (sync or forked) landed exactly
    # once on the single authoritative copy.
    for box, expected, final in zip(boxes, expected_hits, finals):
        if box.index not in frozen:
            assert final == expected
            assert box.hits == expected


@settings(max_examples=25, deadline=None)
@given(moves=st.lists(st.integers(0, N_NODES - 1), max_size=10),
       prober=st.integers(0, N_NODES - 1))
def test_any_move_sequence_still_invocable_from_anywhere(moves, prober):
    """After any sequence of moves, a thread anchored on an arbitrary
    node can still invoke the object (chain + home fallback)."""
    class Prober(SimObject):
        def probe(self, ctx, target):
            value = yield Invoke(target, "hit", 1)
            return value

    def main(ctx):
        box = yield New(Box, 0)
        anchor = yield New(Prober, on_node=prober)
        for dest in moves:
            yield MoveTo(box, dest)
        value = yield Invoke(anchor, "probe", box)
        return value

    result = run_program(main, nodes=N_NODES, cpus_per_node=2)
    assert result.value == 1
