"""Tests for the simulation tracer and its renderings."""

import pytest

from repro.sim.cluster import ClusterConfig
from repro.sim.program import AmberProgram
from repro.sim.syscalls import Fork, Invoke, Join, MoveTo, New, SetImmutable
from repro.sim.trace import (
    TraceEvent,
    Tracer,
    render_log,
    render_migration_matrix,
)
from tests.helpers import Cell


def traced_run(main):
    tracer = Tracer()
    program = AmberProgram(ClusterConfig(nodes=3, cpus_per_node=2))
    result = program.run(main, tracer=tracer)
    return tracer, result


class TestTracer:
    def test_invocations_traced(self):
        def main(ctx):
            cell = yield New(Cell)
            yield Invoke(cell, "get")
            yield MoveTo(cell, 1)
            yield Invoke(cell, "get")

        tracer, _ = traced_run(main)
        kinds = tracer.by_kind()
        assert kinds.get("invoke-local", 0) >= 1
        assert kinds.get("invoke-remote", 0) >= 1
        assert kinds.get("move", 0) == 1

    def test_migration_pairing(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 2)
            yield Invoke(cell, "get")   # main: 0 -> 2 -> 0

        tracer, _ = traced_run(main)
        moves = tracer.migrations()
        assert ("main", 0, 2) in moves
        assert ("main", 2, 0) in moves

    def test_replication_traced(self):
        def main(ctx):
            cell = yield New(Cell)
            yield SetImmutable(cell)
            yield MoveTo(cell, 1)

        tracer, _ = traced_run(main)
        assert tracer.by_kind().get("replicate", 0) == 1

    def test_events_are_time_ordered(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            yield Invoke(cell, "add", 1)
            worker = yield Fork(cell, "add", 2)
            yield Join(worker)

        tracer, _ = traced_run(main)
        times = [event.t_us for event in tracer.events]
        assert times == sorted(times)
        assert len(tracer.events) >= 4

    def test_bounded_buffer_drops_oldest(self):
        tracer = Tracer(max_events=3)
        for i in range(6):
            tracer.emit(float(i), "invoke-local", 0)
        assert tracer.dropped == 3
        assert [event.t_us for event in tracer.events] == [3.0, 4.0, 5.0]

    def test_no_tracer_no_overhead(self):
        """Runs without a tracer behave identically (and don't crash)."""
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            return (yield Invoke(cell, "get"))

        program = AmberProgram(ClusterConfig(nodes=2))
        with_tracer = program.run(main, tracer=Tracer())
        without = program.run(main)
        assert with_tracer.elapsed_us == without.elapsed_us


class TestRenderings:
    def test_render_log(self):
        events = [TraceEvent(1.5, "invoke-local", 0, "main", 0x1000, "get"),
                  TraceEvent(9.0, "migrate-out", 0, "main", 0x1000)]
        out = render_log(events)
        assert "invoke-local" in out
        assert "0x1000" in out
        assert "migrate-out" in out

    def test_render_log_truncates(self):
        events = [TraceEvent(float(i), "invoke-local", 0)
                  for i in range(10)]
        out = render_log(events, limit=4)
        assert "... 6 more events" in out

    def test_migration_matrix(self):
        tracer = Tracer()
        tracer.emit(1.0, "migrate-out", 0, "t")
        tracer.emit(2.0, "migrate-in", 2, "t")
        tracer.emit(3.0, "migrate-out", 2, "t")
        tracer.emit(4.0, "migrate-in", 0, "t")
        out = render_migration_matrix(tracer, nodes=3)
        lines = out.splitlines()
        assert lines[0].startswith("src\\dst")
        # Row for node 0 shows one migration to node 2 and vice versa.
        assert lines[1].split() == ["0", "0", "0", "1"]
        assert lines[3].split() == ["2", "1", "0", "0"]
