"""AmberPerf: harness determinism, BENCH files, compare, self-profiler."""

import copy
import json

import pytest

from repro.perf import benchfile
from repro.perf.harness import (
    SUITE,
    BenchResult,
    SuiteResult,
    bench_names,
    run_benchmark,
    run_suite,
)
from repro.perf.hotprof import (
    HOOK_NAMES,
    HotLoopProfiler,
    profile_runs,
    render_hotloop,
)

_BY_NAME = {spec.name: spec for spec in SUITE}


def _mini_suite(reps=2):
    """A cheap but representative slice: calibration + one simulated
    benchmark (the compare tests need the calibration row)."""
    return run_suite(fast=True, reps=reps, warmup=0,
                     only=["calibration", "dispatch"])


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


class TestHarness:
    def test_suite_roster_meets_coverage_floor(self):
        fast = [_BY_NAME[name] for name in bench_names(fast=True)]
        assert sum(1 for s in fast if s.kind == "micro") >= 4
        assert sum(1 for s in fast if s.kind == "macro") >= 3
        assert any(s.kind == "calibration" for s in fast)
        # The live-socket benchmark stays out of the fast/CI suite.
        assert "mesh_roundtrip" not in bench_names(fast=True)
        assert "mesh_roundtrip" in bench_names(fast=False)

    def test_sim_benchmark_is_deterministic_across_reps(self):
        """Identical event counts and fingerprints on every repetition
        of a seeded sim benchmark; only wall-clock may vary."""
        result = run_benchmark(_BY_NAME["dispatch"], fast=True,
                               reps=3, warmup=0)
        assert result.error == ""
        assert result.deterministic
        assert result.work > 0
        assert len(result.wall_s) == 3

    def test_fingerprints_stable_across_separate_invocations(self):
        first = run_benchmark(_BY_NAME["sor_sim"], fast=True,
                              reps=1, warmup=0)
        second = run_benchmark(_BY_NAME["sor_sim"], fast=True,
                               reps=1, warmup=0)
        assert first.fingerprint == second.fingerprint
        assert first.work == second.work

    def test_rate_is_work_over_median(self):
        result = BenchResult(
            name="x", kind="micro", unit="events", reps=3, warmup=0,
            work=1000, fingerprint="f", deterministic=True,
            wall_s=[0.2, 0.1, 0.4])
        assert result.median_s == pytest.approx(0.2)
        assert result.rate == pytest.approx(5000.0)

    def test_benchmark_error_is_recorded_not_raised(self):
        from repro.perf.harness import BenchSpec

        def boom(fast):
            raise RuntimeError("kaput")

        result = run_benchmark(
            BenchSpec("boom", "micro", "ops", boom), fast=True,
            reps=2, warmup=0)
        assert "kaput" in result.error
        assert not result.deterministic

    def test_unknown_benchmark_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_suite(only=["no-such-bench"])

    def test_render_lists_every_benchmark(self):
        suite = _mini_suite()
        text = suite.render()
        assert "calibration" in text and "dispatch" in text


# ---------------------------------------------------------------------------
# BENCH files
# ---------------------------------------------------------------------------


class TestBenchFile:
    def test_write_load_roundtrip(self, tmp_path):
        suite = _mini_suite()
        path = str(tmp_path / "BENCH_test.json")
        written = benchfile.write_bench_json(suite, path, rev="abc123")
        loaded = benchfile.load_bench(path)
        assert loaded == written
        assert loaded["schema"] == benchfile.SCHEMA
        assert loaded["git_rev"] == "abc123"
        assert "fingerprint" in loaded["machine"]
        bench = loaded["benchmarks"]["dispatch"]
        for key in ("kind", "unit", "rate", "work", "wall_s",
                    "fingerprint", "deterministic"):
            assert key in bench
        assert bench["wall_s"]["median"] > 0

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            benchfile.validate_bench({"schema": "amberperf-bench/999"})

    def test_validate_rejects_missing_keys(self):
        doc = benchfile.bench_dict(_mini_suite())
        del doc["machine"]
        with pytest.raises(ValueError, match="missing"):
            benchfile.validate_bench(doc)

    def test_validate_rejects_nondeterministic_benchmark(self):
        doc = benchfile.bench_dict(_mini_suite())
        doc["benchmarks"]["dispatch"]["deterministic"] = False
        with pytest.raises(ValueError, match="non-deterministic"):
            benchfile.validate_bench(doc)

    def test_git_rev_in_this_checkout(self):
        rev = benchfile.git_rev()
        assert rev == "unknown" or (rev and "\n" not in rev)


# ---------------------------------------------------------------------------
# Compare
# ---------------------------------------------------------------------------


def _synthetic_doc(rates, machine="m1", iqr_frac=0.01):
    """A schema-valid bench document with controlled rates and noise."""
    benchmarks = {}
    for name, rate in rates.items():
        kind = "calibration" if name == "calibration" else "micro"
        median = 1000.0 / rate
        benchmarks[name] = {
            "kind": kind, "unit": "ops", "reps": 3, "warmup": 1,
            "work": 1000, "rate": rate, "fingerprint": "f",
            "deterministic": True, "error": "",
            "wall_s": {"median": median, "iqr": median * iqr_frac,
                       "min": median, "max": median, "samples": []},
        }
    return {
        "schema": benchfile.SCHEMA,
        "machine": {"fingerprint": machine, "platform": "test",
                    "python": "3", "cpu_count": 1},
        "git_rev": "test", "fast": True, "reps": 3, "warmup": 1,
        "benchmarks": benchmarks,
    }


class TestCompare:
    def test_identical_rerun_passes(self):
        doc = _synthetic_doc({"calibration": 1e6, "dispatch": 1e5})
        result = benchfile.compare_benches(doc, copy.deepcopy(doc))
        assert result.ok
        assert not result.normalized
        assert all(d.ratio == pytest.approx(1.0) for d in result.deltas)

    def test_flags_synthetic_2x_slowdown(self):
        old = _synthetic_doc({"calibration": 1e6, "dispatch": 1e5,
                              "event_heap": 2e5})
        new = _synthetic_doc({"calibration": 1e6, "dispatch": 5e4,
                              "event_heap": 2e5})
        result = benchfile.compare_benches(old, new, threshold=0.25)
        assert not result.ok
        flagged = [d.name for d in result.regressions]
        assert flagged == ["dispatch"]
        assert "REGRESSION" in benchfile.render_compare(result)

    def test_calibration_is_never_gated(self):
        old = _synthetic_doc({"calibration": 1e6, "dispatch": 1e5})
        new = _synthetic_doc({"calibration": 1e5, "dispatch": 1e5})
        # Calibration dropped 10x (slower host) — reported, not flagged.
        result = benchfile.compare_benches(old, new)
        assert result.ok

    def test_cross_machine_normalizes_by_calibration(self):
        old = _synthetic_doc({"calibration": 1e6, "dispatch": 1e5},
                             machine="m1")
        # Half-speed host: calibration and dispatch both halve, so the
        # normalized ratio is 1.0 — no regression.
        new = _synthetic_doc({"calibration": 5e5, "dispatch": 5e4},
                             machine="m2")
        result = benchfile.compare_benches(old, new)
        assert result.normalized
        assert result.ok
        dispatch = next(d for d in result.deltas
                        if d.name == "dispatch")
        assert dispatch.ratio == pytest.approx(1.0)

    def test_cross_machine_still_flags_true_regression(self):
        old = _synthetic_doc({"calibration": 1e6, "dispatch": 1e5},
                             machine="m1")
        # Same host speed, but dispatch alone halved.
        new = _synthetic_doc({"calibration": 1e6, "dispatch": 5e4},
                             machine="m2")
        result = benchfile.compare_benches(old, new)
        assert result.normalized
        assert [d.name for d in result.regressions] == ["dispatch"]

    def test_noisy_benchmark_needs_larger_drop(self):
        old = _synthetic_doc({"calibration": 1e6, "jittery": 1e5},
                             iqr_frac=0.30)
        new = _synthetic_doc({"calibration": 1e6, "jittery": 6.5e4},
                             iqr_frac=0.30)
        # 35% drop < combined 60% noise floor: not flagged.
        assert benchfile.compare_benches(old, new,
                                         threshold=0.25).ok

    def test_disjoint_benchmarks_reported(self):
        old = _synthetic_doc({"calibration": 1e6, "gone": 1e5})
        new = _synthetic_doc({"calibration": 1e6, "fresh": 1e5})
        result = benchfile.compare_benches(old, new)
        assert result.only_old == ["gone"]
        assert result.only_new == ["fresh"]


# ---------------------------------------------------------------------------
# Hot-loop self-profiler
# ---------------------------------------------------------------------------


def _profiled_sor(sanitize=False, sample_every=256):
    from repro.apps.sor import SorProblem, run_amber_sor

    problem = SorProblem(rows=24, cols=96, iterations=3)
    with profile_runs(sample_every=sample_every) as profiler:
        if sanitize:
            from repro.analyze.runtime import sanitize_runs
            with sanitize_runs():
                run_amber_sor(problem, nodes=2, cpus_per_node=2)
        else:
            run_amber_sor(problem, nodes=2, cpus_per_node=2)
    return profiler


class TestHotLoopProfiler:
    def test_attributes_at_least_90_percent(self):
        profiler = _profiled_sor()
        assert profiler.events > 0
        assert profiler.attributed_fraction >= 0.9
        phases = profiler.phases()
        assert phases["dispatch"] > 0
        assert phases["heap-pop"] > 0
        assert phases["heap-push"] > 0

    def test_phase_seconds_sum_to_total(self):
        profiler = _profiled_sor()
        # Exclusive phases partition the run: they sum to total_s up to
        # the clamping slack on dispatch.
        assert sum(profiler.phases().values()) == pytest.approx(
            profiler.total_s, rel=0.05)

    def test_sanitizer_hook_overhead_is_broken_out(self):
        baseline = _profiled_sor(sanitize=False)
        sanitized = _profiled_sor(sanitize=True)
        assert baseline.phases()["hook:sanitizer"] == 0.0
        assert sanitized.phases()["hook:sanitizer"] > 0.0
        assert "sanitizer" in sanitized.attached
        assert "sanitizer" not in baseline.attached
        # The proxy must not change what the run computes.
        assert sanitized.events == baseline.events

    def test_detach_restores_engine_fast_loop(self):
        profiler = _profiled_sor()
        assert profiler.runs == 1
        # A run after the block must not accrue into the profiler.
        events_before = profiler.events
        from repro.apps.sor import SorProblem, run_amber_sor
        run_amber_sor(SorProblem(rows=12, cols=24, iterations=1),
                      nodes=1, cpus_per_node=1)
        assert profiler.events == events_before

    def test_nested_profile_runs_rejected(self):
        with profile_runs():
            with pytest.raises(RuntimeError, match="already active"):
                with profile_runs():
                    pass

    def test_samples_accumulate_for_trace_export(self):
        profiler = _profiled_sor(sample_every=64)
        assert len(profiler.samples) >= 2
        times = [t for t, _, _ in profiler.samples]
        assert times == sorted(times)

    def test_publish_mirrors_phases_into_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        profiler = _profiled_sor()
        metrics = MetricsRegistry()
        profiler.publish(metrics)
        counters = metrics.as_dict()["counters"]
        assert counters["hotloop_events"] == profiler.events
        assert counters["hotloop_dispatch_ns"] > 0

    def test_render_names_every_phase(self):
        text = render_hotloop(_profiled_sor())
        for name in HOOK_NAMES:
            assert f"hook:{name}" in text
        assert "events/sec" in text

    def test_attach_requires_detach_first(self):
        from repro.sim.cluster import ClusterConfig, SimCluster

        profiler = HotLoopProfiler()
        cluster = SimCluster(ClusterConfig(nodes=1, cpus_per_node=1))
        profiler.attach(cluster)
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                profiler.attach(cluster)
        finally:
            profiler.detach()
        assert cluster.sim.profiler is None


class TestProfilerPerfettoTrack:
    def test_track_events_and_export(self, tmp_path):
        from repro.obs.perfetto import (
            export_chrome_trace,
            profiler_track_events,
        )

        profiler = _profiled_sor(sample_every=64)
        events = profiler_track_events(profiler)
        assert events, "expected a non-empty self-profiler track"
        slices = [e for e in events if e.get("ph") == "X"]
        counters = [e for e in events if e.get("ph") == "C"]
        assert slices and counters
        assert all(e["pid"] == 9999 for e in slices)
        path = str(tmp_path / "trace.json")
        export_chrome_trace([], path, extra=events)
        doc = json.load(open(path))
        assert len(doc["traceEvents"]) == len(events)

    def test_empty_profiler_yields_no_track(self):
        from repro.obs.perfetto import profiler_track_events

        assert profiler_track_events(HotLoopProfiler()) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestPerfCli:
    def test_suite_writes_valid_bench_json(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "BENCH_cli.json")
        code = main(["perf", "--fast", "--reps", "1", "--warmup", "0",
                     "--bench", "calibration", "--bench", "dispatch",
                     "--json", path])
        assert code == 0
        doc = benchfile.load_bench(path)
        assert set(doc["benchmarks"]) == {"calibration", "dispatch"}
        assert "bench file written" in capsys.readouterr().out

    def test_compare_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        old = _synthetic_doc({"calibration": 1e6, "dispatch": 1e5})
        slow = _synthetic_doc({"calibration": 1e6, "dispatch": 4e4})
        old_path = str(tmp_path / "old.json")
        slow_path = str(tmp_path / "slow.json")
        json.dump(old, open(old_path, "w"))
        json.dump(slow, open(slow_path, "w"))
        assert main(["perf", "--compare", old_path, old_path]) == 0
        assert main(["perf", "--compare", old_path, slow_path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_profile_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "prof.json")
        trace = str(tmp_path / "trace.json")
        code = main(["perf", "--profile", "sor", "--fast",
                     "--json", out, "--trace-out", trace])
        assert code == 0
        prof = json.load(open(out))
        assert prof["attributed_fraction"] >= 0.9
        assert json.load(open(trace))["traceEvents"]
        assert "Hot-loop self-profile" in capsys.readouterr().out

    def test_committed_baseline_is_schema_valid(self):
        doc = benchfile.load_bench(
            "benchmarks/baseline/BENCH_baseline.json")
        kinds = [b["kind"] for b in doc["benchmarks"].values()]
        assert kinds.count("micro") >= 4
        assert kinds.count("macro") >= 3
