"""Property-based stress tests on the simulated synchronization objects.

Random workloads of lock/barrier users are generated; mutual exclusion,
lost-update freedom, and barrier cycle accounting must hold under every
interleaving the scheduler produces.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.objects import SimObject
from repro.sim.program import run_program
from repro.sim.sync import Barrier, Lock, SpinLock
from repro.sim.syscalls import Compute, Fork, Invoke, Join, MoveTo, New


class Shared(SimObject):
    def __init__(self, lock):
        self.lock = lock
        self.value = 0
        self.inside = 0
        self.overlap = False

    def work(self, ctx, rounds, hold_us):
        for _ in range(rounds):
            yield Invoke(self.lock, "acquire")
            self.inside += 1
            if self.inside > 1:
                self.overlap = True
            snapshot = self.value
            yield Compute(hold_us)
            self.value = snapshot + 1
            self.inside -= 1
            yield Invoke(self.lock, "release")
        return rounds


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    lock_kind=st.sampled_from(["lock", "spin"]),
    workers=st.lists(
        st.tuples(st.integers(1, 4),           # rounds
                  st.floats(1.0, 2_000.0)),    # hold time
        min_size=1, max_size=5),
    cpus=st.integers(1, 4),
    lock_node=st.integers(0, 1),
)
def test_mutual_exclusion_under_random_contention(lock_kind, workers,
                                                  cpus, lock_node):
    def main(ctx):
        cls = Lock if lock_kind == "lock" else SpinLock
        lock = yield New(cls)
        if lock_node:
            yield MoveTo(lock, lock_node)
        shared = yield New(Shared, lock)
        threads = []
        for rounds, hold_us in workers:
            threads.append((yield Fork(shared, "work", rounds, hold_us)))
        total = 0
        for thread in threads:
            total += yield Join(thread)
        return shared.value, total, shared.overlap

    value, total, overlap = run_program(
        main, nodes=2, cpus_per_node=cpus).value
    assert value == total        # no lost updates
    assert not overlap           # never two threads inside


class Phased(SimObject):
    def __init__(self, barrier):
        self.barrier = barrier
        self.phase_counts = []
        self.current = 0

    def member(self, ctx, phases, work_us):
        for phase in range(phases):
            yield Compute(work_us)
            self.current += 1
            yield Invoke(self.barrier, "wait")
            # After the barrier, everyone from this phase has arrived.
            self.phase_counts.append((phase, self.current))
            yield Invoke(self.barrier, "wait")   # exit barrier


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(parties=st.integers(2, 5), phases=st.integers(1, 4),
       jitter=st.lists(st.floats(0.0, 5_000.0), min_size=5, max_size=5))
def test_barrier_phases_never_interleave(parties, phases, jitter):
    def main(ctx):
        barrier = yield New(Barrier, parties)
        phased = yield New(Phased, barrier)
        threads = []
        for i in range(parties):
            threads.append((yield Fork(phased, "member", phases,
                                       jitter[i % len(jitter)])))
        for thread in threads:
            yield Join(thread)
        return phased.phase_counts, barrier.cycles

    counts, cycles = run_program(main, nodes=2, cpus_per_node=4).value
    # Each phase's post-barrier observation sees all arrivals of that
    # phase: current == parties * (phase + 1).
    for phase, observed in counts:
        assert observed == parties * (phase + 1)
    assert cycles == 2 * phases   # arrival + exit barrier per phase
