"""Unit tests for the live runtime's transport and message layer."""

import queue
import socket
import threading

import pytest

from repro.errors import RuntimeTransportError
from repro.runtime.messages import Hello, InvokeMsg, ResultMsg
from repro.runtime.transport import Mesh, recv_frame, send_frame


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    conn, _ = server.accept()
    server.close()
    return client, conn


class TestFraming:
    def test_roundtrip(self):
        a, b = socket_pair()
        try:
            send_frame(a, {"x": [1, 2, 3], "y": "hello"})
            assert recv_frame(b) == {"x": [1, 2, 3], "y": "hello"}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket_pair()
        try:
            for i in range(10):
                send_frame(a, i)
            assert [recv_frame(b) for _ in range(10)] == list(range(10))
        finally:
            a.close()
            b.close()

    def test_large_frame(self):
        a, b = socket_pair()
        payload = b"x" * (4 << 20)
        try:
            writer = threading.Thread(target=send_frame, args=(a, payload))
            writer.start()
            assert recv_frame(b) == payload
            writer.join()
        finally:
            a.close()
            b.close()

    def test_peer_close_raises(self):
        a, b = socket_pair()
        a.close()
        with pytest.raises((ConnectionError, OSError)):
            recv_frame(b)
        b.close()

    def test_message_dataclasses_roundtrip(self):
        a, b = socket_pair()
        message = InvokeMsg(7, 0, 0x1000, "add", (5,), {}, trace=(1, 2))
        try:
            send_frame(a, message)
            got = recv_frame(b)
            assert got == message
        finally:
            a.close()
            b.close()


class TestMesh:
    def test_two_meshes_exchange_messages(self):
        inbox_a, inbox_b = queue.SimpleQueue(), queue.SimpleQueue()
        mesh_a = Mesh(0, lambda peer, msg: inbox_a.put((peer, msg)))
        mesh_b = Mesh(1, lambda peer, msg: inbox_b.put((peer, msg)))
        try:
            directory = {0: mesh_a.address, 1: mesh_b.address}
            mesh_a.set_directory(directory)
            mesh_b.set_directory(directory)
            mesh_a.send(1, ResultMsg(1, True, "ping"))
            peer, message = inbox_b.get(timeout=5)
            assert peer == 0
            assert message.value == "ping"
            mesh_b.send(0, ResultMsg(2, True, "pong"))
            peer, message = inbox_a.get(timeout=5)
            assert peer == 1
            assert message.value == "pong"
        finally:
            mesh_a.close()
            mesh_b.close()

    def test_self_send_is_local(self):
        inbox = queue.SimpleQueue()
        mesh = Mesh(0, lambda peer, msg: inbox.put((peer, msg)))
        try:
            mesh.send(0, "loopback")
            peer, message = inbox.get(timeout=1)
            assert (peer, message) == (0, "loopback")
        finally:
            mesh.close()

    def test_unknown_peer_rejected(self):
        mesh = Mesh(0, lambda peer, msg: None)
        try:
            with pytest.raises(RuntimeTransportError):
                mesh.send(7, "nope")
        finally:
            mesh.close()

    def test_many_concurrent_sends(self):
        inbox = queue.SimpleQueue()
        mesh_a = Mesh(0, lambda peer, msg: None)
        mesh_b = Mesh(1, lambda peer, msg: inbox.put(msg))
        try:
            directory = {0: mesh_a.address, 1: mesh_b.address}
            mesh_a.set_directory(directory)
            mesh_b.set_directory(directory)
            threads = [threading.Thread(
                target=lambda base=i: [mesh_a.send(1, base * 100 + j)
                                       for j in range(20)])
                for i in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            got = {inbox.get(timeout=5) for _ in range(100)}
            assert len(got) == 100
        finally:
            mesh_a.close()
            mesh_b.close()
