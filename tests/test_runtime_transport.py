"""Unit tests for the live runtime's transport and message layer."""

import queue
import socket
import threading

import pytest

from repro.errors import RuntimeTransportError
from repro.runtime.messages import Hello, InvokeMsg, ResultMsg
from repro.runtime.transport import Mesh, recv_frame, send_frame


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    conn, _ = server.accept()
    server.close()
    return client, conn


class TestFraming:
    def test_roundtrip(self):
        a, b = socket_pair()
        try:
            send_frame(a, {"x": [1, 2, 3], "y": "hello"})
            assert recv_frame(b) == {"x": [1, 2, 3], "y": "hello"}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket_pair()
        try:
            for i in range(10):
                send_frame(a, i)
            assert [recv_frame(b) for _ in range(10)] == list(range(10))
        finally:
            a.close()
            b.close()

    def test_large_frame(self):
        a, b = socket_pair()
        payload = b"x" * (4 << 20)
        try:
            writer = threading.Thread(target=send_frame, args=(a, payload))
            writer.start()
            assert recv_frame(b) == payload
            writer.join()
        finally:
            a.close()
            b.close()

    def test_peer_close_raises(self):
        a, b = socket_pair()
        a.close()
        with pytest.raises((ConnectionError, OSError)):
            recv_frame(b)
        b.close()

    def test_message_dataclasses_roundtrip(self):
        a, b = socket_pair()
        message = InvokeMsg(7, 0, 0x1000, "add", (5,), {}, trace=(1, 2))
        try:
            send_frame(a, message)
            got = recv_frame(b)
            assert got == message
        finally:
            a.close()
            b.close()


class TestMesh:
    def test_two_meshes_exchange_messages(self):
        inbox_a, inbox_b = queue.SimpleQueue(), queue.SimpleQueue()
        mesh_a = Mesh(0, lambda peer, msg: inbox_a.put((peer, msg)))
        mesh_b = Mesh(1, lambda peer, msg: inbox_b.put((peer, msg)))
        try:
            directory = {0: mesh_a.address, 1: mesh_b.address}
            mesh_a.set_directory(directory)
            mesh_b.set_directory(directory)
            mesh_a.send(1, ResultMsg(1, True, "ping"))
            peer, message = inbox_b.get(timeout=5)
            assert peer == 0
            assert message.value == "ping"
            mesh_b.send(0, ResultMsg(2, True, "pong"))
            peer, message = inbox_a.get(timeout=5)
            assert peer == 1
            assert message.value == "pong"
        finally:
            mesh_a.close()
            mesh_b.close()

    def test_self_send_is_local(self):
        inbox = queue.SimpleQueue()
        mesh = Mesh(0, lambda peer, msg: inbox.put((peer, msg)))
        try:
            mesh.send(0, "loopback")
            peer, message = inbox.get(timeout=1)
            assert (peer, message) == (0, "loopback")
        finally:
            mesh.close()

    def test_unknown_peer_rejected(self):
        mesh = Mesh(0, lambda peer, msg: None)
        try:
            with pytest.raises(RuntimeTransportError):
                mesh.send(7, "nope")
        finally:
            mesh.close()

    def test_many_concurrent_sends(self):
        inbox = queue.SimpleQueue()
        mesh_a = Mesh(0, lambda peer, msg: None)
        mesh_b = Mesh(1, lambda peer, msg: inbox.put(msg))
        try:
            directory = {0: mesh_a.address, 1: mesh_b.address}
            mesh_a.set_directory(directory)
            mesh_b.set_directory(directory)
            threads = [threading.Thread(
                target=lambda base=i: [mesh_a.send(1, base * 100 + j)
                                       for j in range(20)])
                for i in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            got = {inbox.get(timeout=5) for _ in range(100)}
            assert len(got) == 100
        finally:
            mesh_a.close()
            mesh_b.close()


class TestMeshHandshake:
    def test_hello_precedes_data_under_concurrent_sends(self):
        """Regression: the dialer used to publish the socket before
        sending Hello, so a concurrent send() could put a data frame on
        the wire first and the receiver would misattribute the whole
        connection.  Hammer a fresh dial from many threads: every
        message must arrive attributed to the true peer."""
        for _ in range(5):
            inbox = queue.SimpleQueue()
            mesh_a = Mesh(3, lambda peer, msg: None)
            mesh_b = Mesh(1, lambda peer, msg: inbox.put((peer, msg)))
            try:
                directory = {3: mesh_a.address, 1: mesh_b.address}
                mesh_a.set_directory(directory)
                mesh_b.set_directory(directory)
                barrier = threading.Barrier(8)

                def blast(tag):
                    barrier.wait()
                    for j in range(10):
                        mesh_a.send(1, (tag, j))

                threads = [threading.Thread(target=blast, args=(i,))
                           for i in range(8)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                for _ in range(80):
                    peer, _ = inbox.get(timeout=5)
                    assert peer == 3
            finally:
                mesh_a.close()
                mesh_b.close()

    def test_non_hello_first_frame_rejected(self):
        """Regression: a connection whose first frame is not a Hello
        used to be kept open with its messages attributed to peer -1;
        now it is rejected and closed."""
        inbox = queue.SimpleQueue()
        mesh = Mesh(0, lambda peer, msg: inbox.put((peer, msg)))
        try:
            raw = socket.create_connection(mesh.address, timeout=5)
            send_frame(raw, ResultMsg(1, True, "sneaky"))
            send_frame(raw, ResultMsg(2, True, "more"))
            # The mesh must close the connection (EOF, or RST if our
            # second frame was still unread)...
            raw.settimeout(5)
            try:
                assert raw.recv(1) == b""
            except ConnectionError:
                pass
            raw.close()
            # ...deliver nothing from it, and count the reject.
            with pytest.raises(queue.Empty):
                inbox.get(timeout=0.2)
            assert mesh.stats["handshake_rejects"] == 1
        finally:
            mesh.close()

    def test_version_mismatch_rejected(self):
        inbox = queue.SimpleQueue()
        mesh = Mesh(0, lambda peer, msg: inbox.put((peer, msg)))
        try:
            raw = socket.create_connection(mesh.address, timeout=5)
            send_frame(raw, Hello(9, version=999))
            raw.settimeout(5)
            try:
                assert raw.recv(1) == b""
            except ConnectionError:
                pass
            raw.close()
            assert mesh.stats["handshake_rejects"] == 1
        finally:
            mesh.close()


class TestMeshReconnect:
    def test_send_redials_after_peer_restart(self):
        """A peer that dies and comes back on the same address is
        transparently redialed by the retry loop."""
        inbox = queue.SimpleQueue()
        mesh_a = Mesh(0, lambda peer, msg: None)
        mesh_b = Mesh(1, lambda peer, msg: inbox.put((peer, msg)))
        port = mesh_b.address[1]
        directory = {0: mesh_a.address, 1: mesh_b.address}
        mesh_a.set_directory(directory)
        try:
            mesh_a.send(1, "before")
            assert inbox.get(timeout=5) == (0, "before")
            mesh_b.close()
            mesh_b = Mesh(1, lambda peer, msg: inbox.put((peer, msg)),
                          port=port)
            # Early sends may vanish into the dead socket's buffer (TCP
            # cannot flag that); keep sending — the retry loop must
            # invalidate, redial, and start delivering.
            delivered = None
            for i in range(40):
                mesh_a.send(1, f"after-{i}")
                try:
                    delivered = inbox.get(timeout=0.25)
                    break
                except queue.Empty:
                    continue
            assert delivered is not None
            assert delivered[0] == 0
            assert mesh_a.stats["reconnects"] >= 1
        finally:
            mesh_a.close()
            mesh_b.close()

    def test_send_fails_cleanly_when_peer_stays_dead(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.transport.SEND_RETRIES", 2)
        monkeypatch.setattr("repro.runtime.transport.BACKOFF_BASE_S", 0.01)
        mesh_b = Mesh(1, lambda peer, msg: None)
        dead_address = mesh_b.address
        mesh_b.close()
        mesh_a = Mesh(0, lambda peer, msg: None)
        mesh_a.set_directory({1: dead_address})
        try:
            with pytest.raises(RuntimeTransportError):
                mesh_a.send(1, "into the void")
            assert mesh_a.stats["retries"] == 2
        finally:
            mesh_a.close()
