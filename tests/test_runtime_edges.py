"""Edge cases and failure injection for the live runtime."""

import threading
import time

import pytest

from repro.errors import AmberError, RemoteInvocationError
from repro.runtime import AmberObject, Cluster, current_node


class Unpicklable:
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


class CustomError(Exception):
    def __init__(self, payload):
        super().__init__("custom")
        self.payload = payload


class Edgy(AmberObject):
    def raise_unpicklable(self):
        raise CustomError(Unpicklable())

    def return_unpicklable(self):
        return Unpicklable()

    def large_payload(self, data):
        return len(data)

    def recurse_via(self, other, depth):
        if depth == 0:
            return current_node()
        return other.recurse_via(self, depth - 1)

    def whoami(self):
        return current_node()


class Spawner(AmberObject):
    """Forks threads from *inside* an operation on a remote node."""

    def __init__(self, target):
        self.target = target

    def fan_out(self, n):
        from repro.runtime.objects import current_kernel
        kernel = current_kernel()
        handles = [kernel.fork(self.target.vaddr, "whoami", (), {})
                   for _ in range(n)]
        return [handle.join(timeout=15) for handle in handles]


@pytest.fixture(scope="module")
def cluster():
    with Cluster(nodes=3) as c:
        yield c


class TestErrorTransport:
    def test_unpicklable_exception_degrades_gracefully(self, cluster):
        edgy = cluster.create(Edgy, node=1)
        with pytest.raises(RemoteInvocationError) as excinfo:
            edgy.raise_unpicklable()
        assert "CustomError" in str(excinfo.value)

    def test_unpicklable_result_reported(self, cluster):
        edgy = cluster.create(Edgy, node=1)
        with pytest.raises(Exception):
            edgy.return_unpicklable()

    def test_local_unpicklable_result_is_fine(self, cluster):
        # Local invocation: nothing crosses the wire.
        edgy = cluster.create(Edgy, node=0)
        assert isinstance(edgy.return_unpicklable(), Unpicklable)


class TestScale:
    def test_large_argument_payload(self, cluster):
        edgy = cluster.create(Edgy, node=2)
        data = b"x" * (2 << 20)
        assert edgy.large_payload(data) == len(data)

    def test_many_objects_across_nodes(self, cluster):
        handles = [cluster.create(Edgy, node=i % 3) for i in range(60)]
        nodes = [handle.whoami() for handle in handles]
        assert nodes == [i % 3 for i in range(60)]

    def test_ping_pong_recursion_between_nodes(self, cluster):
        a = cluster.create(Edgy, node=1)
        b = cluster.create(Edgy, node=2)
        # a and b invoke each other alternately: 8 nested cross-node
        # activations on the same logical thread.
        assert a.recurse_via(b, 8) in (1, 2)

    def test_nested_fork_from_remote_operation(self, cluster):
        target = cluster.create(Edgy, node=2)
        spawner = cluster.create(Spawner, target, node=1)
        assert spawner.fan_out(4) == [2, 2, 2, 2]


class TestConcurrency:
    def test_concurrent_invocations_from_driver_threads(self, cluster):
        counter_cls = _Count
        counter = cluster.create(counter_cls, node=1)
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    counter.bump()
            except Exception as error:   # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert counter.value() == 40

    def test_move_during_invocation_storm(self, cluster):
        counter = cluster.create(_Count, node=0)
        stop = threading.Event()
        errors = []

        def storm():
            while not stop.is_set():
                try:
                    counter.bump()
                except Exception as error:   # pragma: no cover
                    errors.append(error)

        thread = threading.Thread(target=storm)
        thread.start()
        try:
            for dest in (1, 2, 0, 1):
                cluster.move(counter, dest)
                time.sleep(0.05)
        finally:
            stop.set()
            thread.join()
        assert not errors
        assert cluster.locate(counter) == 1
        assert counter.value() > 0


class _Count(AmberObject):
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            self._value += 1
            return self._value

    def value(self):
        with self._lock:
            return self._value
