"""Additional live-runtime synchronization coverage: CondVar broadcast,
bounded RendezvousQueue back-pressure, barrier timeout diagnostics."""

import time

import pytest

from repro.errors import SynchronizationError
from repro.runtime import (
    AmberObject,
    Barrier,
    Cluster,
    CondVar,
    RendezvousQueue,
    current_node,
)


class GateWaiter(AmberObject):
    def __init__(self, cond):
        self.cond = cond

    def wait_through(self):
        self.cond.wait(timeout=20)
        return current_node()


class SlowConsumer(AmberObject):
    def __init__(self, channel):
        self.channel = channel

    def consume_slowly(self, n, delay):
        got = []
        for _ in range(n):
            time.sleep(delay)
            got.append(self.channel.get(timeout=20))
        return got


class FastProducer(AmberObject):
    def __init__(self, channel):
        self.channel = channel

    def produce(self, n):
        t0 = time.monotonic()
        for i in range(n):
            self.channel.put(i, timeout=20)
        return time.monotonic() - t0


@pytest.fixture(scope="module")
def cluster():
    with Cluster(nodes=3) as c:
        yield c


class TestCondVarBroadcast:
    def test_broadcast_releases_all_waiters(self, cluster):
        cond = cluster.create(CondVar, node=1)
        waiters = [cluster.create(GateWaiter, cond, node=n)
                   for n in range(3)]
        threads = [cluster.fork(waiter, "wait_through")
                   for waiter in waiters]
        time.sleep(0.3)          # let them all park at the condvar
        cond.broadcast()
        nodes = sorted(thread.join(timeout=20) for thread in threads)
        assert nodes == [0, 1, 2]

    def test_signal_releases_exactly_one(self, cluster):
        cond = cluster.create(CondVar, node=2)
        waiters = [cluster.create(GateWaiter, cond, node=n)
                   for n in range(2)]
        threads = [cluster.fork(waiter, "wait_through")
                   for waiter in waiters]
        time.sleep(0.3)
        cond.signal()
        time.sleep(0.3)
        cond.signal()            # release the second
        for thread in threads:
            thread.join(timeout=20)

    def test_wait_timeout_raises(self, cluster):
        cond = cluster.create(CondVar, node=1)
        with pytest.raises(SynchronizationError):
            cond.wait(timeout=0.2)


class TestBoundedQueue:
    def test_capacity_back_pressure(self, cluster):
        """A capacity-2 queue makes a fast producer wait for the slow
        consumer: production takes at least the consumption time."""
        channel = cluster.create(RendezvousQueue, 2, node=0)
        consumer = cluster.create(SlowConsumer, channel, node=1)
        producer = cluster.create(FastProducer, channel, node=2)
        consumer_thread = cluster.fork(consumer, "consume_slowly", 6, 0.1)
        producer_elapsed_thread = cluster.fork(producer, "produce", 6)
        got = consumer_thread.join(timeout=30)
        produce_elapsed = producer_elapsed_thread.join(timeout=30)
        assert got == list(range(6))
        # 6 items, consumer takes 0.1 s each, queue holds 2: the producer
        # must have been throttled for a meaningful fraction of that.
        assert produce_elapsed > 0.2

    def test_put_timeout_on_full_queue(self, cluster):
        channel = cluster.create(RendezvousQueue, 1, node=1)
        channel.put("x", timeout=5)
        with pytest.raises(SynchronizationError):
            channel.put("y", timeout=0.2)
        assert channel.get(timeout=5) == "x"


class TestBarrierDiagnostics:
    def test_timeout_reports_arrival_count(self, cluster):
        barrier = cluster.create(Barrier, 3, node=0)
        with pytest.raises(SynchronizationError, match="1/3"):
            barrier.wait(timeout=0.3)
