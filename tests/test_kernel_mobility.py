"""Kernel tests: object mobility (paper sections 2.3, 3.3, 3.5).

Moves leave forwarding addresses; attachment groups move together; bound
threads follow moved objects when next scheduled; immutable objects are
copied, not moved.
"""

import pytest

from repro.errors import AttachmentError, MobilityError
from repro.sim.objects import SimObject
from repro.sim.syscalls import (
    Attach,
    Charge,
    Compute,
    Fork,
    GetStats,
    Invoke,
    Join,
    Locate,
    MoveTo,
    New,
    Refresh,
    SetImmutable,
    Unattach,
)
from tests.helpers import Cell, run, run_free


class TestMoveTo:
    def test_descriptors_after_move(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            tables = ctx.cluster.descriptor_tables()
            return (tables[0].is_resident(cell.vaddr),
                    tables[0].lookup(cell.vaddr).forward_to,
                    tables[1].is_resident(cell.vaddr))

        assert run_free(main).value == (False, 1, True)

    def test_move_to_same_node_is_noop(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 0)
            return (yield Locate(cell))

        assert run_free(main).value == 0

    def test_move_to_bad_node_is_catchable(self):
        from repro.errors import SimulationError

        def main(ctx):
            cell = yield New(Cell)
            try:
                yield MoveTo(cell, 99)
            except SimulationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_move_latency_matches_table1(self):
        def main(ctx):
            cell = yield New(Cell, size_bytes=1000)
            t0 = ctx.now_us
            yield MoveTo(cell, 1)
            return ctx.now_us - t0

        assert run(main, cpus=4).value == pytest.approx(12430.0)

    def test_move_requested_from_third_node(self):
        """MoveTo on a non-resident object routes the request to wherever
        the object lives and runs the protocol there."""
        def main(ctx):
            cell = yield New(Cell, 5)   # created on node 0 (main's node)
            yield MoveTo(cell, 1)
            # Main is on node 0; the object is on 1; move it to 2.
            yield MoveTo(cell, 2)
            where = yield Locate(cell)
            value = yield Invoke(cell, "get")
            return (where, value)

        assert run_free(main, nodes=3).value == (2, 5)

    def test_objects_move_counted(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            yield MoveTo(cell, 0)
            stats = yield GetStats()
            return stats.object_moves

        assert run_free(main).value == 2


class TestForwardingChains:
    def test_chain_followed_and_compressed(self):
        """Move an object 0->1->2->3 with descriptors updated only at the
        nodes it visits; an invoke from node 0 chases the chain once, and
        path compression makes the second invoke direct."""
        def main(ctx):
            cell = yield New(Cell, 9)
            yield MoveTo(cell, 1)
            yield MoveTo(cell, 2)
            yield MoveTo(cell, 3)
            stats = yield GetStats()
            hops_before = stats.forwarding_hops_followed
            value = yield Invoke(cell, "get")
            hops_first = stats.forwarding_hops_followed - hops_before
            value2 = yield Invoke(cell, "get")
            hops_second = (stats.forwarding_hops_followed
                           - hops_before - hops_first)
            return (value, value2, hops_first, hops_second)

        value, value2, first, second = run_free(main, nodes=4).value
        assert value == value2 == 9
        assert first >= 1          # chased at least one stale hop
        assert second == 0         # cached location: direct

    def test_home_node_fallback(self):
        """A node with an uninitialized descriptor routes via the home
        node (section 3.3): create on node 1, move away, then have a
        thread on node 2 (which has never seen the object) invoke it."""
        class Prober(SimObject):
            def probe(self, ctx, cell):
                value = yield Invoke(cell, "get")
                return value

        def main(ctx):
            cell = yield New(Cell, 31, on_node=1)
            yield MoveTo(cell, 0)
            prober = yield New(Prober, on_node=2)
            return (yield Invoke(prober, "probe", cell))

        assert run_free(main, nodes=3).value == 31


class TestAttachment:
    def test_group_moves_together(self):
        def main(ctx):
            a = yield New(Cell, 1)
            b = yield New(Cell, 2)
            c = yield New(Cell, 3)
            yield Attach(a, b)
            yield Attach(c, b)
            yield MoveTo(b, 1)
            locations = []
            for obj in (a, b, c):
                locations.append((yield Locate(obj)))
            return locations

        assert run_free(main).value == [1, 1, 1]

    def test_moving_any_member_moves_all(self):
        def main(ctx):
            a = yield New(Cell)
            b = yield New(Cell)
            yield Attach(a, b)
            yield MoveTo(a, 1)   # a is the attacher; b must follow
            locations = []
            for obj in (a, b):
                locations.append((yield Locate(obj)))
            return locations

        assert run_free(main).value == [1, 1]

    def test_unattach_allows_separation(self):
        def main(ctx):
            a = yield New(Cell)
            b = yield New(Cell)
            yield Attach(a, b)
            yield Unattach(a)
            yield MoveTo(a, 1)
            locations = []
            for obj in (a, b):
                locations.append((yield Locate(obj)))
            return locations

        assert run_free(main).value == [1, 0]

    def test_attach_requires_colocation(self):
        def main(ctx):
            a = yield New(Cell)
            b = yield New(Cell)
            yield MoveTo(b, 1)
            try:
                yield Attach(a, b)
            except AttachmentError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_attach_self_rejected(self):
        def main(ctx):
            a = yield New(Cell)
            try:
                yield Attach(a, a)
            except AttachmentError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_group_move_is_one_network_transfer(self):
        """An attachment group moves in one bulk transfer, not one
        message per member."""
        def main(ctx):
            a = yield New(Cell)
            b = yield New(Cell)
            yield Attach(a, b)
            before = ctx.cluster.network.stats.messages
            yield MoveTo(b, 1)
            after = ctx.cluster.network.stats.messages
            return after - before

        # One data transfer plus one ack.
        assert run_free(main).value == 2


class TestImmutables:
    def test_moveto_copies_instead_of_moving(self):
        def main(ctx):
            cell = yield New(Cell, 11)
            yield SetImmutable(cell)
            yield MoveTo(cell, 1)
            tables = ctx.cluster.descriptor_tables()
            return (tables[0].is_resident(cell.vaddr),
                    tables[1].is_resident(cell.vaddr))

        assert run_free(main).value == (True, True)

    def test_remote_invoke_fetches_replica(self):
        """Invoking a non-resident immutable installs a local replica
        rather than migrating the thread."""
        class Reader(SimObject):
            def read(self, ctx, cell):
                value = yield Invoke(cell, "get")
                return (value, ctx.node)

        def main(ctx):
            cell = yield New(Cell, 13)
            yield SetImmutable(cell)
            reader = yield New(Reader, on_node=1)
            value, where = yield Invoke(reader, "read", cell)
            stats = yield GetStats()
            return value, where, stats.replications

        value, where, replications = run_free(main).value
        assert value == 13
        assert where == 1           # the reader never left node 1
        assert replications == 1

    def test_replica_reused_no_more_fetches(self):
        class Reader(SimObject):
            def read_twice(self, ctx, cell):
                yield Invoke(cell, "get")
                yield Invoke(cell, "get")

        def main(ctx):
            cell = yield New(Cell, 13)
            yield SetImmutable(cell)
            reader = yield New(Reader, on_node=1)
            yield Invoke(reader, "read_twice", cell)
            stats = yield GetStats()
            return stats.replications

        assert run_free(main).value == 1

    def test_refresh_prefetches(self):
        def main(ctx):
            cell = yield New(Cell, 17)
            yield SetImmutable(cell)
            yield MoveTo(cell, 1)       # replica on 1
            stats = yield GetStats()
            before = stats.replications
            yield Refresh(cell)         # already resident on 0: no-op
            return stats.replications - before

        assert run_free(main).value == 0

    def test_refresh_requires_immutable(self):
        def main(ctx):
            cell = yield New(Cell)
            try:
                yield Refresh(cell)
            except MobilityError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_attach_of_immutable_rejected(self):
        def main(ctx):
            a = yield New(Cell)
            b = yield New(Cell)
            yield SetImmutable(a)
            try:
                yield Attach(a, b)
            except AttachmentError:
                return "rejected"

        assert run_free(main).value == "rejected"


class TestBoundThreads:
    def test_running_bound_thread_follows_object(self):
        """Section 3.5: a thread computing inside a moving object is
        preempted, makes a residency check when rescheduled, and migrates
        to the object's new node before continuing."""
        class Workplace(SimObject):
            def __init__(self):
                self.trace = []

            def work(self, ctx):
                self.trace.append(ctx.node)
                yield Compute(50_000)      # long: the move happens inside
                self.trace.append(ctx.node)
                yield Charge(1.0)
                return tuple(self.trace)

        def main(ctx):
            place = yield New(Workplace)
            worker = yield Fork(place, "work")
            yield Compute(1_000)           # let the worker get going
            yield MoveTo(place, 1)
            trace = yield Join(worker)
            return trace

        trace = run(main, cpus=2).value
        assert trace[0] == 0        # started on node 0
        assert trace[-1] == 1       # finished on node 1, after the move

    def test_blocked_bound_thread_migrates_on_wakeup(self):
        """A thread suspended inside a moved object stays put until it is
        rescheduled, then migrates (the paper's stated policy)."""
        from repro.sim.sync import Lock

        class Room(SimObject):
            def __init__(self, lock):
                self.lock = lock

            def enter(self, ctx):
                yield Invoke(self.lock, "acquire")
                yield Invoke(self.lock, "release")
                return ctx.node

        def main(ctx):
            lock = yield New(Lock)
            room = yield New(Room, lock)
            yield Invoke(lock, "acquire")      # main holds the lock
            sleeper = yield Fork(room, "enter")  # blocks inside acquire
            yield Compute(20_000)
            yield MoveTo(lock, 1)              # move the lock under it
            yield Invoke(lock, "release")      # wakes the sleeper (remote)
            where = yield Join(sleeper)
            return where

        # The sleeper reacquired the lock on node 1 and returned to the
        # Room on node 0 before reporting its node.
        assert run(main, cpus=2).value == 0

    def test_mover_inside_moved_object_follows_it(self):
        class Mover(SimObject):
            def hop(self, ctx, dest):
                yield MoveTo(self, dest)
                return ctx.node

        def main(ctx):
            mover = yield New(Mover)
            return (yield Invoke(mover, "hop", 1))

        assert run_free(main).value == 1

    def test_moving_running_thread_object_rejected(self):
        def main(ctx):
            cell = yield New(Cell)
            worker = yield Fork(cell, "add", 1)
            try:
                yield MoveTo(worker, 1)
            except MobilityError:
                yield Join(worker)
                return "rejected"
            yield Join(worker)
            return "allowed"

        # The worker may already be done by the time MoveTo runs under the
        # free cost model; use real costs so it is still running.
        class Slow(SimObject):
            def spin(self, ctx):
                yield Compute(1_000_000)

        def main2(ctx):
            slow = yield New(Slow)
            worker = yield Fork(slow, "spin")
            yield Compute(1_000)
            try:
                yield MoveTo(worker, 1)
            except MobilityError:
                yield Join(worker)
                return "rejected"

        assert run(main2, cpus=2).value == "rejected"
