"""Integration test: the paper's application on the live runtime.

Red/Black SOR across real OS processes, with edge columns shipped as
invocations and a distributed barrier per iteration — bitwise identical
to the sequential solver.
"""

import numpy as np
import pytest

from repro.apps.sor import SorProblem, run_sequential_sor
from repro.apps.sor.live_sor import run_live_sor
from repro.runtime import Cluster

PROBLEM = SorProblem(rows=10, cols=24, iterations=6)


@pytest.fixture(scope="module")
def cluster():
    with Cluster(nodes=3) as c:
        yield c


class TestLiveSor:
    def test_bitwise_identical_to_sequential(self, cluster):
        sequential = run_sequential_sor(PROBLEM)
        grid = run_live_sor(PROBLEM, sections=3, cluster=cluster)
        assert np.array_equal(sequential.grid, grid)

    def test_more_sections_than_nodes(self, cluster):
        sequential = run_sequential_sor(PROBLEM)
        grid = run_live_sor(PROBLEM, sections=5, cluster=cluster)
        assert np.array_equal(sequential.grid, grid)

    def test_single_section_degenerate(self, cluster):
        sequential = run_sequential_sor(PROBLEM)
        grid = run_live_sor(PROBLEM, sections=1, cluster=cluster)
        assert np.array_equal(sequential.grid, grid)

    def test_uneven_columns(self, cluster):
        problem = SorProblem(rows=8, cols=23, iterations=4)
        sequential = run_sequential_sor(problem)
        grid = run_live_sor(problem, sections=3, cluster=cluster)
        assert np.array_equal(sequential.grid, grid)
