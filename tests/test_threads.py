"""Kernel tests: threads (paper section 2.1) and timeslicing."""

import pytest

from repro.errors import InvocationError
from repro.sim.objects import SimObject
from repro.sim.syscalls import (
    Charge,
    Compute,
    Fork,
    GetStats,
    Invoke,
    Join,
    MoveTo,
    New,
    NewThread,
    Start,
    Suspend,
    Wakeup,
    Yield,
)
from tests.helpers import Cell, run, run_free


class TestStartJoin:
    def test_fork_join_returns_result(self):
        def main(ctx):
            cell = yield New(Cell, 10)
            worker = yield Fork(cell, "add", 5)
            return (yield Join(worker))

        assert run_free(main).value == 15

    def test_newthread_then_start(self):
        def main(ctx):
            cell = yield New(Cell)
            thread = yield NewThread(cell, "set", 3)
            yield Start(thread)
            return (yield Join(thread))

        assert run_free(main).value == 3

    def test_start_twice_rejected(self):
        def main(ctx):
            cell = yield New(Cell)
            thread = yield NewThread(cell, "get")
            yield Start(thread)
            try:
                yield Start(thread)
            except InvocationError:
                yield Join(thread)
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_join_already_finished_thread(self):
        def main(ctx):
            cell = yield New(Cell, 1)
            worker = yield Fork(cell, "get")
            yield Compute(100_000)   # let it finish long before the join
            return (yield Join(worker))

        assert run(main).value == 1

    def test_join_self_rejected(self):
        class Selfish(SimObject):
            def act(self, ctx):
                try:
                    yield Join(ctx.thread)
                except InvocationError:
                    return "rejected"

        def main(ctx):
            selfish = yield New(Selfish)
            worker = yield Fork(selfish, "act")
            return (yield Join(worker))

        assert run_free(main).value == "rejected"

    def test_multiple_joiners_all_released(self):
        class Waiter(SimObject):
            def wait_on(self, ctx, target):
                return (yield Join(target))

        def main(ctx):
            cell = yield New(Cell, 4)
            slow = yield Fork(cell, "add", 1)
            waiter_obj = yield New(Waiter)
            joiners = []
            for _ in range(3):
                joiners.append((yield Fork(waiter_obj, "wait_on", slow)))
            results = []
            for joiner in joiners:
                results.append((yield Join(joiner)))
            return results

        assert run_free(main).value == [5, 5, 5]

    def test_join_reraises_child_exception(self):
        def main(ctx):
            cell = yield New(Cell)
            worker = yield Fork(cell, "boom")
            try:
                yield Join(worker)
            except ValueError as error:
                return f"caught {error}"

        assert run_free(main).value == "caught boom"

    def test_start_join_latency_matches_table1(self):
        def main(ctx):
            cell = yield New(Cell)
            thread = yield NewThread(cell, "get")
            t0 = ctx.now_us
            yield Start(thread)
            yield Join(thread)
            return ctx.now_us - t0

        assert run(main, cpus=4).value == pytest.approx(1330.0)

    def test_thread_starts_on_targets_node(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            worker = yield Fork(cell, "where")
            return (yield Join(worker))

        assert run_free(main).value == 1

    def test_parallel_forks_use_multiple_cpus(self):
        """Two compute-bound threads on a 2-CPU node take barely longer
        than one."""
        class Burn(SimObject):
            def burn(self, ctx):
                yield Compute(100_000)

        def main(ctx):
            burn = yield New(Burn)
            t0 = ctx.now_us
            a = yield Fork(burn, "burn")
            b = yield Fork(burn, "burn")
            yield Join(a)
            yield Join(b)
            return ctx.now_us - t0

        elapsed = run(main, nodes=1, cpus=2).value
        assert elapsed < 150_000   # serial would be >200ms

    def test_single_cpu_serializes(self):
        class Burn(SimObject):
            def burn(self, ctx):
                yield Compute(100_000)

        def main(ctx):
            burn = yield New(Burn)
            a = yield Fork(burn, "burn")
            b = yield Fork(burn, "burn")
            t0 = ctx.now_us
            yield Join(a)
            yield Join(b)
            return ctx.now_us - t0

        # Main blocks in Join, freeing the single CPU; the two burns
        # serialize on it.
        elapsed = run(main, nodes=1, cpus=1).value
        assert elapsed > 195_000


class TestSuspendWakeup:
    def test_wakeup_before_suspend_not_lost(self):
        """The classic race: Wakeup delivered while the target is still
        entering its Suspend must not be dropped."""
        class Pair(SimObject):
            def __init__(self):
                self.sleeper = None

            def sleep(self, ctx):
                self.sleeper = ctx.thread
                yield Suspend("test")
                return "woke"

            def poke(self, ctx):
                yield Wakeup(self.sleeper)

        def main(ctx):
            pair = yield New(Pair)
            sleeper = yield Fork(pair, "sleep")
            yield Compute(5_000)
            yield Invoke(pair, "poke")
            return (yield Join(sleeper))

        assert run(main, cpus=2).value == "woke"

    def test_yield_relinquishes(self):
        def main(ctx):
            yield Yield()
            return "ok"

        assert run_free(main).value == "ok"


class TestTimeslicing:
    def test_quantum_interleaves_threads(self):
        """On one CPU, two long computations context-switch on quantum
        expiry (Presto-style timeslicing) rather than running to
        completion back to back."""
        class Burn(SimObject):
            def __init__(self):
                self.finish_order = []

            def burn(self, ctx, tag, us):
                yield Compute(us)
                self.finish_order.append(tag)

        def main(ctx):
            burn = yield New(Burn)
            # Long thread first: without slicing, "long" would finish
            # first; with 100 ms slices, "short" (150 ms) finishes before
            # "long" (400 ms).
            long_thread = yield Fork(burn, "burn", "long", 400_000)
            short_thread = yield Fork(burn, "burn", "short", 150_000)
            yield Join(long_thread)
            yield Join(short_thread)
            return burn.finish_order

        assert run(main, nodes=1, cpus=1).value == ["short", "long"]

    def test_context_switches_counted(self):
        class Burn(SimObject):
            def burn(self, ctx):
                yield Compute(300_000)

        def main(ctx):
            burn = yield New(Burn)
            a = yield Fork(burn, "burn")
            b = yield Fork(burn, "burn")
            yield Join(a)
            yield Join(b)
            stats = yield GetStats()
            return stats.node(0).context_switches

        assert run(main, nodes=1, cpus=1).value >= 4

    def test_solo_thread_never_preempted(self):
        class Burn(SimObject):
            def burn(self, ctx):
                yield Compute(500_000)

        def main(ctx):
            burn = yield New(Burn)
            worker = yield Fork(burn, "burn")
            yield Join(worker)
            stats = yield GetStats()
            return stats.node(0).context_switches

        # Main blocks in Join; the worker owns the CPU alone.
        assert run(main, nodes=1, cpus=2).value == 0
