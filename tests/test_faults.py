"""Fault injection & recovery: plan validation, deterministic injection,
reliable delivery, crash/restart semantics, and dead-node recovery."""

import pytest

from repro.errors import ObjectNotFoundError, SimulationError
from repro.faults import Decision, FaultInjector, FaultPlan, NodeCrash, Partition
from repro.obs.metrics import MetricsRegistry
from repro.sim import (
    AmberProgram,
    ClusterConfig,
    Fork,
    Invoke,
    Join,
    Locate,
    MoveTo,
    New,
    Sleep,
)
from tests.helpers import Cell


def run_faulted(main_fn, *args, nodes=2, cpus=2, faults=None):
    program = AmberProgram(
        ClusterConfig(nodes=nodes, cpus_per_node=cpus), faults=faults)
    return program.run(main_fn, *args)


class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(SimulationError):
            FaultPlan(dup_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop_rate=0.6, dup_rate=0.5)

    def test_delay_bounds(self):
        with pytest.raises(SimulationError):
            FaultPlan(delay_min_us=10.0, delay_max_us=5.0)

    def test_restart_must_follow_crash(self):
        with pytest.raises(SimulationError):
            NodeCrash(node=0, at_us=100.0, restart_us=50.0)

    def test_partition_window_must_be_nonempty(self):
        with pytest.raises(SimulationError):
            Partition(nodes=(1,), start_us=10.0, end_us=10.0)

    def test_rto_sanity(self):
        with pytest.raises(SimulationError):
            FaultPlan(rto_us=100.0, rto_cap_us=10.0)
        with pytest.raises(SimulationError):
            FaultPlan(max_attempts=0)

    def test_crash_schedule_queries(self):
        crash = NodeCrash(node=1, at_us=100.0, restart_us=200.0)
        plan = FaultPlan(crashes=(crash,))
        assert not plan.is_down(1, 50.0)
        assert plan.is_down(1, 150.0)
        assert not plan.is_down(1, 250.0)
        assert not plan.is_down(0, 150.0)
        forever = FaultPlan(crashes=(NodeCrash(node=0, at_us=10.0),))
        assert forever.is_down(0, 1e12)

    def test_partition_severs_only_across_the_cut(self):
        window = Partition(nodes=(0, 1), start_us=0.0, end_us=100.0)
        assert window.severs(0, 2, 50.0)
        assert window.severs(2, 1, 50.0)
        assert not window.severs(0, 1, 50.0)      # same side
        assert not window.severs(2, 3, 50.0)      # same side
        assert not window.severs(0, 2, 150.0)     # window over

    def test_give_up_budget(self):
        plan = FaultPlan(rto_us=1.0, rto_cap_us=4.0, max_attempts=4)
        assert plan.give_up_budget_us() == 1 + 2 + 4 + 4


class TestInjector:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=7, drop_rate=0.2, dup_rate=0.1,
                         delay_rate=0.1, delay_max_us=100.0)
        a = FaultInjector(plan, MetricsRegistry())
        b = FaultInjector(plan, MetricsRegistry())
        decisions_a = [a.decide(0, 1, float(t)) for t in range(200)]
        decisions_b = [b.decide(0, 1, float(t)) for t in range(200)]
        assert decisions_a == decisions_b
        assert any(d.drop for d in decisions_a)
        assert any(d.duplicate for d in decisions_a)
        assert any(d.extra_delay_us > 0 for d in decisions_a)

    def test_crash_drops_consume_no_randomness(self):
        """The PRNG stream must depend only on live-link transmissions,
        or crash timing would perturb every later random fault."""
        plan = FaultPlan(seed=7, drop_rate=0.2,
                         crashes=(NodeCrash(node=1, at_us=0.0),))
        with_crash = FaultInjector(plan, MetricsRegistry())
        without = FaultInjector(FaultPlan(seed=7, drop_rate=0.2),
                                MetricsRegistry())
        mixed = []
        for t in range(100):
            # Interleave dead-link traffic; it must not advance the PRNG.
            assert with_crash.decide(0, 1, float(t)) == Decision(drop=True)
            mixed.append(with_crash.decide(0, 2, float(t)))
        plain = [without.decide(0, 2, float(t)) for t in range(100)]
        assert mixed == plain

    def test_zero_rate_plan_is_clean(self):
        injector = FaultInjector(FaultPlan(seed=1), MetricsRegistry())
        assert injector.decide(0, 1, 0.0) == Decision()

    def test_backoff_doubles_and_caps(self):
        plan = FaultPlan(rto_us=100.0, rto_cap_us=400.0)
        injector = FaultInjector(plan, MetricsRegistry())
        assert [injector.rto_us(k) for k in (1, 2, 3, 4, 5)] == \
            [100.0, 200.0, 400.0, 400.0, 400.0]

    def test_live_is_down_overrides_schedule(self):
        down = {2}
        injector = FaultInjector(FaultPlan(), MetricsRegistry(),
                                 is_down=lambda node: node in down)
        assert injector.decide(0, 2, 0.0).drop
        down.clear()
        assert not injector.decide(0, 2, 0.0).drop


class TestReliableDelivery:
    def test_lossy_network_still_completes(self):
        plan = FaultPlan(seed=3, drop_rate=0.25, dup_rate=0.05,
                         delay_rate=0.1, delay_max_us=500.0,
                         rto_us=200.0, rto_cap_us=3_200.0)

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            total = 0
            for i in range(10):
                total = yield Invoke(cell, "add", i)
            return total

        result = run_faulted(main, faults=plan)
        assert result.value == sum(range(10))
        assert result.metrics.counter("faults_dropped").value > 0
        assert result.metrics.counter("retries").value > 0
        assert result.cluster.network.stats.retransmits > 0

    def test_faulted_run_is_bit_identical(self):
        plan = FaultPlan(seed=11, drop_rate=0.15, dup_rate=0.05,
                         delay_rate=0.1, delay_max_us=300.0,
                         crashes=(NodeCrash(node=1, at_us=5_000.0,
                                            restart_us=40_000.0),))

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            total = 0
            for i in range(8):
                total = yield Invoke(cell, "add", 1)
            return total

        first = run_faulted(main, faults=plan)
        second = run_faulted(main, faults=plan)
        assert first.value == second.value == 8
        assert first.elapsed_us == second.elapsed_us
        for name in ("faults_injected", "faults_dropped", "retries",
                     "crashes", "recoveries"):
            assert (first.metrics.counter(name).value
                    == second.metrics.counter(name).value)

    def test_unreachable_node_without_recovery_raises(self):
        """A reliable send with no give-up handler and no route to
        recovery is a scenario bug, not a hang."""
        plan = FaultPlan(seed=0, rto_us=100.0, rto_cap_us=400.0,
                         max_attempts=3,
                         crashes=(NodeCrash(node=1, at_us=0.0),))

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            return (yield Invoke(cell, "get"))

        with pytest.raises((SimulationError, ObjectNotFoundError)):
            run_faulted(main, faults=plan)


class TestCrashRecovery:
    def test_crash_freezes_dispatch_and_restart_resumes(self):
        plan = FaultPlan(seed=0,
                         crashes=(NodeCrash(node=1, at_us=1_000.0,
                                            restart_us=80_000.0),))

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            value = yield Invoke(cell, "add", 5)   # spans the outage
            return value

        result = run_faulted(main, faults=plan)
        assert result.value == 5
        assert result.metrics.counter("crashes").value == 1
        assert result.metrics.counter("recoveries").value == 1
        # The outage costs roughly its duration in elapsed time.
        assert result.elapsed_us >= 80_000.0

    def test_restart_sheds_stale_hints_but_keeps_home_entries(self):
        plan = FaultPlan(seed=0,
                         crashes=(NodeCrash(node=1, at_us=60_000.0,
                                            restart_us=70_000.0),))

        def main(ctx):
            # Home the object on node 1 by creating it there...
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            other = yield New(Cell)
            yield MoveTo(other, 1)     # node 1 learns where `other` went
            yield MoveTo(other, 2)     # ...then a hint 1 -> 2
            yield Sleep(100_000.0)     # crash + restart happen here
            return (yield Invoke(other, "add", 2))

        result = run_faulted(main, nodes=3, faults=plan)
        assert result.value == 2
        assert result.metrics.counter("recoveries").value == 1
        assert result.metrics.counter("hints_repaired").value >= 1

    def test_partition_heals_and_run_completes(self):
        plan = FaultPlan(seed=0,
                         partitions=(Partition(nodes=(1,),
                                               start_us=1_000.0,
                                               end_us=60_000.0),))

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            return (yield Invoke(cell, "add", 3))

        result = run_faulted(main, faults=plan)
        assert result.value == 3
        assert result.metrics.counter("faults_partition_drops").value > 0
        assert result.metrics.counter("retries").value > 0


class TestDeadNodeRecovery:
    def _fallback_plan(self, crash_at_us=150_000.0):
        return FaultPlan(seed=0, rto_us=1_000.0, rto_cap_us=16_000.0,
                         max_attempts=6,
                         crashes=(NodeCrash(node=2, at_us=crash_at_us),))

    def test_stale_hint_to_dead_node_falls_back_to_home(self):
        """A client whose cached hint points at a permanently dead node
        must give up on it and reroute via the object's home node."""
        class Prober(Cell):
            def probe(self, ctx, token, sleep_us):
                yield Locate(token)            # caches hint here
                yield Sleep(sleep_us)
                return (yield Invoke(token, "get"))

        def main(ctx):
            token = yield New(Cell, 42)        # home: node 0
            yield MoveTo(token, 2)
            prober = yield New(Prober)
            yield MoveTo(prober, 1)
            thread = yield Fork(prober, "probe", token, 300_000.0)
            yield Sleep(50_000.0)
            yield MoveTo(token, 0)             # home again; hint stale
            return (yield Join(thread))

        result = run_faulted(main, nodes=3, faults=self._fallback_plan())
        assert result.value == 42
        assert result.metrics.counter("send_give_ups").value >= 1
        assert result.metrics.counter("home_fallbacks").value >= 1

    def test_object_behind_permanent_crash_raises_not_found(self):
        """When the home itself says the object is on the dead node, the
        prober budget is the last line: the object is genuinely lost."""
        plan = self._fallback_plan(crash_at_us=50_000.0)

        def main(ctx):
            cell = yield New(Cell, 7)          # home: node 0
            yield MoveTo(cell, 2)              # home entry points at 2
            yield Sleep(100_000.0)             # node 2 dies for good
            return (yield Invoke(cell, "get"))

        with pytest.raises(ObjectNotFoundError):
            run_faulted(main, nodes=3, faults=plan)

    def test_object_behind_temporary_crash_survives_probing(self):
        """Same trap, but the node restarts within the probe budget: the
        probes land and the invocation completes."""
        plan = FaultPlan(seed=0, rto_us=1_000.0, rto_cap_us=16_000.0,
                        max_attempts=6,
                        crashes=(NodeCrash(node=2, at_us=50_000.0,
                                           restart_us=250_000.0),))

        def main(ctx):
            cell = yield New(Cell, 7)
            yield MoveTo(cell, 2)
            yield Sleep(100_000.0)
            return (yield Invoke(cell, "get"))

        result = run_faulted(main, nodes=3, faults=plan)
        assert result.value == 7
        assert result.metrics.counter("home_probes").value >= 1


class TestScenarios:
    def test_fast_scenarios_pass(self):
        from repro.faults.scenario import run_fault_scenarios

        report = run_fault_scenarios(seed=5, fast=True)
        assert report.ok
        names = [s.name for s in report.scenarios]
        assert names == ["sor", "queens", "mobility"]
        totals = report.counters
        assert totals["faults_injected"] > 0
        assert totals["retries"] > 0
        assert totals["crashes"] >= 3
        assert totals["home_fallbacks"] >= 1
        rendered = report.render()
        assert "overall: PASS" in rendered
        as_dict = report.as_dict()
        assert as_dict["ok"] and len(as_dict["scenarios"]) == 3
