"""Edge-case tests for the simulated kernel: Sleep, thread-object moves,
deletion of attached objects, stats plumbing, and network contention."""

import pytest

from repro.errors import AttachmentError, MobilityError
from repro.sim.objects import SimObject
from repro.sim.syscalls import (
    Attach,
    Charge,
    Compute,
    Delete,
    Fork,
    GetStats,
    Invoke,
    Join,
    Locate,
    MoveTo,
    New,
    NewThread,
    Sleep,
    Start,
)
from tests.helpers import Cell, run, run_free


class TestSleep:
    def test_sleep_advances_time_without_cpu(self):
        class Napper(SimObject):
            def nap(self, ctx, us):
                t0 = ctx.now_us
                yield Sleep(us)
                return ctx.now_us - t0

        def main(ctx):
            napper = yield New(Napper)
            elapsed = yield Invoke(napper, "nap", 10_000)
            stats = yield GetStats()
            return elapsed, stats.node(0).cpu_busy_us

        elapsed, busy = run(main, nodes=1, cpus=1).value
        assert elapsed >= 10_000
        # CPU charged far less than the sleep (just overheads).
        assert busy < 5_000

    def test_sleeping_frees_the_cpu_for_others(self):
        class Pair(SimObject):
            def __init__(self):
                self.trace = []

            def sleeper(self, ctx):
                self.trace.append("sleep-start")
                yield Sleep(50_000)
                self.trace.append("sleep-end")

            def worker(self, ctx):
                yield Compute(10_000)
                self.trace.append("work-done")

        def main(ctx):
            pair = yield New(Pair)
            a = yield Fork(pair, "sleeper")
            b = yield Fork(pair, "worker")
            yield Join(a)
            yield Join(b)
            return pair.trace

        # One CPU: the worker must complete during the sleep.
        trace = run(main, nodes=1, cpus=1).value
        assert trace == ["sleep-start", "work-done", "sleep-end"]

    def test_negative_sleep_rejected(self):
        from repro.errors import InvocationError

        def main(ctx):
            try:
                yield Sleep(-5)
            except InvocationError:
                return "rejected"

        assert run_free(main).value == "rejected"


class TestThreadObjectMoves:
    def test_move_unstarted_thread_starts_on_new_node(self):
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            # Thread created here (node 0) targeting the remote cell.
            thread = yield NewThread(cell, "where")
            yield MoveTo(thread, 1)      # pre-position the thread object
            yield Start(thread)
            return (yield Join(thread))

        assert run_free(main).value == 1

    def test_move_blocked_thread_object(self):
        from repro.sim.sync import Lock

        class Blocker(SimObject):
            def __init__(self, lock):
                self.lock = lock

            def go(self, ctx):
                yield Invoke(self.lock, "acquire")
                yield Invoke(self.lock, "release")
                return ctx.node

        def main(ctx):
            lock = yield New(Lock)
            blocker = yield New(Blocker, lock)
            yield Invoke(lock, "acquire")
            waiter = yield Fork(blocker, "go")
            yield Compute(20_000)        # the waiter is now blocked
            yield MoveTo(waiter, 1)      # move the *thread object*
            where = yield Locate(waiter)
            yield Invoke(lock, "release")
            yield Join(waiter)
            return where

        assert run(main, cpus=2).value == 1

    def test_move_finished_thread_rejected(self):
        def main(ctx):
            cell = yield New(Cell)
            worker = yield Fork(cell, "get")
            yield Join(worker)
            try:
                yield MoveTo(worker, 1)
            except MobilityError:
                return "rejected"

        assert run_free(main).value == "rejected"


class TestDeleteEdges:
    def test_delete_attached_object_drops_edges(self):
        def main(ctx):
            a = yield New(Cell)
            b = yield New(Cell)
            yield Attach(a, b)
            yield Delete(a)
            # b is now a singleton group and can move alone.
            yield MoveTo(b, 1)
            return (yield Locate(b))

        assert run_free(main).value == 1

    def test_deleted_vaddr_not_locatable(self):
        from repro.errors import AmberError

        def main(ctx):
            cell = yield New(Cell)
            yield Delete(cell)
            try:
                yield Locate(cell)
            except AmberError:
                return "gone"

        assert run_free(main).value == "gone"


class TestStatsPlumbing:
    def test_getstats_returns_live_view(self):
        def main(ctx):
            stats = yield GetStats()
            cell = yield New(Cell)
            yield Invoke(cell, "get")
            return stats.total_local_invocations

        assert run_free(main).value == 1

    def test_access_log_populates(self):
        def main(ctx):
            cell = yield New(Cell)
            yield Invoke(cell, "get")
            yield Invoke(cell, "get")
            return dict(ctx.cluster.access_log[cell.vaddr])

        assert run_free(main).value == {0: 2}

    def test_node_stats_utilization_bounds(self):
        def main(ctx):
            yield Compute(100_000)

        result = run(main, nodes=2, cpus=2)
        for node_stats in result.stats.nodes:
            utilization = node_stats.utilization(result.elapsed_us)
            assert 0.0 <= utilization <= 1.0


class TestNetworkContention:
    def test_contended_network_slows_bursts(self):
        """Eight simultaneous remote invocations on a shared wire take
        longer than on independent links."""
        class Target(SimObject):
            def op(self, ctx):
                if False:
                    yield None

        def main(ctx):
            targets = []
            for node in range(1, 5):
                targets.append((yield New(Target, on_node=node,
                                          size_bytes=1000)))
            callers = []
            for target in targets:
                for _ in range(2):
                    callers.append((yield Fork(target, "op")))
            t0 = ctx.now_us
            for caller in callers:
                yield Join(caller)
            return ctx.now_us - t0

        shared = run(main, nodes=5, cpus=4, contended=True).value
        independent = run(main, nodes=5, cpus=4, contended=False).value
        assert shared > independent
