"""Tests for the Ivy-style DSM baseline (paper section 4 comparator).

Protocol invariants under test: single-writer/multi-reader page states,
write faults invalidate every other copy, managers serialize transactions
per page, and reads/writes always see coherent Python-level values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.dsm.machine import IvyCluster, run_ivy
from repro.dsm.ops import (
    Compute,
    Load,
    Read,
    RpcBarrier,
    RpcLockAcquire,
    RpcLockRelease,
    Store,
    TestAndSet,
    Write,
)
from repro.dsm.pages import (
    ManagerTable,
    PageAccess,
    PageTable,
    pages_of_range,
)
from repro.errors import DeadlockError, InvocationError


class TestPageMath:
    def test_pages_of_range_single(self):
        assert list(pages_of_range(0, 1, 1024)) == [0]
        assert list(pages_of_range(1023, 1, 1024)) == [0]
        assert list(pages_of_range(1024, 1, 1024)) == [1]

    def test_pages_of_range_spanning(self):
        assert list(pages_of_range(1000, 100, 1024)) == [0, 1]
        assert list(pages_of_range(0, 4096, 1024)) == [0, 1, 2, 3]

    def test_zero_length_reads_one_page(self):
        assert list(pages_of_range(2048, 0, 1024)) == [2]

    def test_page_table_default_none(self):
        table = PageTable(0)
        assert table.access(5) is PageAccess.NONE
        table.set_access(5, PageAccess.WRITE)
        assert table.access(5) is PageAccess.WRITE
        table.set_access(5, PageAccess.NONE)
        assert table.pages_held() == 0

    def test_manager_initial_owner(self):
        manager = ManagerTable(0, initial_owner=0)
        record = manager.record(42)
        assert record.owner == 0
        assert record.copyset == {0}


def counter_process(cluster, addr, rounds, gap_us=100.0):
    for _ in range(rounds):
        value = yield Load(addr)
        yield Compute(gap_us)
        yield Store(addr, (value or 0) + 1)


class TestCoherence:
    def test_single_process_local_counting(self):
        cluster = IvyCluster(1, 2)
        cluster.spawn(0, counter_process, 0, 10)
        cluster.run()
        assert cluster.memory[0] == 10
        assert cluster.stats.page_transfers == 0

    def test_two_nodes_same_address_serialize_via_tas(self):
        lock_addr, data_addr = 0, 5000

        def locked_counter(cluster, rounds):
            for _ in range(rounds):
                while True:
                    held = yield TestAndSet(lock_addr)
                    if not held:
                        break
                    yield Compute(50.0)
                value = yield Load(data_addr)
                yield Compute(20.0)
                yield Store(data_addr, (value or 0) + 1)
                yield Store(lock_addr, False)

        cluster = IvyCluster(2, 2)
        cluster.spawn(0, locked_counter, 15)
        cluster.spawn(1, locked_counter, 15)
        cluster.run()
        assert cluster.memory[data_addr] == 30

    def test_write_fault_invalidates_readers(self):
        events = []

        def reader(cluster):
            yield Read(0, 8)
            events.append(("read-done",
                           cluster.nodes[1].pages.access(0)))
            yield Compute(50_000)   # wait while the writer invalidates
            events.append(("after-write",
                           cluster.nodes[1].pages.access(0)))

        def writer(cluster):
            yield Compute(10_000)   # let the reader cache the page first
            yield Write(0, 8)
            events.append(("write-done",
                           cluster.nodes[0].pages.access(0)))

        cluster = IvyCluster(2, 2)
        cluster.spawn(1, reader)
        cluster.spawn(0, writer)
        cluster.run()
        states = dict(events)
        assert states["read-done"] is PageAccess.READ
        assert states["write-done"] is PageAccess.WRITE
        assert states["after-write"] is PageAccess.NONE
        assert cluster.stats.invalidations >= 1

    def test_read_sharing_no_invalidation(self):
        def reader(cluster):
            yield Read(0, 8)
            yield Load(0)

        cluster = IvyCluster(3, 1)
        for node in range(3):
            cluster.spawn(node, reader)
        cluster.run()
        assert cluster.stats.invalidations == 0
        # Every node ends with read access.
        assert all(cluster.nodes[node].pages.access(0) is not
                   PageAccess.NONE for node in range(3))

    def test_owner_keeps_read_copy_after_read_fault(self):
        def writer_then_idle(cluster):
            yield Write(0, 8)
            yield Compute(50_000)

        def late_reader(cluster):
            yield Compute(10_000)
            yield Read(0, 8)

        cluster = IvyCluster(2, 1)
        cluster.spawn(0, writer_then_idle)
        cluster.spawn(1, late_reader)
        cluster.run()
        assert cluster.nodes[0].pages.access(0) is PageAccess.READ
        assert cluster.nodes[1].pages.access(0) is PageAccess.READ

    def test_transfers_counted_per_page(self):
        def toggler(cluster, rounds):
            for _ in range(rounds):
                yield Write(0, 8)
                yield Compute(1_000)

        cluster = IvyCluster(2, 1)
        cluster.spawn(0, toggler, 5)
        cluster.spawn(1, toggler, 5)
        cluster.run()
        page, transfers = cluster.stats.hottest_page()
        assert page == 0
        assert transfers >= 2   # the page bounced between the writers


class TestFaultCosts:
    def test_first_touch_read_is_cheap_for_initial_owner(self):
        """Node 0 nominally owns untouched pages: its first read costs no
        network traffic."""
        def reader(cluster):
            yield Read(0, 8)

        cluster = IvyCluster(2, 1)
        cluster.spawn(0, reader)
        cluster.run()
        assert cluster.network.stats.messages == 0

    def test_remote_fault_costs_page_transfer(self):
        def reader(cluster):
            yield Read(0, 8)

        cluster = IvyCluster(2, 1)
        cluster.spawn(1, reader)
        cluster.run()
        assert cluster.stats.page_transfers == 1
        assert cluster.network.stats.bytes >= cluster.costs.page_bytes

    def test_fault_latency_near_cost_model_prediction(self):
        def reader(cluster):
            yield Read(cluster.costs.page_bytes * 3, 8)  # page 3, mgr 1

        cluster = IvyCluster(2, 1)
        cluster.spawn(1, reader)
        cluster.run()
        predicted = cluster.costs.page_transfer_us()
        assert cluster.elapsed_us == pytest.approx(predicted, rel=0.5)

    def test_range_write_faults_every_page(self):
        def writer(cluster):
            yield Write(0, 4096)    # 4 pages

        cluster = IvyCluster(2, 1)
        cluster.spawn(1, writer)
        cluster.run()
        assert cluster.stats.write_faults == 4
        assert cluster.stats.page_transfers == 4


class TestRpcServices:
    def test_rpc_lock_mutual_exclusion(self):
        def locker(cluster, rounds):
            for _ in range(rounds):
                yield RpcLockAcquire(0)
                value = yield Load(5000)
                yield Compute(100.0)
                yield Store(5000, (value or 0) + 1)
                yield RpcLockRelease(0)

        cluster = IvyCluster(3, 2)
        for node in range(3):
            cluster.spawn(node, locker, 10)
        cluster.run()
        assert cluster.memory[5000] == 30
        assert cluster.stats.lock_rpcs == 60

    def test_rpc_barrier_synchronizes(self):
        order = []

        def phased(cluster, tag, work):
            yield Compute(work)
            order.append(("before", tag))
            yield RpcBarrier(0, 3)
            order.append(("after", tag))

        cluster = IvyCluster(3, 1)
        for node, work in enumerate((1_000, 30_000, 80_000)):
            cluster.spawn(node, phased, node, work)
        cluster.run()
        phases = [phase for phase, _ in order]
        assert phases == ["before"] * 3 + ["after"] * 3
        assert cluster.stats.barrier_rounds == 1

    def test_rpc_barrier_reusable(self):
        def looper(cluster, rounds):
            for _ in range(rounds):
                yield RpcBarrier(7, 2)

        cluster = IvyCluster(2, 1)
        cluster.spawn(0, looper, 4)
        cluster.spawn(1, looper, 4)
        cluster.run()
        assert cluster.stats.barrier_rounds == 4


class TestMachine:
    def test_deadlock_detection(self):
        def stuck(cluster):
            yield RpcBarrier(0, 2)   # nobody else ever arrives

        cluster = IvyCluster(1, 1)
        cluster.spawn(0, stuck)
        with pytest.raises(DeadlockError):
            cluster.run()

    def test_process_exception_surfaces(self):
        def bad(cluster):
            yield Compute(10.0)
            raise RuntimeError("dsm boom")

        cluster = IvyCluster(1, 1)
        cluster.spawn(0, bad)
        with pytest.raises(RuntimeError, match="dsm boom"):
            cluster.run()

    def test_non_generator_rejected(self):
        cluster = IvyCluster(1, 1)
        with pytest.raises(InvocationError):
            cluster.spawn(0, lambda c: 42)

    def test_bad_request_rejected(self):
        def bad(cluster):
            yield "not a request"

        cluster = IvyCluster(1, 1)
        cluster.spawn(0, bad)
        with pytest.raises(InvocationError):
            cluster.run()

    def test_more_processes_than_cpus(self):
        cluster = IvyCluster(1, 2)
        for i in range(5):
            cluster.spawn(0, counter_process, i * 4096, 3)
        cluster.run()
        assert all(cluster.memory[i * 4096] == 3 for i in range(5))

    def test_determinism(self):
        def run_once():
            cluster = IvyCluster(2, 2)
            cluster.spawn(0, counter_process, 0, 5)
            cluster.spawn(1, counter_process, 0, 5)
            cluster.run()
            return cluster.elapsed_us, cluster.stats.total_faults

        assert run_once() == run_once()

    def test_manager_striping(self):
        cluster = IvyCluster(4, 1)
        assert [cluster.manager_of(page) for page in range(8)] == \
            [0, 1, 2, 3, 0, 1, 2, 3]


@settings(max_examples=25, deadline=None)
@given(
    plan=st.lists(
        st.tuples(st.integers(0, 2),          # node
                  st.integers(0, 3),          # page
                  st.booleans()),             # write?
        min_size=1, max_size=24),
    mode=st.sampled_from(["fixed", "centralized", "dynamic"]),
)
def test_protocol_invariants_random_access_patterns(plan, mode):
    """Property: after any access pattern, under any of the Li & Hudak
    manager algorithms, each page has at most one WRITE holder, and a
    WRITE holder excludes all READ copies."""
    def actor(cluster, steps):
        for page, write in steps:
            addr = page * cluster.costs.page_bytes
            if write:
                yield Write(addr, 8)
            else:
                yield Read(addr, 8)
            yield Compute(500.0)

    cluster = IvyCluster(3, 1, manager_mode=mode)
    per_node = {0: [], 1: [], 2: []}
    for node, page, write in plan:
        per_node[node].append((page, write))
    for node, steps in per_node.items():
        if steps:
            cluster.spawn(node, actor, steps)
    cluster.run()
    for page in range(4):
        access = [cluster.nodes[node].pages.access(page)
                  for node in range(3)]
        writers = sum(1 for a in access if a is PageAccess.WRITE)
        readers = sum(1 for a in access if a is PageAccess.READ)
        assert writers <= 1
        if writers:
            assert readers == 0
