"""Kernel-level forwarding-chain pathologies (paper section 3.3).

``tests/test_forwarding.py`` covers the pure ``resolve()`` helper; these
tests drive the *kernel's* chase machinery — thread migration and
control-message routing — through chains that the normal move protocol
would never produce but crash recovery can: over-long chains, cycles
whose links were shed by a restart, and objects that are resident
nowhere.  The tests build the pathologies by mutating descriptor tables
directly from inside a running program (``ctx.cluster``), exactly the
states a crashed-and-restarted node leaves behind.
"""

import pytest

from repro.errors import ObjectNotFoundError
from repro.sim.syscalls import Invoke, Locate, MoveTo, New
from tests.helpers import Cell, run


def build_chain(cluster, vaddr, chain):
    """Point each node of ``chain`` at its successor, regardless of what
    the move protocol had recorded there."""
    for here, there in zip(chain, chain[1:]):
        cluster.node(here).descriptors.update_hint(vaddr, there)


class TestLongChains:
    def test_long_chain_resolves_and_compresses(self):
        """A chain touching every node still resolves, and the chase
        compresses it: the next request from the origin is direct."""
        def main(ctx):
            cell = yield New(Cell, 1)
            yield MoveTo(cell, 5)
            # Rebuild the worst-case chain 0 -> 1 -> 2 -> 3 -> 4 -> 5.
            build_chain(ctx.cluster, cell.vaddr, [0, 1, 2, 3, 4, 5])
            value = yield Invoke(cell, "add", 10)
            origin = ctx.cluster.node(0).descriptors.lookup(cell.vaddr)
            return value, origin.forward_to

        value, cached = run(main, nodes=6, cpus=1).value
        assert value == 11
        assert cached == 5      # path compression: 0 now points straight

    def test_chase_beyond_hop_cap_raises(self, monkeypatch):
        """A chain longer than MAX_CHASE_HOPS is a pathology, not a
        hang: the chase stops with ObjectNotFoundError."""
        monkeypatch.setattr("repro.sim.kernel.MAX_CHASE_HOPS", 3)

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 5)
            build_chain(ctx.cluster, cell.vaddr, [0, 1, 2, 3, 4, 5])
            yield Invoke(cell, "get")

        with pytest.raises(ObjectNotFoundError, match="hops"):
            run(main, nodes=6, cpus=1)


class TestCycles:
    """A restart sheds forwarding links; hints upstream of the shed link
    can then form a cycle (e.g. home -> restarted node -> home).  The
    chase must detect the loop and repair the chain by broadcast."""

    def test_thread_chase_cycle_repaired_by_broadcast(self):
        def main(ctx):
            cell = yield New(Cell, 40)          # homed on node 0
            yield MoveTo(cell, 2)               # actually lives on 2
            # Cycle that excludes the true holder: 0 <-> 1.
            ctx.cluster.node(0).descriptors.update_hint(cell.vaddr, 1)
            ctx.cluster.node(1).descriptors.update_hint(cell.vaddr, 0)
            value = yield Invoke(cell, "add", 2)
            return value

        result = run(main, nodes=3, cpus=1)
        assert result.value == 42
        metrics = result.cluster.metrics
        assert metrics.counter("location_broadcasts").value >= 1
        assert metrics.counter("hints_repaired").value >= 1

    def test_cycle_repair_fixes_home_hint(self):
        """After the broadcast repair, the home node points at the true
        holder again — the next chase is direct, no second broadcast."""
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 2)
            ctx.cluster.node(0).descriptors.update_hint(cell.vaddr, 1)
            ctx.cluster.node(1).descriptors.update_hint(cell.vaddr, 0)
            yield Invoke(cell, "get")
            home = ctx.cluster.node(0).descriptors.lookup(cell.vaddr)
            return home.forward_to

        result = run(main, nodes=3, cpus=1)
        assert result.value == 2
        assert result.cluster.metrics.counter(
            "location_broadcasts").value == 1

    def test_control_route_cycle_repaired_by_broadcast(self):
        """Locate uses the control-message router, which detects and
        repairs cycles the same way thread migration does."""
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 2)
            ctx.cluster.node(0).descriptors.update_hint(cell.vaddr, 1)
            ctx.cluster.node(1).descriptors.update_hint(cell.vaddr, 0)
            where = yield Locate(cell)
            return where

        result = run(main, nodes=3, cpus=1)
        assert result.value == 2
        assert result.cluster.metrics.counter(
            "location_broadcasts").value >= 1

    def test_object_resident_nowhere_is_declared_lost(self):
        """If the broadcast finds no holder anywhere (the object's heap
        died with an unrecovered node), the chase ends in
        ObjectNotFoundError instead of probing forever."""
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 2)
            ctx.cluster.node(0).descriptors.update_hint(cell.vaddr, 1)
            ctx.cluster.node(1).descriptors.update_hint(cell.vaddr, 0)
            ctx.cluster.node(2).descriptors.clear(cell.vaddr)  # vanished
            yield Invoke(cell, "get")

        with pytest.raises(ObjectNotFoundError, match="lost"):
            run(main, nodes=3, cpus=1)


class TestHomeFallback:
    def test_unknown_at_home_raises(self):
        """A chase that reaches the home node and finds no descriptor
        there fails loudly: the home must always know."""
        def main(ctx):
            cell = yield New(Cell)               # homed on node 0
            yield MoveTo(cell, 2)
            # Sever the home's knowledge: the very first hop (main runs
            # on node 0, the home) has nothing to follow.
            ctx.cluster.node(0).descriptors.clear(cell.vaddr)
            yield Invoke(cell, "get")

        with pytest.raises(ObjectNotFoundError, match="home"):
            run(main, nodes=3, cpus=1)

    def test_node_without_hint_routes_via_home(self):
        """The normal fallback: a node that has never seen the object
        asks the home node and follows its chain."""
        def main(ctx):
            cell = yield New(Cell, 7, on_node=1)   # homed on node 1
            yield MoveTo(cell, 2)
            # Forget whatever the move taught node 0: its next request
            # must route via the home node (1), whose forwarding entry
            # leads to the holder (2).
            ctx.cluster.node(0).descriptors.clear(cell.vaddr)
            value = yield Invoke(cell, "where")
            return value

        assert run(main, nodes=3, cpus=1).value == 2
