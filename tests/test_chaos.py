"""AmberChaos units: live fault decisions, at-most-once dedup, circuit
breakers, the detached-request resender, and wait_reply timeout races.

The live *scenario* suite (``repro chaos``) exercises these end to end;
here each hardening layer is pinned down in isolation so a regression
names the broken layer, not just a wedged workload.
"""

import time

import pytest

from repro.errors import AmberError, NodeFailure
from repro.faults.live import (
    LiveFaultInjector,
    decide_frame,
    schedule_fingerprint,
)
from repro.faults.plan import FaultPlan, Partition
from repro.recovery.config import PEER_TIMEOUT_ENV
from repro.runtime import AmberObject, Cluster
from repro.runtime.circuit import (
    COOLDOWN_S,
    FAILURE_THRESHOLD,
    PeerCircuits,
)
from repro.runtime.kernel import _Dedup


# ---------------------------------------------------------------------------
# Live fault decisions: pure, deterministic, rate-respecting
# ---------------------------------------------------------------------------


class TestDecideFrame:
    def test_pure_function_of_seed_src_dst_seq(self):
        plan = FaultPlan(seed=7, drop_rate=0.2, dup_rate=0.2,
                         delay_rate=0.2, delay_min_us=10.0,
                         delay_max_us=100.0)
        for seq in range(50):
            a = decide_frame(plan, 0, 1, seq)
            b = decide_frame(plan, 0, 1, seq)
            assert a == b

    def test_links_have_independent_streams(self):
        plan = FaultPlan(seed=3, drop_rate=0.5)
        fates_01 = [decide_frame(plan, 0, 1, s).drop for s in range(64)]
        fates_10 = [decide_frame(plan, 1, 0, s).drop for s in range(64)]
        assert fates_01 != fates_10

    def test_zero_rates_are_clean(self):
        plan = FaultPlan(seed=0)
        for seq in range(64):
            decision = decide_frame(plan, 0, 1, seq)
            assert not (decision.drop or decision.duplicate
                        or decision.reset or decision.delay_s)

    def test_partition_window_drops(self):
        plan = FaultPlan(seed=0, partitions=(
            Partition(nodes=(0,), start_us=0.0, end_us=1_000.0),))
        inside = decide_frame(plan, 0, 1, 0, now_us=500.0)
        outside = decide_frame(plan, 0, 1, 0, now_us=2_000.0)
        assert inside.drop and inside.partition
        assert not outside.drop

    def test_fingerprint_stable_and_seed_sensitive(self):
        kw = dict(drop_rate=0.1, dup_rate=0.1)
        assert schedule_fingerprint(FaultPlan(seed=1, **kw), 3) \
            == schedule_fingerprint(FaultPlan(seed=1, **kw), 3)
        assert schedule_fingerprint(FaultPlan(seed=1, **kw), 3) \
            != schedule_fingerprint(FaultPlan(seed=2, **kw), 3)

    def test_injector_counts_fates(self):
        plan = FaultPlan(seed=5, drop_rate=0.3, dup_rate=0.3)
        injector = LiveFaultInjector(plan, node=0)
        for _ in range(200):
            injector.on_send(1, object())
        stats = injector.stats
        assert stats["chaos_frames"] == 200
        assert stats["chaos_dropped"] > 0
        assert stats["chaos_duplicated"] > 0
        assert stats["chaos_dropped"] + stats["chaos_duplicated"] < 200


# ---------------------------------------------------------------------------
# Receive-side at-most-once dedup
# ---------------------------------------------------------------------------


class TestDedup:
    def test_claim_then_replay(self):
        dedup = _Dedup()
        assert dedup.claim(("a", 1)) == ("new", None)
        assert dedup.claim(("a", 1)) == ("in_progress", None)
        dedup.complete(("a", 1), "cached-reply")
        assert dedup.claim(("a", 1)) == ("replay", "cached-reply")

    def test_peek_does_not_claim(self):
        dedup = _Dedup()
        assert dedup.peek(("a", 1)) == ("absent", None)
        assert dedup.claim(("a", 1)) == ("new", None)
        assert dedup.peek(("a", 1)) == ("in_progress", None)
        dedup.complete(("a", 1), 42)
        assert dedup.peek(("a", 1)) == ("replay", 42)

    def test_distinct_origins_do_not_collide(self):
        dedup = _Dedup()
        assert dedup.claim((1, 99)) == ("new", None)
        assert dedup.claim((2, 99)) == ("new", None)

    def test_bounded_fifo_eviction(self):
        dedup = _Dedup(capacity=4)
        for i in range(8):
            dedup.claim(("n", i))
        assert len(dedup) == 4
        # The oldest entries were evicted: a duplicate of one now
        # re-executes (documented capacity/at-most-once trade-off).
        assert dedup.claim(("n", 0)) == ("new", None)


# ---------------------------------------------------------------------------
# Per-peer circuit breakers
# ---------------------------------------------------------------------------


class TestPeerCircuits:
    def test_opens_after_threshold(self):
        circuits = PeerCircuits()
        for _ in range(FAILURE_THRESHOLD - 1):
            circuits.record_failure(1)
        assert circuits.check(1) == "closed"
        circuits.record_failure(1)
        assert circuits.check(1) == "open"
        assert circuits.open_peers() == {1}

    def test_success_closes(self):
        circuits = PeerCircuits()
        for _ in range(FAILURE_THRESHOLD):
            circuits.record_failure(2)
        assert circuits.check(2) == "open"
        circuits.record_success(2)
        assert circuits.check(2) == "closed"

    def test_suspicion_forces_open_and_retraction_probes(self):
        circuits = PeerCircuits()
        assert circuits.check(3, suspected=True) == "open"
        # Retraction (peer no longer suspected): an immediate probe is
        # allowed rather than waiting out the cooldown.
        verdict = circuits.check(3, suspected=False)
        assert verdict == "probe"

    def test_probe_after_cooldown(self):
        circuits = PeerCircuits()
        for _ in range(FAILURE_THRESHOLD):
            circuits.record_failure(4)
        assert circuits.check(4) == "open"
        circuits._peers[4].opened_at -= COOLDOWN_S + 0.01
        assert circuits.check(4) == "probe"
        # While one probe is in flight others still fail fast.
        assert circuits.check(4) == "open"
        circuits.record_success(4)
        assert circuits.check(4) == "closed"


# ---------------------------------------------------------------------------
# Live kernel: wait_reply races + the detached-request resender
# ---------------------------------------------------------------------------


class Napper(AmberObject):
    def __init__(self):
        self.naps = 0

    def nap(self, seconds):
        self.naps += 1
        time.sleep(seconds)
        return self.naps

    def poke(self):
        return "ok"


@pytest.fixture(scope="module")
def cluster():
    with Cluster(nodes=2) as c:
        yield c


class TestWaitReplyRaces:
    def test_timeout_leaves_no_pending_leak(self, cluster):
        handle = cluster.create(Napper, node=1)
        thread = cluster.fork(handle, "nap", 1.0)
        with pytest.raises(TimeoutError):
            thread.join(timeout=0.05)
        assert thread._request_id not in cluster.kernel._pending
        # The late ResultMsg lands on an unknown request id and is
        # dropped; the kernel stays healthy for new traffic.
        assert cluster.call(handle, "poke") == "ok"
        time.sleep(1.2)
        assert cluster.call(handle, "poke") == "ok"

    def test_second_join_is_a_typed_error(self, cluster):
        handle = cluster.create(Napper, node=1)
        thread = cluster.fork(handle, "nap", 0.5)
        with pytest.raises(TimeoutError):
            thread.join(timeout=0.05)
        with pytest.raises(AmberError):
            thread.join(timeout=0.05)

    def test_join_after_completion_returns_result(self, cluster):
        handle = cluster.create(Napper, node=1)
        thread = cluster.fork(handle, "nap", 0.0)
        time.sleep(0.3)
        assert isinstance(thread.join(timeout=5), int)


class TestDetachedResender:
    def test_dropped_fork_frame_recovers_without_join(self, cluster):
        """A fork whose very first frame is lost must still execute —
        the resender daemon retransmits it even if nobody joins."""
        handle = cluster.create(Napper, node=1)
        before = cluster.call(handle, "poke")
        assert before == "ok"
        kernel = cluster.kernel
        mesh_send = kernel.mesh.send
        dropped = []

        def lossy_send(node, message, _orig=mesh_send):
            if not dropped and type(message).__name__ == "InvokeMsg":
                dropped.append(message)
                return          # swallowed: never reaches the wire
            return _orig(node, message)

        kernel.mesh.send = lossy_send
        try:
            thread = cluster.fork(handle, "nap", 0.0)
        finally:
            kernel.mesh.send = mesh_send
        assert dropped, "the fork frame should have been dropped"
        # No join: only the resender daemon can recover this.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if not kernel._detached:
                break
            time.sleep(0.05)
        assert isinstance(thread.join(timeout=10), int)
        assert kernel.stats["resends"] >= 1

    def test_detached_entry_cleared_after_reply(self, cluster):
        handle = cluster.create(Napper, node=1)
        thread = cluster.fork(handle, "nap", 0.0)
        thread.join(timeout=10)
        assert thread._request_id not in cluster.kernel._detached


class TestTypedFailureFast:
    def test_killed_node_gives_typed_bounded_failure(self, monkeypatch):
        monkeypatch.setenv(PEER_TIMEOUT_ENV, "2")
        with Cluster(nodes=2) as cluster:
            handle = cluster.create(Napper, node=1)
            assert cluster.call(handle, "poke") == "ok"
            cluster.kill_node(1)
            t0 = time.monotonic()
            with pytest.raises((NodeFailure, TimeoutError)):
                cluster.call(handle, "poke")
            assert time.monotonic() - t0 < 9.0   # reply deadline + slack
            # Breaker open now: the next failure is near-instant.
            t1 = time.monotonic()
            with pytest.raises((NodeFailure, TimeoutError)):
                cluster.call(handle, "poke")
            assert time.monotonic() - t1 < 1.0
