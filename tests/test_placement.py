"""Tests for the placement advisors (the paper's "higher-level object
placement software")."""

import pytest

from repro.placement import (
    AffinityRebalancer,
    HintedPlacement,
    LeastPopulatedPlacer,
    PlacementPolicy,
    RoundRobinPlacer,
    SpreadPlacement,
)
from repro.sim.objects import SimObject
from repro.sim.program import run_program
from repro.sim.syscalls import (
    Attach,
    Charge,
    Compute,
    Fork,
    Invoke,
    Join,
    MoveTo,
    New,
    SetImmutable,
)
from tests.helpers import Cell


class TestPlacers:
    def test_round_robin_cycles(self):
        placer = RoundRobinPlacer(3)
        assert [placer.place() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_start_offset(self):
        placer = RoundRobinPlacer(3, start=2)
        assert [placer.place() for _ in range(3)] == [2, 0, 1]

    def test_least_populated_balances(self):
        def main(ctx):
            placer = LeastPopulatedPlacer(ctx.cluster)
            placements = []
            for _ in range(8):
                node = placer.place()
                yield New(Cell, on_node=node)
                placements.append(node)
            return placements

        placements = run_program(main, nodes=4, cpus_per_node=1).value
        # Node 0 starts with the main object + main thread (population
        # 2), so the advisor fills the other nodes first; the *final*
        # population ends balanced: 2 + 8 objects over 4 nodes.
        population = [2, 0, 0, 0]
        for node in placements:
            population[node] += 1
        assert max(population) - min(population) <= 1
        assert placements[0] != 0   # it avoided the preloaded node


class Client(SimObject):
    def pound(self, ctx, target, times):
        for _ in range(times):
            yield Invoke(target, "add", 1)
        return times


class TestAffinityRebalancer:
    def run_scenario(self, accesses_from_node_2=12, local_accesses=0):
        def main(ctx):
            cell = yield New(Cell)          # lives on node 0
            client = yield New(Client, on_node=2)
            for _ in range(local_accesses):
                yield Invoke(cell, "add", 1)
            worker = yield Fork(client, "pound", cell,
                                accesses_from_node_2)
            yield Join(worker)
            rebalancer = AffinityRebalancer()
            return rebalancer.suggest(ctx.cluster), cell

        return run_program(main, nodes=3, cpus_per_node=2).value

    def test_suggests_move_toward_heavy_user(self):
        suggestions, cell = self.run_scenario()
        targets = {s.obj.vaddr: s.dest for s in suggestions}
        assert targets.get(cell.vaddr) == 2

    def test_gain_reflects_access_counts(self):
        suggestions, cell = self.run_scenario(accesses_from_node_2=12,
                                              local_accesses=3)
        by_vaddr = {s.obj.vaddr: s for s in suggestions}
        suggestion = by_vaddr[cell.vaddr]
        assert suggestion.remote_count == 12
        assert suggestion.local_count == 3
        assert suggestion.gain == 9

    def test_respects_min_accesses(self):
        def main(ctx):
            cell = yield New(Cell)
            client = yield New(Client, on_node=1)
            worker = yield Fork(client, "pound", cell, 2)
            yield Join(worker)
            return AffinityRebalancer(min_accesses=4).suggest(ctx.cluster)

        suggestions = run_program(main, nodes=2, cpus_per_node=2).value
        assert suggestions == []

    def test_local_majority_not_moved(self):
        suggestions, cell = self.run_scenario(accesses_from_node_2=3,
                                              local_accesses=10)
        assert all(s.obj.vaddr != cell.vaddr for s in suggestions)

    def test_immutables_skipped(self):
        def main(ctx):
            cell = yield New(Cell)
            yield SetImmutable(cell)
            client = yield New(Client, on_node=1)
            worker = yield Fork(client, "pound", cell, 8)
            yield Join(worker)
            return AffinityRebalancer().suggest(ctx.cluster)

        # pound mutates, which immutability forbids morally, but the
        # advisor's skip is what is under test here.
        suggestions = run_program(main, nodes=2, cpus_per_node=2).value
        assert suggestions == []

    def test_one_suggestion_per_attachment_group(self):
        def main(ctx):
            a = yield New(Cell)
            b = yield New(Cell)
            yield Attach(a, b)
            client = yield New(Client, on_node=1)
            worker_a = yield Fork(client, "pound", a, 8)
            worker_b = yield Fork(client, "pound", b, 8)
            yield Join(worker_a)
            yield Join(worker_b)
            return AffinityRebalancer().suggest(ctx.cluster), a, b

        suggestions, a, b = run_program(main, nodes=2,
                                        cpus_per_node=2).value
        group_hits = [s for s in suggestions
                      if s.obj.vaddr in (a.vaddr, b.vaddr)]
        assert len(group_hits) == 1

    def test_acting_on_suggestions_improves_time(self):
        """The whole point: consult the advisor between phases, apply its
        moves, and the next phase runs faster."""
        def main(ctx, rebalance):
            cell = yield New(Cell)
            client = yield New(Client, on_node=2)
            # Phase 1: node 2 hammers the (badly placed) object.
            worker = yield Fork(client, "pound", cell, 10)
            yield Join(worker)
            if rebalance:
                rebalancer = AffinityRebalancer()
                for suggestion in rebalancer.suggest(ctx.cluster):
                    yield MoveTo(suggestion.obj, suggestion.dest)
                rebalancer.reset_log(ctx.cluster)
            # Phase 2: same access pattern.
            t0 = ctx.now_us
            worker = yield Fork(client, "pound", cell, 10)
            yield Join(worker)
            return ctx.now_us - t0

        static = run_program(main, False, nodes=3, cpus_per_node=2).value
        advised = run_program(main, True, nodes=3, cpus_per_node=2).value
        assert advised < static / 2

    def test_reset_log(self):
        def main(ctx):
            cell = yield New(Cell)
            yield Invoke(cell, "add", 1)
            rebalancer = AffinityRebalancer()
            rebalancer.reset_log(ctx.cluster)
            return dict(ctx.cluster.access_log)

        assert run_program(main, nodes=2).value == {}


def _artifact(hints):
    return {"schema": "amberflow-hints/1", "sources": [],
            "hints": hints}


class TestPlacementPolicies:
    """Hint-override paths of the creation-time placement policies."""

    def test_base_policy_passes_defaults_through(self):
        policy = PlacementPolicy()
        assert policy.node_for("Any", 3, None) is None
        assert policy.node_for("Any", 3, 2) == 2
        assert policy.replicate("Any", True) is True
        assert policy.replicate("Any", False) is False

    def test_spread_round_robins_and_never_replicates(self):
        policy = SpreadPlacement(3)
        assert [policy.node_for("C", i, 0) for i in range(5)] == \
            [0, 1, 2, 0, 1]
        assert policy.replicate("C", True) is False

    def test_hinted_spread_round_robin(self):
        policy = HintedPlacement(_artifact([
            {"kind": "spread", "cls": "Worker",
             "strategy": "round-robin"}]), nodes=2)
        assert [policy.node_for("Worker", i, 9, count=4)
                for i in range(4)] == [0, 1, 0, 1]

    def test_hinted_spread_block_keeps_neighbors_together(self):
        policy = HintedPlacement(_artifact([
            {"kind": "spread", "cls": "Section",
             "strategy": "block"}]), nodes=2)
        assert [policy.node_for("Section", i, 9, count=8)
                for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_block_without_count_degrades_to_round_robin(self):
        policy = HintedPlacement(_artifact([
            {"kind": "spread", "cls": "Section",
             "strategy": "block"}]), nodes=2)
        assert [policy.node_for("Section", i, 9)
                for i in range(4)] == [0, 1, 0, 1]

    def test_hub_and_replicate_classes_stay_at_program_default(self):
        policy = HintedPlacement(_artifact([
            {"kind": "hub", "cls": "Pool"},
            {"kind": "replicate", "cls": "Table"}]), nodes=4)
        assert policy.node_for("Pool", 0, None) is None
        assert policy.node_for("Table", 1, 3) == 3
        assert policy.replicate("Table", False) is True
        assert policy.replicate("Pool", True) is False

    def test_unknown_class_goes_to_fallback(self):
        policy = HintedPlacement(
            _artifact([{"kind": "hub", "cls": "Pool"}]), nodes=2,
            fallback=SpreadPlacement(2))
        assert not policy.knows("Stranger")
        assert policy.node_for("Stranger", 3, None) == 1
        assert policy.replicate("Stranger", True) is False

    def test_unknown_class_without_fallback_keeps_program_choice(self):
        policy = HintedPlacement(_artifact([]), nodes=2)
        assert policy.node_for("Stranger", 3, 1) == 1
        assert policy.replicate("Stranger", True) is True

    def test_absent_hints_disable_the_policy(self):
        policy = HintedPlacement(None, nodes=2,
                                 fallback=SpreadPlacement(2))
        assert policy.stale
        assert policy.node_for("Worker", 3, 0) == 1
        assert policy.replicate("Worker", True) is False

    def test_stale_schema_disables_the_policy(self):
        policy = HintedPlacement(
            {"schema": "amberflow-hints/999", "hints": [
                {"kind": "spread", "cls": "Worker"}]}, nodes=2)
        assert policy.stale
        assert not policy.knows("Worker")
        assert policy.node_for("Worker", 3, 0) == 0

    def test_malformed_artifact_disables_the_policy(self):
        policy = HintedPlacement(["not", "a", "mapping"], nodes=2)
        assert policy.stale
        assert policy.node_for("Worker", 1, 7) == 7

    def test_artifact_object_is_accepted(self):
        from repro.analyze.flow import Hint, PlacementHints
        hints = PlacementHints(
            schema="amberflow-hints/1", sources=[],
            hints=[Hint(kind="replicate", cls="B")])
        policy = HintedPlacement(hints, nodes=2)
        assert not policy.stale
        assert policy.replicate("B", False) is True
