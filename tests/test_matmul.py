"""Tests for the distributed block matrix multiply application."""

import numpy as np
import pytest

from repro.apps.matmul import run_matmul


def reference(m, k, n, seed=7):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k), dtype=np.float32)
    b = rng.standard_normal((k, n), dtype=np.float32)
    return a @ b


class TestMatmul:
    @pytest.mark.parametrize("replicate_b", [True, False])
    def test_product_is_correct(self, replicate_b):
        result = run_matmul(m=48, k=40, n=56, nodes=3,
                            replicate_b=replicate_b)
        assert result.product.shape == (48, 56)
        assert np.allclose(result.product, reference(48, 40, 56),
                           rtol=1e-4)

    def test_uneven_row_split(self):
        result = run_matmul(m=50, k=32, n=32, nodes=4)
        assert np.allclose(result.product, reference(50, 32, 32),
                           rtol=1e-4)

    def test_replication_reduces_migrations(self):
        mutable = run_matmul(m=64, k=64, n=64, nodes=4,
                             replicate_b=False)
        immutable = run_matmul(m=64, k=64, n=64, nodes=4,
                               replicate_b=True)
        assert immutable.stats.thread_migrations < \
            mutable.stats.thread_migrations
        # One replica per non-owner node, at most.
        assert 1 <= immutable.stats.replications <= 3

    def test_replication_improves_speedup_on_reuse(self):
        """Iterative re-reads of B: one replica beats a stream of
        per-block fetches."""
        mutable = run_matmul(m=96, k=96, n=96, nodes=4,
                             replicate_b=False, rounds=4)
        immutable = run_matmul(m=96, k=96, n=96, nodes=4,
                               replicate_b=True, rounds=4)
        assert immutable.speedup > mutable.speedup
        assert immutable.network_bytes < mutable.network_bytes / 2

    def test_parallelism_helps(self):
        one = run_matmul(m=96, k=96, n=96, nodes=1, cpus_per_node=1)
        four = run_matmul(m=96, k=96, n=96, nodes=4, cpus_per_node=1)
        assert four.elapsed_us < one.elapsed_us

    def test_single_node_near_sequential(self):
        result = run_matmul(m=48, k=48, n=48, nodes=1, cpus_per_node=1)
        assert result.speedup == pytest.approx(1.0, abs=0.15)

    def test_deterministic(self):
        a = run_matmul(m=48, k=48, n=48, nodes=2)
        b = run_matmul(m=48, k=48, n=48, nodes=2)
        assert a.elapsed_us == b.elapsed_us
        assert np.array_equal(a.product, b.product)

    def test_column_blocking_changes_traffic_not_result(self):
        fine = run_matmul(m=48, k=48, n=48, nodes=2, replicate_b=False,
                          col_block=8)
        coarse = run_matmul(m=48, k=48, n=48, nodes=2, replicate_b=False,
                            col_block=48)
        assert np.allclose(fine.product, coarse.product, rtol=1e-4)
        assert fine.stats.thread_migrations > \
            coarse.stats.thread_migrations
