"""Tests for synchronization objects (paper section 2.2).

Locks, barriers, monitors and condition variables are mobile, remotely
invocable objects; these tests exercise both local use and the distributed
behaviour section 4.1 highlights (remote lock invocation instead of page
thrashing).
"""

import pytest

from repro.errors import SynchronizationError
from repro.sim.objects import SimObject
from repro.sim.sync import (
    Barrier,
    CondVar,
    Lock,
    Monitor,
    ReaderWriterLock,
    SpinLock,
)
from repro.sim.syscalls import (
    Attach,
    Charge,
    Compute,
    Fork,
    GetStats,
    Invoke,
    Join,
    MoveTo,
    New,
)
from tests.helpers import run, run_free


class Account(SimObject):
    """Shared counter protected by a caller-supplied lock object."""

    def __init__(self, lock):
        self.lock = lock
        self.balance = 0
        self.race_observed = False

    def deposit(self, ctx, amount, rounds, hold_us=10.0):
        for _ in range(rounds):
            yield Invoke(self.lock, "acquire")
            snapshot = self.balance
            yield Compute(hold_us)  # race window if the lock is broken
            if self.balance != snapshot:
                self.race_observed = True
            self.balance = snapshot + amount
            yield Invoke(self.lock, "release")


class TestLock:
    @pytest.mark.parametrize("lock_cls", [Lock, SpinLock])
    def test_mutual_exclusion(self, lock_cls):
        def main(ctx):
            lock = yield New(lock_cls)
            account = yield New(Account, lock)
            workers = []
            for _ in range(4):
                workers.append((yield Fork(account, "deposit", 1, 10)))
            for worker in workers:
                yield Join(worker)
            return account.balance, account.race_observed

        balance, raced = run(main, nodes=1, cpus=4).value
        assert balance == 40
        assert not raced

    def test_release_by_non_owner_rejected(self):
        def main(ctx):
            lock = yield New(Lock)
            try:
                yield Invoke(lock, "release")
            except SynchronizationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_try_acquire(self):
        def main(ctx):
            lock = yield New(Lock)
            first = yield Invoke(lock, "try_acquire")
            second = yield Invoke(lock, "try_acquire")
            yield Invoke(lock, "release")
            third = yield Invoke(lock, "try_acquire")
            return (first, second, third)

        assert run_free(main).value == (True, False, True)

    def test_fifo_handoff(self):
        def main(ctx):
            lock = yield New(Lock)
            account = yield New(Account, lock)
            yield Invoke(lock, "acquire")
            workers = []
            for _ in range(3):
                workers.append((yield Fork(account, "deposit", 1, 1)))
            yield Compute(20_000)
            yield Invoke(lock, "release")
            for worker in workers:
                yield Join(worker)
            return account.balance

        assert run(main, cpus=4).value == 3

    def test_remote_lock_is_function_shipping(self):
        """Acquiring a lock on another node migrates the thread there and
        back — one predictable round trip per operation, never a shuttled
        data page (section 4.1)."""
        def main(ctx):
            lock = yield New(Lock)
            yield MoveTo(lock, 1)
            stats = yield GetStats()
            migrations_before = stats.thread_migrations
            yield Invoke(lock, "acquire")
            yield Invoke(lock, "release")
            return stats.thread_migrations - migrations_before

        assert run_free(main).value == 4   # 2 round trips

    def test_contention_statistics(self):
        def main(ctx):
            lock = yield New(Lock)
            account = yield New(Account, lock)
            workers = []
            for _ in range(3):
                # Long critical sections guarantee overlap despite the
                # staggered thread starts.
                workers.append((yield Fork(account, "deposit", 1, 5,
                                           5_000.0)))
            for worker in workers:
                yield Join(worker)
            return lock.acquisitions, lock.contended_acquisitions

        acquisitions, contended = run(main, cpus=4).value
        assert acquisitions == 15
        assert contended > 0

    def test_spinlock_burns_cpu_while_waiting(self):
        def main(ctx):
            lock = yield New(SpinLock)
            account = yield New(Account, lock)
            workers = []
            for _ in range(2):
                workers.append((yield Fork(account, "deposit", 1, 5,
                                           5_000.0)))
            for worker in workers:
                yield Join(worker)
            return lock.spin_us

        assert run(main, cpus=4).value > 0


class TestBarrier:
    def test_releases_all_parties_together(self):
        class Team(SimObject):
            def __init__(self, barrier):
                self.barrier = barrier
                self.before = 0
                self.after = []

            def member(self, ctx, delay):
                yield Compute(delay)
                self.before += 1
                serial = yield Invoke(self.barrier, "wait")
                self.after.append(self.before)
                return serial

        def main(ctx):
            barrier = yield New(Barrier, 3)
            team = yield New(Team, barrier)
            workers = []
            for delay in (1_000, 20_000, 50_000):
                workers.append((yield Fork(team, "member", delay)))
            serials = []
            for worker in workers:
                serials.append((yield Join(worker)))
            return team.after, serials

        after, serials = run(main, cpus=4).value
        # Nobody proceeded before all three arrived.
        assert after == [3, 3, 3]
        # Exactly one thread per cycle is the serial one.
        assert sorted(serials) == [False, False, True]

    def test_barrier_is_reusable(self):
        class Team(SimObject):
            def __init__(self, barrier):
                self.barrier = barrier
                self.cycles_seen = 0

            def member(self, ctx, rounds):
                for _ in range(rounds):
                    yield Invoke(self.barrier, "wait")
                return "done"

        def main(ctx):
            barrier = yield New(Barrier, 2)
            team = yield New(Team, barrier)
            a = yield Fork(team, "member", 5)
            b = yield Fork(team, "member", 5)
            yield Join(a)
            yield Join(b)
            return barrier.cycles

        assert run(main, cpus=4).value == 5

    def test_invalid_parties_rejected(self):
        with pytest.raises(SynchronizationError):
            Barrier(0)

    def test_distributed_barrier(self):
        """Sections on different nodes meet at one barrier object — each
        wait is a remote invocation for the far node's thread."""
        class Site(SimObject):
            def __init__(self, barrier):
                self.barrier = barrier

            def arrive(self, ctx):
                yield Invoke(self.barrier, "wait")
                return ctx.node

        def main(ctx):
            barrier = yield New(Barrier, 2)
            near = yield New(Site, barrier)
            far = yield New(Site, barrier, on_node=1)
            a = yield Fork(near, "arrive")
            b = yield Fork(far, "arrive")
            return [(yield Join(a)), (yield Join(b))]

        assert run_free(main).value == [0, 1]


class TestMonitorCondVar:
    def test_bounded_buffer(self):
        """Producer/consumer over a monitor + condition variable (Mesa
        semantics: conditions re-checked in a loop)."""
        class Buffer(SimObject):
            def __init__(self, monitor, not_empty, not_full, capacity):
                self.monitor = monitor
                self.not_empty = not_empty
                self.not_full = not_full
                self.capacity = capacity
                self.items = []

            def put(self, ctx, item):
                yield Invoke(self.monitor, "enter")
                while len(self.items) >= self.capacity:
                    yield Invoke(self.not_full, "wait")
                self.items.append(item)
                yield Invoke(self.not_empty, "signal")
                yield Invoke(self.monitor, "exit")

            def get(self, ctx):
                yield Invoke(self.monitor, "enter")
                while not self.items:
                    yield Invoke(self.not_empty, "wait")
                item = self.items.pop(0)
                yield Invoke(self.not_full, "signal")
                yield Invoke(self.monitor, "exit")
                return item

            def produce(self, ctx, n):
                for i in range(n):
                    yield Invoke(self, "put", i)

            def consume(self, ctx, n):
                got = []
                for _ in range(n):
                    got.append((yield Invoke(self, "get")))
                return got

        def main(ctx):
            monitor = yield New(Monitor)
            not_empty = yield New(CondVar, monitor)
            not_full = yield New(CondVar, monitor)
            buffer = yield New(Buffer, monitor, not_empty, not_full, 2)
            producer = yield Fork(buffer, "produce", 8)
            consumer = yield Fork(buffer, "consume", 8)
            yield Join(producer)
            got = yield Join(consumer)
            return got, len(buffer.items)

        got, left = run(main, cpus=2).value
        assert got == list(range(8))
        assert left == 0

    def test_wait_without_monitor_rejected(self):
        def main(ctx):
            monitor = yield New(Monitor)
            cond = yield New(CondVar, monitor)
            try:
                yield Invoke(cond, "wait")
            except SynchronizationError:
                return "rejected"

        assert run_free(main).value == "rejected"

    def test_broadcast_wakes_all(self):
        class Gate(SimObject):
            def __init__(self, monitor, cond):
                self.monitor = monitor
                self.cond = cond
                self.open = False
                self.through = 0

            def pass_gate(self, ctx):
                yield Invoke(self.monitor, "enter")
                while not self.open:
                    yield Invoke(self.cond, "wait")
                self.through += 1
                yield Invoke(self.monitor, "exit")

            def open_gate(self, ctx):
                yield Invoke(self.monitor, "enter")
                self.open = True
                yield Invoke(self.cond, "broadcast")
                yield Invoke(self.monitor, "exit")

        def main(ctx):
            monitor = yield New(Monitor)
            cond = yield New(CondVar, monitor)
            gate = yield New(Gate, monitor, cond)
            waiters = []
            for _ in range(3):
                waiters.append((yield Fork(gate, "pass_gate")))
            yield Compute(50_000)
            yield Invoke(gate, "open_gate")
            for waiter in waiters:
                yield Join(waiter)
            return gate.through

        assert run(main, cpus=4).value == 3

    def test_monitor_exit_by_non_owner_rejected(self):
        def main(ctx):
            monitor = yield New(Monitor)
            try:
                yield Invoke(monitor, "exit")
            except SynchronizationError:
                return "rejected"

        assert run_free(main).value == "rejected"


class TestReaderWriterLock:
    def test_readers_share_writers_exclude(self):
        class Library(SimObject):
            def __init__(self, rw):
                self.rw = rw
                self.active_readers = 0
                self.max_concurrent_readers = 0
                self.value = 0

            def read(self, ctx):
                yield Invoke(self.rw, "acquire_read")
                self.active_readers += 1
                self.max_concurrent_readers = max(
                    self.max_concurrent_readers, self.active_readers)
                yield Compute(10_000)
                snapshot = self.value
                self.active_readers -= 1
                yield Invoke(self.rw, "release_read")
                return snapshot

            def write(self, ctx, value):
                yield Invoke(self.rw, "acquire_write")
                if self.active_readers:
                    raise AssertionError("writer overlapped readers")
                yield Compute(5_000)
                self.value = value
                yield Invoke(self.rw, "release_write")

        def main(ctx):
            rw = yield New(ReaderWriterLock)
            library = yield New(Library, rw)
            readers = []
            for _ in range(3):
                readers.append((yield Fork(library, "read")))
            writer = yield Fork(library, "write", 7)
            for reader in readers:
                yield Join(reader)
            yield Join(writer)
            final = yield Invoke(library, "read")
            return library.max_concurrent_readers, final

        concurrent, final = run(main, cpus=4).value
        assert concurrent >= 2    # readers really overlapped
        assert final == 7

    def test_release_without_hold_rejected(self):
        def main(ctx):
            rw = yield New(ReaderWriterLock)
            try:
                yield Invoke(rw, "release_read")
            except SynchronizationError:
                return "rejected"

        assert run_free(main).value == "rejected"


class TestMobileSync:
    def test_lock_moves_with_protected_object(self):
        """Section 3.6's recipe: attach the lock to the object it guards
        so they stay co-located across moves."""
        def main(ctx):
            lock = yield New(Lock)
            from tests.helpers import Cell
            data = yield New(Cell)
            yield Attach(lock, data)
            yield MoveTo(data, 1)
            yield Invoke(lock, "acquire")   # remote now, still works
            yield Invoke(lock, "release")
            from repro.sim.syscalls import Locate
            return (yield Locate(lock))

        assert run_free(main).value == 1
