"""Integration tests for the live multiprocess runtime.

A real cluster is spawned (one OS process per node on localhost); these
tests exercise the full Amber model over actual sockets: function
shipping, mobility with forwarding, replication, threads, and the
distributed synchronization objects.
"""

import time

import pytest

from repro.errors import (
    AmberError,
    AttachmentError,
    ClusterError,
    ImmutabilityError,
    SynchronizationError,
)
from repro.runtime import (
    AmberObject,
    Barrier,
    Cluster,
    CondVar,
    Lock,
    RendezvousQueue,
    current_node,
)


class Counter(AmberObject):
    def __init__(self, start=0):
        self.value = start

    def add(self, n=1):
        self.value += n
        return self.value

    def get(self):
        return self.value

    def where(self):
        return current_node()

    def boom(self):
        raise ValueError("boom")

    def slow_add(self, n, delay):
        time.sleep(delay)
        self.value += n
        return self.value


class Pair(AmberObject):
    """Holds handles to other objects: exercises reference transmission."""

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def total(self):
        # Invoking through handles from inside an operation: the nested
        # activations ship to wherever left and right live.
        return self.left.get() + self.right.get()

    def whereabouts(self):
        return (current_node(), self.left.where(), self.right.where())


class Critical(AmberObject):
    """Counts overlapping critical sections guarded by a remote Lock."""

    def __init__(self, lock):
        self.lock = lock
        self.overlaps = 0
        self.inside = 0
        self.runs = 0

    def run(self, n):
        for _ in range(n):
            self.lock.acquire()
            self.inside += 1
            if self.inside > 1:
                self.overlaps += 1
            time.sleep(0.01)
            self.inside -= 1
            self.runs += 1
            self.lock.release()
        return self.runs

    def report(self):
        return (self.runs, self.overlaps)


class Arriver(AmberObject):
    def __init__(self, barrier):
        self.barrier = barrier

    def arrive(self):
        serial = self.barrier.wait(timeout=15)
        return (current_node(), serial)


class Producer(AmberObject):
    def __init__(self, channel):
        self.channel = channel

    def produce(self, n):
        for i in range(n):
            self.channel.put(i)
        return n


class Consumer(AmberObject):
    def __init__(self, channel):
        self.channel = channel

    def consume(self, n):
        return [self.channel.get(timeout=15) for _ in range(n)]



@pytest.fixture(scope="module")
def cluster():
    with Cluster(nodes=3) as c:
        yield c


class TestInvocation:
    def test_local_create_and_invoke(self, cluster):
        counter = cluster.create(Counter, 10)
        assert counter.add(5) == 15
        assert counter.get() == 15

    def test_remote_create_executes_there(self, cluster):
        counter = cluster.create(Counter, node=1)
        assert counter.where() == 1

    def test_state_persists_across_invocations(self, cluster):
        counter = cluster.create(Counter, node=2)
        for i in range(5):
            counter.add(1)
        assert counter.get() == 5

    def test_kwargs(self, cluster):
        counter = cluster.create(Counter, start=7)
        assert counter.add(n=3) == 10

    def test_exception_propagates_across_nodes(self, cluster):
        counter = cluster.create(Counter, node=1)
        with pytest.raises(ValueError, match="boom"):
            counter.boom()

    def test_unknown_method_rejected(self, cluster):
        counter = cluster.create(Counter, node=1)
        with pytest.raises(AmberError):
            counter.no_such_method()

    def test_non_amber_class_rejected(self, cluster):
        class Plain:
            pass

        with pytest.raises(AmberError):
            cluster.create(Plain)

    def test_handles_travel_as_references(self, cluster):
        left = cluster.create(Counter, 1, node=1)
        right = cluster.create(Counter, 2, node=2)
        pair = cluster.create(Pair, left, right, node=0)
        assert pair.total() == 3
        assert pair.whereabouts() == (0, 1, 2)


class TestMobility:
    def test_move_and_invoke(self, cluster):
        counter = cluster.create(Counter, 5, node=0)
        cluster.move(counter, 1)
        assert counter.where() == 1
        assert counter.add(1) == 6

    def test_locate_tracks_moves(self, cluster):
        counter = cluster.create(Counter)
        for dest in (1, 2, 0, 2):
            cluster.move(counter, dest)
            assert cluster.locate(counter) == dest

    def test_state_survives_moves(self, cluster):
        counter = cluster.create(Counter)
        for dest in (1, 2, 1, 0):
            counter.add(1)
            cluster.move(counter, dest)
        assert counter.get() == 4

    def test_forwarding_chain_resolved(self, cluster):
        """Another node's stale descriptor chases the chain and still
        reaches the object."""
        counter = cluster.create(Counter, node=1)
        counter.add(1)             # node 0 learns nothing (direct hit)
        cluster.move(counter, 2)   # node 1 now forwards to 2
        assert counter.get() == 1  # 0 -> believed 1 -> forwarded -> 2
        stats1 = cluster.node_stats(1)
        assert stats1["forwards"] >= 1

    def test_move_to_bad_node_rejected(self, cluster):
        counter = cluster.create(Counter)
        with pytest.raises(ClusterError):
            cluster.move(counter, 99)

    def test_move_waits_for_active_invocations(self, cluster):
        counter = cluster.create(Counter, node=1)
        thread = cluster.fork(counter, "slow_add", 1, 0.5)
        time.sleep(0.1)            # let the slow invocation start
        cluster.move(counter, 2)   # must drain the slow_add first
        assert thread.join(timeout=10) == 1
        assert counter.get() == 1
        assert cluster.locate(counter) == 2

    def test_delete(self, cluster):
        counter = cluster.create(Counter, node=1)
        cluster.delete(counter)
        with pytest.raises(AmberError):
            counter.get()


class TestAttachment:
    def test_attached_objects_move_together(self, cluster):
        a = cluster.create(Counter, 1)
        b = cluster.create(Counter, 2)
        cluster.attach(a, b)
        cluster.move(b, 2)
        assert cluster.locate(a) == 2
        assert cluster.locate(b) == 2
        assert a.get() + b.get() == 3
        cluster.unattach(a)

    def test_attach_requires_colocation(self, cluster):
        a = cluster.create(Counter, node=0)
        b = cluster.create(Counter, node=1)
        with pytest.raises(AttachmentError):
            cluster.attach(a, b)

    def test_unattach_allows_separation(self, cluster):
        a = cluster.create(Counter)
        b = cluster.create(Counter)
        cluster.attach(a, b)
        cluster.unattach(a)
        cluster.move(a, 1)
        assert cluster.locate(a) == 1
        assert cluster.locate(b) == 0


class TestImmutables:
    def test_move_of_immutable_copies(self, cluster):
        table = cluster.create(Counter, 42)
        cluster.set_immutable(table)
        cluster.move(table, 1)
        # Still resident at the origin: a copy was made, not a move.
        assert cluster.locate(table) == 0
        assert table.get() == 42

    def test_remote_read_installs_replica(self, cluster):
        table = cluster.create(Counter, 7, node=1)
        cluster.set_immutable(table)
        before = cluster.node_stats(0)["local_invocations"]
        assert table.get() == 7            # remote: triggers replication
        deadline = time.time() + 5
        while time.time() < deadline:
            if cluster.node_stats(0)["replicas_installed"] >= 1:
                break
            time.sleep(0.02)
        assert cluster.node_stats(0)["replicas_installed"] >= 1
        assert table.get() == 7            # now a local read
        after = cluster.node_stats(0)["local_invocations"]
        assert after > before

    def test_attach_of_immutable_rejected(self, cluster):
        a = cluster.create(Counter)
        b = cluster.create(Counter)
        cluster.set_immutable(a)
        with pytest.raises(AttachmentError):
            cluster.attach(a, b)


class TestThreads:
    def test_fork_join(self, cluster):
        counter = cluster.create(Counter, node=2)
        thread = cluster.fork(counter, "add", 5)
        assert thread.join(timeout=10) == 5

    def test_many_threads(self, cluster):
        counter = cluster.create(Counter, node=1)
        lock = cluster.create(Lock, node=1)
        threads = [cluster.fork(counter, "add", 1) for _ in range(10)]
        results = [t.join(timeout=10) for t in threads]
        assert counter.get() == 10
        assert len(results) == 10

    def test_join_reraises(self, cluster):
        counter = cluster.create(Counter, node=1)
        thread = cluster.fork(counter, "boom")
        with pytest.raises(ValueError, match="boom"):
            thread.join(timeout=10)


class TestSync:
    def test_lock_mutual_exclusion_across_nodes(self, cluster):
        lock = cluster.create(Lock, node=1)
        assert lock.try_acquire() is True
        assert lock.try_acquire() is False   # from this node, still held
        lock.release()
        assert lock.locked() is False

    def test_lock_release_while_free_rejected(self, cluster):
        lock = cluster.create(Lock, node=2)
        with pytest.raises(SynchronizationError):
            lock.release()

    def test_lock_serializes_critical_sections(self, cluster):
        lock = cluster.create(Lock, node=2)
        critical = cluster.create(Critical, lock, node=1)
        threads = [cluster.fork(critical, "run", 3) for _ in range(3)]
        for thread in threads:
            thread.join(timeout=20)
        runs, overlaps = critical.report()
        assert runs == 9
        assert overlaps == 0

    def test_barrier_across_nodes(self, cluster):
        barrier = cluster.create(Barrier, 3, node=0)
        arrivers = [cluster.create(Arriver, barrier, node=n)
                    for n in range(3)]
        threads = [cluster.fork(a, "arrive") for a in arrivers]
        results = [t.join(timeout=20) for t in threads]
        nodes = sorted(r[0] for r in results)
        serials = sorted(r[1] for r in results)
        assert nodes == [0, 1, 2]
        assert serials == [False, False, True]

    def test_rendezvous_queue_producer_consumer(self, cluster):
        channel = cluster.create(RendezvousQueue, 4, node=0)
        producer = cluster.create(Producer, channel, node=1)
        consumer = cluster.create(Consumer, channel, node=2)
        consumer_thread = cluster.fork(consumer, "consume", 8)
        producer_thread = cluster.fork(producer, "produce", 8)
        assert producer_thread.join(timeout=20) == 8
        assert consumer_thread.join(timeout=20) == list(range(8))
        assert channel.size() == 0

    def test_condvar_signal_before_wait_not_lost(self, cluster):
        cond = cluster.create(CondVar, node=1)
        cond.signal()
        cond.wait(timeout=5)   # consumes the banked signal


class TestClusterLifecycle:
    def test_single_node_cluster(self):
        with Cluster(nodes=1) as single:
            counter = single.create(Counter, 3)
            assert counter.add(4) == 7

    def test_shutdown_is_idempotent(self):
        c = Cluster(nodes=2)
        counter = c.create(Counter, node=1)
        assert counter.add(1) == 1
        c.shutdown()
        c.shutdown()

    def test_invalid_node_count(self):
        with pytest.raises(ClusterError):
            Cluster(nodes=0)

    def test_create_on_bad_node(self, cluster):
        with pytest.raises(ClusterError):
            cluster.create(Counter, node=42)
