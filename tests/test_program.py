"""Tests for the program harness: determinism, deadlock detection,
cluster configuration, and statistics plumbing."""

import pytest

from repro.core.costs import CostModel
from repro.errors import DeadlockError, SimulationError
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram, run_program
from repro.sim.syscalls import (
    Compute,
    Fork,
    Invoke,
    Join,
    MoveTo,
    New,
    Suspend,
)
from tests.helpers import Cell, run


class TestClusterConfig:
    def test_label(self):
        assert ClusterConfig(nodes=4, cpus_per_node=2).label() == "4Nx2P"

    def test_total_cpus(self):
        assert ClusterConfig(nodes=8, cpus_per_node=4).total_cpus == 32

    def test_invalid_rejected(self):
        with pytest.raises(SimulationError):
            ClusterConfig(nodes=0)
        with pytest.raises(SimulationError):
            ClusterConfig(nodes=1, cpus_per_node=0)


class TestHarness:
    def test_plain_function_main(self):
        def main(ctx):
            if False:
                yield None
            return "plain"

        assert run_program(main).value == "plain"

    def test_main_with_arguments(self):
        def main(ctx, a, b):
            if False:
                yield None
            return a + b

        assert run_program(main, 2, 3).value == 5

    def test_main_on_other_node(self):
        def main(ctx):
            if False:
                yield None
            return ctx.node

        program = AmberProgram(ClusterConfig(nodes=3))
        assert program.run(main, main_node=2).value == 2

    def test_elapsed_is_simulated_time(self):
        def main(ctx):
            yield Compute(123_456)

        result = run_program(main)
        # Startup overheads (main object create + thread start) add a
        # fixed prologue on top of the compute.
        assert result.elapsed_us >= 123_456
        assert result.elapsed_us < 130_000

    def test_determinism(self):
        """Two runs of the same program produce identical times and
        statistics — the simulator has no hidden nondeterminism."""
        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            workers = []
            for n in range(5):
                workers.append((yield Fork(cell, "add", n)))
            total = 0
            for worker in workers:
                total += yield Join(worker)
            return total

        first = run(main, nodes=2, cpus=2)
        second = run(main, nodes=2, cpus=2)
        assert first.value == second.value
        assert first.elapsed_us == second.elapsed_us
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_deadlock_detected_and_described(self):
        class Sleeper(SimObject):
            def sleep_forever(self, ctx):
                yield Suspend("never woken")

        def main(ctx):
            sleeper = yield New(Sleeper)
            worker = yield Fork(sleeper, "sleep_forever")
            yield Join(worker)

        with pytest.raises(DeadlockError) as excinfo:
            run(main)
        message = str(excinfo.value)
        assert "main" in message
        assert "blocked" in message

    def test_stranded_threads_reported(self):
        """Main can finish while daemon-ish threads stay blocked; they are
        reported rather than failing the run."""
        class Sleeper(SimObject):
            def sleep_forever(self, ctx):
                yield Suspend("never woken")

        def main(ctx):
            sleeper = yield New(Sleeper)
            yield Fork(sleeper, "sleep_forever")
            yield Compute(1_000)
            return "done"

        result = run(main)
        assert result.value == "done"
        assert len(result.stranded) == 1

    def test_cpu_utilization_accounting(self):
        def main(ctx):
            yield Compute(1_000_000)

        result = run_program(main, nodes=1, cpus_per_node=2)
        node0 = result.stats.node(0)
        # One CPU busy out of two for essentially the whole run.
        assert node0.utilization(result.elapsed_us) == \
            pytest.approx(0.5, rel=0.01)

    def test_custom_cost_model_respected(self):
        slow_wire = CostModel.firefly().replace(per_byte_us=8.0)

        def main(ctx):
            cell = yield New(Cell)
            yield MoveTo(cell, 1)
            t0 = ctx.now_us
            yield Invoke(cell, "get")
            return ctx.now_us - t0

        fast = AmberProgram(ClusterConfig(nodes=2)).run(main)
        slow = AmberProgram(ClusterConfig(nodes=2), slow_wire).run(main)
        assert slow.value > fast.value

    def test_region_exhaustion_surfaces(self):
        from repro.errors import AddressExhaustedError
        from repro.core import address_space

        def main(ctx):
            cells = []
            for _ in range(100):
                cells.append((yield New(Cell, size_bytes=1 << 19)))

        tiny = AmberProgram(ClusterConfig(nodes=1))
        program_cluster_limit = address_space.AddressSpaceServer(
            region_bytes=1 << 20, limit=address_space.HEAP_BASE + (1 << 22))
        # Patch a tiny address space in via a custom run.
        from repro.sim.cluster import SimCluster
        from repro.sim.kernel import AmberKernel
        cluster = SimCluster(ClusterConfig(nodes=1))
        cluster.address_server = program_cluster_limit
        for node in cluster.nodes:
            node.heap._server = program_cluster_limit
        kernel = AmberKernel(cluster)
        main_obj = kernel.create_object(
            __import__("repro.sim.program", fromlist=["_MainObject"])
            ._MainObject, (main, ()), {}, 0, None)
        thread = kernel.start_main(main_obj, "run", (), 0)
        cluster.sim.run()
        assert isinstance(thread.exception, AddressExhaustedError)
