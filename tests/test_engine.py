"""Tests for the discrete-event engine and the Ethernet model."""

import pytest

from repro.core.costs import CostModel
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import Ethernet


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_us(30, lambda: order.append("c"))
        sim.schedule_us(10, lambda: order.append("a"))
        sim.schedule_us(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule_us(10, lambda: order.append(1))
        sim.schedule_us(10, lambda: order.append(2))
        sim.schedule_us(10, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_us(12.5, lambda: seen.append(sim.now_us))
        sim.run()
        assert seen == [pytest.approx(12.5)]

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now_us)
            sim.schedule_us(5, lambda: times.append(sim.now_us))

        sim.schedule_us(10, first)
        sim.run()
        assert times == [pytest.approx(10), pytest.approx(15)]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_us(10, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.pending() == 0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_us(-1, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_us(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at_ns(5, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_us(10, lambda: fired.append(10))
        sim.schedule_us(100, lambda: fired.append(100))
        sim.run(until_us=50)
        assert fired == [10]
        sim.run()
        assert fired == [10, 100]

    def test_max_events_backstop(self):
        sim = Simulator(max_events=100)

        def loop():
            sim.schedule_us(1, loop)

        sim.schedule_us(1, loop)
        with pytest.raises(SimulationError):
            sim.run()

    def test_call_now_preserves_order(self):
        sim = Simulator()
        order = []
        sim.schedule_us(0, lambda: order.append("queued-first"))
        sim.call_now(lambda: order.append("called-second"))
        sim.run()
        assert order == ["queued-first", "called-second"]

    def test_integer_nanosecond_clock(self):
        sim = Simulator()
        sim.schedule_us(0.0001, lambda: None)  # rounds to 0.1ns -> 0ns
        sim.run()
        assert sim.now_ns == 0


class TestEthernet:
    def make(self, contended=True):
        sim = Simulator()
        net = Ethernet(sim, CostModel.firefly(), contended=contended)
        return sim, net

    def test_uncontended_delivery_time(self):
        sim, net = self.make()
        times = []
        net.send(0, 1, 1000, lambda: times.append(sim.now_us))
        sim.run()
        # 1000 bytes * 0.8 us/B + 800 us latency.
        assert times == [pytest.approx(1600)]

    def test_transmissions_serialize_on_shared_medium(self):
        """Two simultaneous sends: the second queues behind the first's
        transmission time; the fixed latency overlaps."""
        sim, net = self.make()
        times = {}
        net.send(0, 1, 1000, lambda: times.setdefault("a", sim.now_us))
        net.send(2, 3, 1000, lambda: times.setdefault("b", sim.now_us))
        sim.run()
        assert times["a"] == pytest.approx(1600)
        assert times["b"] == pytest.approx(2400)   # +800 of queueing

    def test_uncontended_mode_is_point_to_point(self):
        sim, net = self.make(contended=False)
        times = []
        net.send(0, 1, 1000, lambda: times.append(sim.now_us))
        net.send(2, 3, 1000, lambda: times.append(sim.now_us))
        sim.run()
        assert times == [pytest.approx(1600), pytest.approx(1600)]

    def test_stats_accumulate(self):
        sim, net = self.make()
        net.send(0, 1, 1000, lambda: None)
        net.send(1, 0, 500, lambda: None)
        sim.run()
        assert net.stats.messages == 2
        assert net.stats.bytes == 1500
        assert net.stats.busy_us == pytest.approx(1200)
        assert net.stats.queueing_us == pytest.approx(800)

    def test_utilization(self):
        sim, net = self.make()
        net.send(0, 1, 1000, lambda: None)
        sim.run()
        assert net.stats.utilization(8000) == pytest.approx(0.1)

    def test_wire_frees_up_over_time(self):
        sim, net = self.make()
        times = []
        net.send(0, 1, 1000, lambda: times.append(sim.now_us))
        sim.run()
        # Much later, the wire is idle again: no queueing.
        sim.schedule_us(10_000 - sim.now_us, lambda: net.send(
            0, 1, 1000, lambda: times.append(sim.now_us)))
        sim.run()
        assert times[1] == pytest.approx(11_600)
