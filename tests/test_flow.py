"""AmberFlow: static model extraction, placement-hint derivation,
AMB201-AMB205 diagnostics, and artifact determinism."""

import json
from pathlib import Path

import pytest

from repro.analyze.flow import (
    FLOW_RULES,
    Hint,
    PlacementHints,
    derive_hints,
    flow_diagnostics,
    load_hints,
    scan_paths,
    scan_sources,
)
from repro.analyze.flow.fixtures import EXPECTED_RULES, FLOW_FIXTURES

REPO = Path(__file__).resolve().parent.parent
APPS = str(REPO / "src" / "repro" / "apps")


def model_of(source):
    return scan_sources([("case.py", source)])


POOLED = """
class Pool:
    def __init__(self):
        self.jobs = []

    def take(self, ctx):
        yield Charge(1.0)
        return self.jobs.pop()

class Worker:
    def __init__(self, pool: Pool):
        self.pool = pool

    def run(self, ctx):
        for _ in range(16):
            job = yield Invoke(self.pool, "take")

def main(ctx):
    pool = yield New(Pool)
    for node in range(4):
        worker = yield New(Worker, pool, on_node=node)
        yield Fork(worker, "run")
"""


class TestFlowModel:
    def test_receiver_class_and_loop_weight(self):
        model = model_of(POOLED)
        site = next(s for s in model.invokes if s.method == "take")
        assert site.receiver_class == "Pool"
        assert site.caller_class == "Worker"
        assert site.loop_depth == 1
        assert site.weight == 16

    def test_fork_targets_and_spread_classes(self):
        model = model_of(POOLED)
        assert model.fork_target_classes() == {"Worker"}
        assert model.spread_classes() == {"Worker"}
        assert ("Worker", "run") in model.thread_roots()

    def test_class_model_reads_writes(self):
        model = model_of(POOLED)
        pool = model.classes["Pool"]
        assert "take" in [m.name for m in pool.writer_methods()]
        assert not pool.read_only
        worker = model.classes["Worker"]
        assert worker.read_only

    def test_set_immutable_marks_class(self):
        model = model_of("""
class Table:
    def get(self, ctx, key):
        yield Charge(1.0)

def main(ctx):
    table = yield New(Table)
    yield SetImmutable(table)
""")
        assert model.immutable_classes == {"Table"}

    def test_subscripted_field_receiver_resolves(self):
        model = model_of("""
class Section:
    def __init__(self):
        self.neighbors: List[Optional["Section"]] = [None, None]

    def edger(self, ctx, side):
        neighbor = self.neighbors[side]
        yield Invoke(neighbor, "put_edge", side)
""")
        site = next(s for s in model.invokes
                    if s.method == "put_edge")
        assert site.receiver_class == "Section"

    def test_syntax_error_is_recorded_not_raised(self):
        model = scan_sources([("broken.py", "def oops(:\n")])
        assert "broken.py" in model.errors


class TestHints:
    def test_bundled_apps_derivation(self):
        hints = derive_hints(scan_paths([APPS]))
        assert hints.kind_of("QueensWorker") == "spread"
        assert hints.spread_strategy("SorSection") == "block"
        assert "MatrixB" in hints.replicate_classes()
        assert hints.kind_of("WorkPool") == "hub"
        assert hints.kind_of("SorMaster") == "hub"

    def test_artifact_is_deterministic(self):
        first = derive_hints(scan_paths([APPS]))
        second = derive_hints(scan_paths([APPS]))
        assert first.to_json() == second.to_json()
        assert first.fingerprint == second.fingerprint

    def test_move_hint_for_single_foreign_caller(self):
        hints = derive_hints(model_of("""
class Ledger:
    def __init__(self):
        self.rows = []

    def add(self, ctx, row):
        yield Charge(1.0)
        self.rows.append(row)

class Agent:
    def __init__(self, ledger: Ledger):
        self.ledger = ledger

    def run(self, ctx):
        yield Invoke(self.ledger, "add", 1)

def main(ctx):
    ledger = yield New(Ledger)
    agent = yield New(Agent, ledger)
    yield Fork(agent, "run")
"""))
        hint = hints.for_class("Ledger")[0]
        assert hint.kind == "move"
        assert hint.with_cls == "Agent"

    def test_roundtrip_through_json(self, tmp_path):
        hints = derive_hints(scan_paths([APPS]))
        path = tmp_path / "hints.json"
        path.write_text(hints.to_json())
        loaded = load_hints(str(path))
        assert loaded.valid
        assert loaded.fingerprint == hints.fingerprint

    def test_load_hints_never_raises(self, tmp_path):
        missing = load_hints(str(tmp_path / "nope.json"))
        assert not missing.valid
        garbled = tmp_path / "bad.json"
        garbled.write_text("{not json")
        assert not load_hints(str(garbled)).valid
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"schema": "amberflow-hints/0",
                                     "hints": []}))
        assert not load_hints(str(stale)).valid


class TestDiagnostics:
    @pytest.mark.parametrize("name", sorted(FLOW_FIXTURES))
    def test_fixture_fires_expected_rules(self, name):
        source = FLOW_FIXTURES[name]
        path = f"<fixture:{name}>"
        model = scan_sources([(path, source)])
        findings = flow_diagnostics(model, {path: source})
        assert {f.rule for f in findings} == set(EXPECTED_RULES[name])

    def test_rules_catalogue(self):
        assert set(FLOW_RULES) == {"AMB201", "AMB202", "AMB203",
                                   "AMB204", "AMB205"}

    def test_findings_are_sorted_and_deduplicated(self):
        source = FLOW_FIXTURES["amb201"]
        path = "<fixture:amb201>"
        model = scan_sources([(path, source)])
        findings = flow_diagnostics(model, {path: source})
        keys = [(f.path, f.line, f.rule) for f in findings]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_immutable_receiver_suppresses_amb201(self):
        model = model_of(FLOW_FIXTURES["amb201-clean"])
        assert flow_diagnostics(model, None) == []


class TestArtifactSchema:
    def test_as_dict_roundtrip(self):
        hints = PlacementHints(
            schema="amberflow-hints/1", sources=["a.py"],
            hints=[Hint(kind="replicate", cls="Table",
                        evidence="read-mostly")])
        again = PlacementHints.from_dict(hints.as_dict())
        assert again.to_json() == hints.to_json()
