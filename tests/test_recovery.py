"""Crash recovery: failure detection, checkpoint/promotion, orphan
resurrection with at-most-once semantics, and the live runtime's
heartbeat detector.  See docs/RECOVERY.md for the guarantees under test.
"""

import time

import numpy as np
import pytest

from repro.errors import NodeFailure, SimulationError
from repro.faults import FaultPlan, NodeCrash
from repro.recovery import (
    DEFAULT_PEER_TIMEOUT_S,
    PEER_TIMEOUT_ENV,
    RecoveryConfig,
    heartbeat_grace_s,
    peer_timeout_s,
    reply_timeout_s,
)
from repro.recovery.checkpoint import (
    KERNEL_FIELDS,
    CheckpointManager,
    restore_state,
    snapshot_state,
)
from repro.sim import (
    AmberProgram,
    ClusterConfig,
    Fork,
    Invoke,
    Join,
    New,
    Sleep,
)
from repro.sim.objects import SimObject
from repro.sim.sync import Barrier, CondVar, Lock, Monitor
from repro.sim.syscalls import Compute
from repro.sim.thread import SimThread
from tests.helpers import Cell

RECOVERY = RecoveryConfig()


def run_recovering(main_fn, *args, nodes=3, cpus=2, faults=None,
                   recovery=RECOVERY):
    program = AmberProgram(
        ClusterConfig(nodes=nodes, cpus_per_node=cpus),
        faults=faults, recovery=recovery)
    return program.run(main_fn, *args)


def permanent_crash(node, at_us, seed=0):
    return FaultPlan(seed=seed,
                     crashes=(NodeCrash(node=node, at_us=at_us),))


# ---------------------------------------------------------------------------
# The REPRO_PEER_TIMEOUT_S knob and RecoveryConfig validation
# ---------------------------------------------------------------------------


class TestPeerTimeoutKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(PEER_TIMEOUT_ENV, raising=False)
        assert peer_timeout_s() == DEFAULT_PEER_TIMEOUT_S

    def test_override_scales_every_derived_budget(self, monkeypatch):
        monkeypatch.setenv(PEER_TIMEOUT_ENV, "10")
        assert peer_timeout_s() == 10.0
        assert reply_timeout_s() == 40.0
        assert heartbeat_grace_s() == 1.0

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(PEER_TIMEOUT_ENV, "soon")
        with pytest.raises(SimulationError):
            peer_timeout_s()

    def test_nonpositive_raises(self, monkeypatch):
        monkeypatch.setenv(PEER_TIMEOUT_ENV, "0")
        with pytest.raises(SimulationError):
            peer_timeout_s()


class TestRecoveryConfigValidation:
    def test_confirm_defaults_to_twice_grace(self):
        config = RecoveryConfig(grace_us=5_000.0)
        assert config.confirm_us == 10_000.0

    def test_grace_shorter_than_heartbeat_interval_raises(self):
        with pytest.raises(SimulationError):
            RecoveryConfig(heartbeat_interval_us=1_000.0, grace_us=500.0)

    def test_confirm_before_grace_raises(self):
        with pytest.raises(SimulationError):
            RecoveryConfig(grace_us=8_000.0, confirm_us=4_000.0)

    def test_bad_backup_placement_raises(self):
        with pytest.raises(SimulationError):
            RecoveryConfig(backup_placement="moon")

    def test_negative_checkpoint_interval_raises(self):
        with pytest.raises(SimulationError):
            RecoveryConfig(checkpoint_interval_us=-1.0)


# ---------------------------------------------------------------------------
# Snapshot / restore units
# ---------------------------------------------------------------------------


class _Stateful(SimObject):
    def __init__(self):
        self.items = [1, 2, 3]
        self.table = {"k": [4, 5]}
        self.grid = np.arange(6, dtype=np.float32)
        self.peer = None
        self.owner = None


class TestSnapshotRestore:
    def _thread(self, tid=1):
        return SimThread(tid)

    def test_snapshot_is_a_structural_copy(self):
        obj = _Stateful()
        state = snapshot_state(obj)
        obj.items.append(99)
        obj.table["k"].append(99)
        obj.grid[0] = 99.0
        assert state["items"] == [1, 2, 3]
        assert state["table"] == {"k": [4, 5]}
        assert state["grid"][0] == 0.0

    def test_object_references_kept_by_identity(self):
        obj = _Stateful()
        obj.peer = _Stateful()
        state = snapshot_state(obj)
        assert state["peer"] is obj.peer

    def test_kernel_fields_never_snapshot(self):
        obj = _Stateful()
        obj._vaddr = 0x1000
        obj._home_node = 2
        state = snapshot_state(obj)
        assert not (set(state) & KERNEL_FIELDS)

    def test_restore_overwrites_state_but_not_identity(self):
        obj = _Stateful()
        obj._vaddr = 0x1000
        state = snapshot_state(obj)
        obj.items = ["mutated"]
        obj.extra = "junk"
        restore_state(obj, state)
        assert obj.items == [1, 2, 3]
        assert not hasattr(obj, "extra")
        assert obj._vaddr == 0x1000  # placement survives promotion

    def test_restore_purges_thread_refs_in_containers_only(self):
        """A promoted lock must not point at waiters being resurrected
        elsewhere, but a live owner (direct attribute) still holds it."""
        obj = _Stateful()
        owner, waiter = self._thread(1), self._thread(2)
        obj.owner = owner
        obj.items = [waiter, "data"]
        obj.table = {"w": waiter, "d": "data"}
        state = snapshot_state(obj)
        restore_state(obj, state)
        assert obj.owner is owner
        assert obj.items == ["data"]
        assert obj.table == {"d": "data"}

    def test_stored_snapshot_survives_restore(self):
        """The backup copy can be promoted twice (second crash)."""
        obj = _Stateful()
        state = snapshot_state(obj)
        restore_state(obj, state)
        obj.items.append("post-promotion")
        assert state["items"] == [1, 2, 3]


# ---------------------------------------------------------------------------
# CheckpointManager units (placement, epochs, stores)
# ---------------------------------------------------------------------------


class _FakeNode:
    def __init__(self, node_id):
        self.id = node_id
        self.down = False


class _FakeCluster:
    def __init__(self, nnodes, homes=None):
        self.nodes = [_FakeNode(i) for i in range(nnodes)]
        self._homes = homes or {}

    def home_node(self, vaddr):
        return self._homes.get(vaddr, 0)


class TestCheckpointManager:
    def _manager(self, nnodes=3, homes=None, placement="home"):
        return CheckpointManager(
            _FakeCluster(nnodes, homes),
            RecoveryConfig(backup_placement=placement))

    def test_epochs_are_monotonic_per_vaddr(self):
        manager = self._manager()
        assert [manager.next_epoch(7), manager.next_epoch(7),
                manager.next_epoch(8)] == [1, 2, 1]

    def test_store_rejects_stale_epochs(self):
        manager = self._manager()
        assert manager.store(2, 7, epoch=2, state={"v": 2})
        assert not manager.store(2, 7, epoch=1, state={"v": 1})
        assert manager.latest(7) == (2, 2, {"v": 2})

    def test_latest_skips_down_nodes(self):
        manager = self._manager()
        manager.store(1, 7, epoch=5, state={"v": 5})
        manager.store(2, 7, epoch=3, state={"v": 3})
        manager.cluster.nodes[1].down = True
        assert manager.latest(7) == (2, 3, {"v": 3})
        manager.cluster.nodes[2].down = True
        assert manager.latest(7) is None

    def test_home_placement_prefers_home_when_away(self):
        manager = self._manager(homes={7: 2})
        assert manager.backup_node(7, primary=1) == 2

    def test_home_placement_falls_to_ring_at_home(self):
        """Resident at home: the backup must still be another node."""
        manager = self._manager(homes={7: 1})
        backup = manager.backup_node(7, primary=1)
        assert backup != 1

    def test_backup_never_lands_on_a_down_node(self):
        manager = self._manager(homes={7: 2})
        manager.cluster.nodes[2].down = True
        backup = manager.backup_node(7, primary=1)
        assert backup not in (1, 2)

    def test_single_node_cluster_has_no_backup(self):
        manager = self._manager(nnodes=1)
        assert manager.backup_node(7, primary=0) == 0


# ---------------------------------------------------------------------------
# Simulated failure detection
# ---------------------------------------------------------------------------


class TestSimDetection:
    def _idle_main(self, ctx):
        yield Sleep(100_000.0)
        return "done"

    def test_crash_is_suspected_then_confirmed(self):
        plan = permanent_crash(node=1, at_us=10_000.0)
        result = run_recovering(self._idle_main, faults=plan)
        metrics = result.metrics
        assert metrics.counter("heartbeats_sent").value > 0
        assert metrics.counter("node_suspected").value >= 1
        assert metrics.counter("node_confirmed_dead").value == 1
        latency = metrics.histogram("detection_latency_us").summary()
        assert latency["count"] >= 1
        # Confirmation cannot beat the confirm window.
        assert latency["max"] >= RECOVERY.confirm_us

    def test_restarted_node_rejoins(self):
        plan = FaultPlan(seed=0, crashes=(
            NodeCrash(node=1, at_us=10_000.0, restart_us=50_000.0),))
        result = run_recovering(self._idle_main, faults=plan)
        metrics = result.metrics
        assert metrics.counter("node_confirmed_dead").value == 1
        assert metrics.counter("node_rejoined").value >= 1

    def test_detection_is_deterministic(self):
        plan = permanent_crash(node=1, at_us=10_000.0)
        first = run_recovering(self._idle_main, faults=plan)
        second = run_recovering(self._idle_main, faults=plan)
        assert first.elapsed_us == second.elapsed_us
        for name in ("heartbeats_sent", "node_suspected",
                     "node_confirmed_dead"):
            assert (first.metrics.counter(name).value
                    == second.metrics.counter(name).value)

    def test_no_recovery_config_means_no_heartbeats(self):
        """Recovery is opt-in: without a config the run is untouched."""
        result = run_recovering(self._idle_main, recovery=None)
        assert result.metrics.counter("heartbeats_sent").value == 0


# ---------------------------------------------------------------------------
# Threads blocked in synchronization objects on a dying node
# ---------------------------------------------------------------------------


class LockWorker(SimObject):
    SIZE_BYTES = 128

    def __init__(self, lock):
        self.lock = lock
        self.entries = 0

    def work(self, ctx, rounds, hold_us):
        for _ in range(rounds):
            yield Invoke(self.lock, "acquire")
            yield Compute(hold_us)
            self.entries += 1
            yield Invoke(self.lock, "release")
        return self.entries


class BarrierWorker(SimObject):
    SIZE_BYTES = 128

    def __init__(self, barrier):
        self.barrier = barrier
        self.cycles = 0

    def work(self, ctx, cycles, step_us):
        for _ in range(cycles):
            yield Compute(step_us)
            yield Invoke(self.barrier, "wait")
            self.cycles += 1
        return self.cycles


class CondWaiter(SimObject):
    SIZE_BYTES = 128

    def __init__(self, monitor, cond):
        self.monitor = monitor
        self.cond = cond

    def wait_for_go(self, ctx):
        yield Invoke(self.monitor, "enter")
        yield Invoke(self.cond, "wait")
        yield Invoke(self.monitor, "exit")
        return "woken"

    def go(self, ctx, delay_us):
        yield Sleep(delay_us)
        yield Invoke(self.monitor, "enter")
        yield Invoke(self.cond, "signal")
        yield Invoke(self.monitor, "exit")
        return "signalled"


class TestSyncRecovery:
    """The ISSUE's acceptance bar: a thread blocked in Lock.acquire /
    Barrier.wait / CondVar.wait whose sync object's node dies must
    either complete against the promoted backup or fail with a typed
    NodeFailure — never hang (a hang would be a DeadlockError here)."""

    def test_lock_on_dead_node_recovers(self):
        def main(ctx):
            lock = yield New(Lock, on_node=1)
            workers, threads = [], []
            for i in range(3):
                worker = yield New(LockWorker, lock, on_node=2)
                workers.append(worker)
            for worker in workers:
                threads.append((yield Fork(worker, "work", 6, 3_000.0)))
            total = 0
            for thread in threads:
                total += yield Join(thread)
            return total

        result = run_recovering(main,
                                faults=permanent_crash(1, 12_000.0))
        assert result.value == 18
        metrics = result.metrics
        assert metrics.counter("node_confirmed_dead").value == 1
        assert metrics.counter("objects_recovered").value >= 1
        assert metrics.counter("threads_lost").value == 0

    def test_barrier_on_dead_node_recovers(self):
        def main(ctx):
            barrier = yield New(Barrier, 3, on_node=1)
            threads = []
            for node in (0, 2, 2):
                worker = yield New(BarrierWorker, barrier, on_node=node)
                threads.append((yield Fork(worker, "work", 5, 4_000.0)))
            total = 0
            for thread in threads:
                total += yield Join(thread)
            return total

        result = run_recovering(main,
                                faults=permanent_crash(1, 15_000.0))
        assert result.value == 15
        assert result.metrics.counter("objects_recovered").value >= 1
        assert result.metrics.counter("threads_lost").value == 0

    def test_condvar_waiter_survives_monitor_node_death(self):
        """The waiter is parked at Suspend("condvar") on node 1 when it
        dies.  Resurrection replays CondVar.wait against the promoted
        pair; the monitor's newest durable epoch is the waiter's own
        enter write-through (held, owner preserved by identity), so the
        re-run holds() check passes.  The sweep is disabled so no later
        quiescent epoch can supersede it (see docs/RECOVERY.md)."""
        def main(ctx):
            monitor = yield New(Monitor, on_node=1)
            cond = yield New(CondVar, monitor, on_node=1)
            pair = yield New(CondWaiter, monitor, cond, on_node=2)
            waiter = yield Fork(pair, "wait_for_go")
            signaler = yield Fork(pair, "go", 80_000.0)
            woken = yield Join(waiter)
            signalled = yield Join(signaler)
            return (woken, signalled)

        recovery = RecoveryConfig(checkpoint_interval_us=0.0)
        result = run_recovering(main, recovery=recovery,
                                faults=permanent_crash(1, 20_000.0))
        assert result.value == ("woken", "signalled")
        assert result.metrics.counter("objects_recovered").value >= 2
        assert result.metrics.counter("threads_lost").value == 0


# ---------------------------------------------------------------------------
# At-most-once resurrection semantics
# ---------------------------------------------------------------------------


class Pounder(SimObject):
    SIZE_BYTES = 128

    def __init__(self, cell):
        self.cell = cell

    def pound(self, ctx, rounds, think_us):
        total = 0
        for _ in range(rounds):
            total = yield Invoke(self.cell, "add", 1)
            yield Compute(think_us)
        return total


class Inner(SimObject):
    SIZE_BYTES = 128

    def __init__(self):
        self.count = 0

    def bump(self, ctx):
        yield Compute(500.0)
        self.count += 1
        return self.count

    def get(self, ctx):
        if False:
            yield None
        return self.count


class Outer(SimObject):
    SIZE_BYTES = 128

    def __init__(self, inner):
        self.inner = inner

    def call_through(self, ctx, linger_us):
        value = yield Invoke(self.inner, "bump")
        yield Compute(linger_us)  # the crash lands in this window
        return value


class TestAtMostOnce:
    def test_mutations_on_recovered_object_apply_exactly_once(self):
        """Every add either completed before the epoch that survived
        (logged, replay suppressed) or rolled back *with* its result
        (replayed cleanly): the final count is exact, not approximate."""
        def main(ctx):
            cell = yield New(Cell, 0, on_node=1)
            pounder = yield New(Pounder, cell, on_node=2)
            thread = yield Fork(pounder, "pound", 40, 1_000.0)
            return (yield Join(thread))

        result = run_recovering(main,
                                faults=permanent_crash(1, 20_000.0))
        assert result.value == 40
        metrics = result.metrics
        assert metrics.counter("objects_recovered").value >= 1
        assert metrics.counter("invocations_replayed").value >= 1

    def test_nested_invocation_is_not_double_applied(self):
        """The thread dies on node 1 *after* its nested bump completed
        on live node 2.  The replayed outer call re-issues the bump from
        the promoted object's node — a different caller node than the
        original departure — and the regenerated id must still hit the
        completion log on Inner: the count stays 1."""
        def main(ctx):
            inner = yield New(Inner, on_node=2)
            outer = yield New(Outer, inner, on_node=1)
            thread = yield Fork(outer, "call_through", 80_000.0)
            value = yield Join(thread)
            count = yield Invoke(inner, "get")
            return (value, count)

        result = run_recovering(main,
                                faults=permanent_crash(1, 20_000.0))
        assert result.value == (1, 1)
        metrics = result.metrics
        assert metrics.counter("invocations_replayed").value >= 1
        assert metrics.counter("invocations_suppressed").value >= 1


# ---------------------------------------------------------------------------
# Unrecoverable loss is a typed error, never a hang
# ---------------------------------------------------------------------------


class TestUnrecoverable:
    def _main(self, ctx):
        cell = yield New(Cell, 0, on_node=1)
        pounder = yield New(Pounder, cell, on_node=2)
        thread = yield Fork(pounder, "pound", 40, 1_000.0)
        return (yield Join(thread))

    def test_checkpointing_disabled_raises_node_failure(self):
        recovery = RecoveryConfig(checkpointing=False)
        with pytest.raises(NodeFailure):
            run_recovering(self._main, recovery=recovery,
                           faults=permanent_crash(1, 20_000.0))

    def test_same_run_with_checkpointing_completes(self):
        result = run_recovering(self._main,
                                faults=permanent_crash(1, 20_000.0))
        assert result.value == 40


# ---------------------------------------------------------------------------
# Property: recovered SOR equals the clean run, replays bit-identically
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def clean_sor():
    from repro.recovery.scenario import _sor_problem
    from repro.recovery.workloads import run_recovery_sor

    return run_recovery_sor(problem=_sor_problem(fast=True), nodes=3,
                            cpus_per_node=2)


class TestRecoveredSorProperty:
    @pytest.mark.parametrize("seed", range(5))
    def test_recovered_run_matches_clean_and_replays(self, seed,
                                                     clean_sor):
        from repro.recovery.scenario import _recover_plan
        from repro.recovery.workloads import run_recovery_sor

        plan = _recover_plan(seed, clean_sor.elapsed_us)
        runs = [
            run_recovery_sor(problem=clean_sor.problem, nodes=3,
                             cpus_per_node=2, faults=plan,
                             recovery=RecoveryConfig())
            for _ in range(2)
        ]
        for run in runs:
            assert np.array_equal(run.grid, clean_sor.grid)
            metrics = run.stats.metrics
            assert metrics.counter("objects_recovered").value >= 1
            assert metrics.counter("threads_lost").value == 0
        assert runs[0].elapsed_us == runs[1].elapsed_us
        assert runs[0].grid.tobytes() == runs[1].grid.tobytes()


# ---------------------------------------------------------------------------
# Live runtime: heartbeat detection through the coordinator
# ---------------------------------------------------------------------------


class TestLiveDetection:
    def test_killed_peer_is_suspected(self, monkeypatch):
        """Detection only in the live runtime: a killed node process is
        reported by failed_peers() within the grace window."""
        monkeypatch.setenv(PEER_TIMEOUT_ENV, "5")
        from repro.runtime.cluster import Cluster

        with Cluster(nodes=3) as cluster:
            victim = cluster._processes[1]  # node 1
            victim.terminate()
            victim.join(timeout=5)
            assert cluster._client.peer_failure_event.wait(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline \
                    and 1 not in cluster.failed_peers():
                time.sleep(0.05)
            assert 1 in cluster.failed_peers()
            assert 1 in cluster._coordinator.suspected_nodes()
            assert 2 not in cluster.failed_peers()
