"""Live-runtime tests for forwarding chains, path caching, and the
address-space coordinator."""

import time

import pytest

from repro.core.address_space import DEFAULT_REGION_BYTES
from repro.runtime import AmberObject, Cluster, current_node


class Token(AmberObject):
    def __init__(self, tag=0):
        self.tag = tag

    def ping(self):
        return (self.tag, current_node())


class Prober(AmberObject):
    def probe(self, target):
        return target.ping()


@pytest.fixture(scope="module")
def cluster():
    with Cluster(nodes=4) as c:
        yield c


class TestForwardingChains:
    def test_chain_walk_after_multiple_moves(self, cluster):
        token = cluster.create(Token, 1, node=1)
        token.ping()                    # node 0 learns nothing new
        cluster.move(token, 2)
        cluster.move(token, 3)
        # Node 0 believes node 1; 1 forwards to 2; 2 forwards to 3.
        assert token.ping() == (1, 3)

    def test_location_hints_shorten_later_requests(self, cluster):
        token = cluster.create(Token, 2, node=1)
        token.ping()
        cluster.move(token, 2)
        cluster.move(token, 3)
        forwards_before = (cluster.node_stats(1)["forwards"]
                           + cluster.node_stats(2)["forwards"])
        token.ping()                    # chases the chain, leaves hints
        _wait_for_hint(cluster)
        token.ping()                    # should go (nearly) direct now
        forwards_after = (cluster.node_stats(1)["forwards"]
                          + cluster.node_stats(2)["forwards"])
        chased = forwards_after - forwards_before
        # The first ping cost the chain; the second at most one hop.
        assert chased <= 3
        assert cluster.node_stats(0)["hints"] >= 1

    def test_uninitialized_descriptor_routes_via_home(self, cluster):
        # Created on node 2 (its home), moved away; node 3 has never
        # heard of it and must route via home.
        token = cluster.create(Token, 3, node=2)
        cluster.move(token, 0)
        prober = cluster.create(Prober, node=3)
        assert prober.probe(token) == (3, 0)


def _wait_for_hint(cluster, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cluster.node_stats(0)["hints"] >= 1:
            return
        time.sleep(0.02)


class TestAddressSpace:
    def test_vaddrs_unique_across_nodes(self, cluster):
        handles = [cluster.create(Token, i, node=i % 4)
                   for i in range(40)]
        vaddrs = [handle.vaddr for handle in handles]
        assert len(set(vaddrs)) == len(vaddrs)

    def test_region_exhaustion_grants_more(self):
        """A tiny region forces the heap to go back to the coordinator
        for more address space (the paper's extension mechanism)."""
        with Cluster(nodes=2, region_bytes=1024) as small:
            handles = [small.create(Token, i, node=1)
                       for i in range(40)]   # 40 * 64B > 1024B
            values = [handle.ping() for handle in handles]
            assert values == [(i, 1) for i in range(40)]
