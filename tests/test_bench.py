"""Tests for the benchmark harness itself: reporting, paper data, and the
cheap drivers (the heavy sweeps are exercised by benchmarks/)."""

import pytest

from repro.bench import paper_data
from repro.bench.figure1 import run_figure1
from repro.bench.figure2 import FIGURE2_CONFIGS
from repro.bench.figure3 import FIGURE3_GRIDS, PAPER_GRID
from repro.bench.reporting import render_series, render_table
from repro.bench.table1 import run_table1


class TestReporting:
    def test_render_table_aligns_columns(self):
        out = render_table(["Name", "Value"],
                           [("alpha", 1.0), ("b", 123456.789)],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # All rows the same width structure.
        assert lines[3].startswith("alpha")
        assert "123,457" in lines[4]

    def test_render_table_empty_rows(self):
        out = render_table(["A"], [])
        assert "A" in out

    def test_render_series_bars_scale(self):
        out = render_series([("x", 1.0), ("y", 2.0)], "k", "v")
        lines = out.splitlines()          # [header, row x, row y]
        bar_x = lines[1].count("#")
        bar_y = lines[2].count("#")
        assert bar_y == 2 * bar_x

    def test_render_series_zero_safe(self):
        out = render_series([("x", 0.0)], "k", "v")
        assert "x" in out

    def test_float_formatting(self):
        out = render_table(["v"], [(0.00123,), (12.3456,), (9999.5,)])
        assert "0.001" in out
        assert "12.35" in out
        assert "9,999" in out or "9,999.5" in out or "10,000" in out


class TestPaperData:
    def test_table1_complete(self):
        assert set(paper_data.PAPER_TABLE1_MS) == {
            "object create", "local invoke/return",
            "remote invoke/return", "object move", "thread start/join"}

    def test_figure2_has_headline(self):
        assert paper_data.PAPER_FIGURE2_SPEEDUPS["8Nx4P"] == 25.0

    def test_figure2_covers_every_config(self):
        labels = {f"{n}Nx{c}P" for n, c in FIGURE2_CONFIGS}
        assert labels <= set(paper_data.PAPER_FIGURE2_SPEEDUPS)

    def test_figure3_paper_grid_in_sweep(self):
        assert PAPER_GRID in FIGURE3_GRIDS
        assert 122 * 842 in paper_data.PAPER_FIGURE3_POINTS


class TestDrivers:
    def test_table1_rows(self):
        rows = run_table1()
        assert len(rows) == 5
        for row in rows:
            assert row.measured_ms == pytest.approx(row.paper_ms, rel=0.01)
            assert row.ratio == pytest.approx(1.0, rel=0.01)

    def test_figure1_structure(self):
        structure = run_figure1(sections=3, nodes=3)
        assert len(structure.sections) == 3
        assert structure.total_threads == sum(
            s.workers + s.edge_threads + s.convergers
            for s in structure.sections)
        text = structure.describe()
        assert "master object @ node 0" in text
        assert "section 2 @ node 2" in text
