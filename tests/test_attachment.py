"""Tests for attachment groups (paper section 2.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attachment import AttachmentGraph
from repro.errors import AttachmentError


class TestAttachmentGraph:
    def test_singleton_group(self):
        graph = AttachmentGraph()
        assert graph.group(1) == [1]
        assert not graph.is_attached(1)

    def test_attach_makes_one_group(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        assert set(graph.group(1)) == {1, 2}
        assert set(graph.group(2)) == {1, 2}

    def test_group_is_transitive_closure(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        graph.attach(3, 2)
        graph.attach(4, 3)
        for member in (1, 2, 3, 4):
            assert set(graph.group(member)) == {1, 2, 3, 4}

    def test_group_starts_with_queried_object(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        assert graph.group(2)[0] == 2

    def test_self_attach_rejected(self):
        graph = AttachmentGraph()
        with pytest.raises(AttachmentError):
            graph.attach(1, 1)

    def test_attach_is_idempotent(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        graph.attach(1, 2)
        graph.unattach(1)
        assert graph.group(1) == [1]

    def test_unattach_severs_only_own_edges(self):
        """Unattach(a) severs a's outgoing attachments, not edges others
        made to a."""
        graph = AttachmentGraph()
        graph.attach(1, 2)
        graph.attach(3, 1)
        graph.unattach(1)
        assert set(graph.group(1)) == {1, 3}   # 3 -> 1 survives
        assert graph.group(2) == [2]

    def test_unattach_unattached_rejected(self):
        graph = AttachmentGraph()
        with pytest.raises(AttachmentError):
            graph.unattach(9)

    def test_is_attached_directional(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        assert graph.is_attached(1)
        assert not graph.is_attached(2)   # 2 made no attachment

    def test_attachments_of(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        graph.attach(1, 3)
        assert graph.attachments_of(1) == {2, 3}
        assert graph.attachments_of(2) == set()

    def test_drop_removes_all_edges(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        graph.attach(3, 1)
        graph.drop(1)
        assert graph.group(2) == [2]
        assert graph.group(3) == [3]
        assert graph.members() == set()

    def test_members(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        graph.attach(4, 5)
        assert graph.members() == {1, 2, 4, 5}

    def test_mutual_attachment_allowed(self):
        graph = AttachmentGraph()
        graph.attach(1, 2)
        graph.attach(2, 1)
        assert set(graph.group(1)) == {1, 2}
        graph.unattach(1)
        # 2 -> 1 still holds them together.
        assert set(graph.group(1)) == {1, 2}
        graph.unattach(2)
        assert graph.group(1) == [1]


@settings(max_examples=80, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["attach", "unattach"]),
              st.integers(min_value=0, max_value=9),
              st.integers(min_value=0, max_value=9)),
    max_size=40,
))
def test_groups_partition_objects(ops):
    """Property: group() induces a partition — symmetric and transitive —
    after any sequence of attach/unattach operations."""
    graph = AttachmentGraph()
    for op, a, b in ops:
        try:
            if op == "attach":
                graph.attach(a, b)
            else:
                graph.unattach(a)
        except AttachmentError:
            pass
    for x in range(10):
        group_x = graph.group(x)
        assert x in group_x
        assert len(group_x) == len(set(group_x))
        for y in group_x:
            assert set(graph.group(y)) == set(group_x)
