"""Tests for forwarding-chain resolution (paper section 3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.descriptor import DescriptorTable
from repro.core.forwarding import compress_path, resolve
from repro.errors import ObjectNotFoundError

OBJ = 0x4000


def make_tables(n):
    return {node: DescriptorTable(node) for node in range(n)}


class TestResolve:
    def test_resident_locally_is_zero_hops(self):
        tables = make_tables(2)
        tables[0].set_resident(OBJ)
        route = resolve(OBJ, 0, tables, home_node=lambda a: 0)
        assert route.hops == 0
        assert route.destination == 0

    def test_follow_single_forward(self):
        tables = make_tables(3)
        tables[0].set_forwarding(OBJ, 2)
        tables[2].set_resident(OBJ)
        route = resolve(OBJ, 0, tables, home_node=lambda a: 0)
        assert route.path == [0, 2]
        assert route.hops == 1
        assert not route.via_home

    def test_follow_chain_of_moves(self):
        """Object created on 0, moved 0->1->2->3: a request from node 0
        walks the whole chain."""
        tables = make_tables(4)
        tables[0].set_forwarding(OBJ, 1)
        tables[1].set_forwarding(OBJ, 2)
        tables[2].set_forwarding(OBJ, 3)
        tables[3].set_resident(OBJ)
        route = resolve(OBJ, 0, tables, home_node=lambda a: 0)
        assert route.path == [0, 1, 2, 3]

    def test_uninitialized_descriptor_routes_via_home(self):
        """A node that has never seen the object asks the home node,
        derived from the address (section 3.3)."""
        tables = make_tables(3)
        tables[1].set_resident(OBJ)   # created on 1 (its home), still there
        route = resolve(OBJ, 2, tables, home_node=lambda a: 1)
        assert route.via_home
        assert route.path == [2, 1]

    def test_home_then_chain(self):
        tables = make_tables(4)
        tables[1].set_forwarding(OBJ, 3)   # home knows it left
        tables[3].set_resident(OBJ)
        route = resolve(OBJ, 0, tables, home_node=lambda a: 1)
        assert route.path == [0, 1, 3]
        assert route.via_home

    def test_unknown_at_home_raises(self):
        tables = make_tables(2)
        with pytest.raises(ObjectNotFoundError):
            resolve(OBJ, 0, tables, home_node=lambda a: 0)

    def test_cycle_detected(self):
        tables = make_tables(2)
        tables[0].set_forwarding(OBJ, 1)
        tables[1].set_forwarding(OBJ, 0)
        with pytest.raises(ObjectNotFoundError):
            resolve(OBJ, 0, tables, home_node=lambda a: 0)


class TestCompressPath:
    def test_caches_location_along_path(self):
        """"the object's last known location is cached on all nodes along
        the chain so that the object can be located quickly"."""
        tables = make_tables(4)
        tables[0].set_forwarding(OBJ, 1)
        tables[1].set_forwarding(OBJ, 2)
        tables[2].set_forwarding(OBJ, 3)
        tables[3].set_resident(OBJ)
        route = resolve(OBJ, 0, tables, home_node=lambda a: 0)
        compress_path(route, OBJ, tables)
        # Every node on the path now points straight at node 3.
        second = resolve(OBJ, 0, tables, home_node=lambda a: 0)
        assert second.path == [0, 3]
        assert resolve(OBJ, 1, tables, home_node=lambda a: 0).path == [1, 3]

    def test_compression_never_touches_destination(self):
        tables = make_tables(2)
        tables[0].set_forwarding(OBJ, 1)
        tables[1].set_resident(OBJ)
        route = resolve(OBJ, 0, tables, home_node=lambda a: 0)
        compress_path(route, OBJ, tables)
        assert tables[1].is_resident(OBJ)


@settings(max_examples=60, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=8),
    moves=st.lists(st.integers(min_value=0, max_value=7), max_size=12),
    start=st.integers(min_value=0, max_value=7),
)
def test_resolve_finds_object_after_any_move_sequence(n_nodes, moves, start):
    """Property: after any sequence of moves that maintains forwarding
    addresses the way the kernel does, resolve() from any node terminates
    at the object's true location."""
    tables = make_tables(n_nodes)
    home = 0
    location = home
    tables[home].set_resident(OBJ)
    for raw in moves:
        dest = raw % n_nodes
        if dest == location:
            continue
        tables[location].set_forwarding(OBJ, dest)
        tables[dest].set_resident(OBJ)
        location = dest
    route = resolve(OBJ, start % n_nodes, tables, home_node=lambda a: home)
    assert route.destination == location
    # And path compression keeps it correct while shortening it.
    compress_path(route, OBJ, tables)
    again = resolve(OBJ, start % n_nodes, tables, home_node=lambda a: home)
    assert again.destination == location
    assert again.hops <= max(route.hops, 1)
