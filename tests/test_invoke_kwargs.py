"""Keyword-argument support in simulated invocations (API parity with
the live runtime), plus a trace-driven look at the SOR program."""

import pytest

from repro.sim.objects import SimObject
from repro.sim.syscalls import (
    Attach,
    Charge,
    FastInvoke,
    Fork,
    Invoke,
    Join,
    MoveTo,
    New,
)
from tests.helpers import run_free


class Greeter(SimObject):
    def greet(self, ctx, who, punct="!", shout=False):
        yield Charge(1.0)
        text = f"hi {who}{punct}"
        return text.upper() if shout else text


class TestInvokeKwargs:
    def test_local_kwargs(self):
        def main(ctx):
            greeter = yield New(Greeter)
            return (yield Invoke(greeter, "greet", "bob", punct="?"))

        assert run_free(main).value == "hi bob?"

    def test_remote_kwargs_travel(self):
        def main(ctx):
            greeter = yield New(Greeter)
            yield MoveTo(greeter, 1)
            return (yield Invoke(greeter, "greet", "eve", shout=True))

        assert run_free(main).value == "HI EVE!"

    def test_defaults_still_apply(self):
        def main(ctx):
            greeter = yield New(Greeter)
            return (yield Invoke(greeter, "greet", "kim"))

        assert run_free(main).value == "hi kim!"

    def test_fast_invoke_kwargs(self):
        class Wrapper(SimObject):
            def __init__(self, greeter):
                self.greeter = greeter

            def relay(self, ctx):
                return (yield FastInvoke(self.greeter, "greet", "ann",
                                         punct="."))

        def main(ctx):
            greeter = yield New(Greeter)
            wrapper = yield New(Wrapper, greeter)
            yield Attach(greeter, wrapper)
            return (yield Invoke(wrapper, "relay"))

        assert run_free(main).value == "hi ann."

    def test_reserved_names_keep_their_meaning(self):
        """``arg_bytes``/``result_bytes`` are Invoke parameters, never
        forwarded to the operation."""
        class Echo(SimObject):
            def back(self, ctx, value):
                yield Charge(1.0)
                return value

        def main(ctx):
            echo = yield New(Echo)
            yield MoveTo(echo, 1)
            return (yield Invoke(echo, "back", 5, arg_bytes=100,
                                 result_bytes=100))

        assert run_free(main).value == 5


class TestSorTrace:
    def test_sor_migration_pattern_is_neighborly(self):
        """A traced SOR run shows the communication structure the paper
        describes: migrations connect each section's node to its
        neighbors and to the master's node — no all-to-all chatter."""
        from repro.apps.sor import SorProblem
        from repro.apps.sor.amber_sor import run_amber_sor
        from repro.sim.trace import Tracer, render_migration_matrix

        # run_amber_sor does not expose the tracer; trace via the
        # program harness instead by running a small custom setup.
        from repro.sim.cluster import ClusterConfig
        from repro.sim.program import AmberProgram
        tracer = Tracer()

        problem = SorProblem(rows=10, cols=30, iterations=3)

        from repro.apps.sor.amber_sor import SorMaster, SorSection, LEFT, RIGHT

        def main(ctx):
            master = yield New(SorMaster, 3, 0.0)
            sections = []
            for s in range(3):
                col_lo = problem.cols * s // 3
                col_hi = problem.cols * (s + 1) // 3
                sections.append((yield New(
                    SorSection, s, 3, problem, col_lo, col_hi - col_lo,
                    1, 10.0, True, on_node=s)))
            for s, section in enumerate(sections):
                left = sections[s - 1] if s > 0 else None
                right = sections[s + 1] if s < 2 else None
                yield Invoke(section, "configure", master, left, right)
            threads = []
            for s, section in enumerate(sections):
                threads.append((yield Fork(section, "worker", 0)))
                if s > 0:
                    threads.append((yield Fork(section, "edger", LEFT)))
                if s < 2:
                    threads.append((yield Fork(section, "edger", RIGHT)))
                threads.append((yield Fork(section, "converger")))
                threads.append((yield Fork(section, "run")))
            for thread in threads:
                yield Join(thread)

        program = AmberProgram(ClusterConfig(nodes=3, cpus_per_node=2))
        program.run(main, tracer=tracer)

        moves = tracer.migrations()
        assert moves, "expected thread migrations in a 3-node SOR"
        # Edge traffic only between adjacent sections: no 0<->2 edger
        # traffic except convergence reports to the master on node 0.
        pairs = {(src, dst) for _, src, dst in moves}
        assert (0, 1) in pairs or (1, 0) in pairs
        assert (1, 2) in pairs or (2, 1) in pairs
        matrix_text = render_migration_matrix(tracer, nodes=3)
        assert "src\\dst" in matrix_text
