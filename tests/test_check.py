"""AmberCheck model checking: choice recording, forced replay, DPOR
exploration, hidden-bug discovery, divergence detection, determinism,
and the ``repro check`` CLI."""

import json

import pytest

from repro.analyze.check import (
    ChoiceController,
    check_program,
    run_schedule,
    sample_random_schedules,
)
from repro.analyze.fixtures import (
    run_hidden_deadlock,
    run_hidden_race,
    run_racy_counter,
)
from repro.cli import main
from repro.obs.metrics import MetricsRegistry


def hidden_race():
    # Two decoys keep exploration to a handful of schedules.
    return run_hidden_race(seed=0, decoys=2)


def hidden_deadlock():
    return run_hidden_deadlock(seed=0, decoys=2)


class TestControllerAndReplay:
    def test_default_run_records_choice_points(self):
        outcome = run_schedule(hidden_race)
        assert outcome.status == "ok"
        assert not outcome.findings
        assert outcome.points           # picks/preempts were recorded
        assert all(choice == 0 for choice in outcome.choices)
        kinds = {point.kind for point in outcome.points}
        assert "pick" in kinds

    def test_forced_prefix_is_followed(self):
        baseline = run_schedule(hidden_race)
        flip = next(i for i, point in enumerate(baseline.points)
                    if len(point.options) > 1)
        forced = [0] * flip + [1]
        outcome = run_schedule(hidden_race, forced)
        assert not outcome.diverged
        assert list(outcome.choices[:flip + 1]) == forced

    def test_out_of_range_force_marks_divergence(self):
        outcome = run_schedule(hidden_race, [99])
        assert outcome.diverged

    def test_replay_is_bit_identical(self):
        report = check_program(hidden_race, name="race", budget=200)
        trace = report.findings[0].trace
        first = run_schedule(hidden_race, trace)
        second = run_schedule(hidden_race, trace)
        assert first.choices == second.choices
        assert first.status == second.status
        assert first.value_repr == second.value_repr
        assert first.signatures() == second.signatures()

    def test_witness_trims_trailing_defaults(self):
        outcome = run_schedule(hidden_race)
        assert outcome.witness() == []   # default run: nothing forced
        controller = ChoiceController([0, 1, 0, 0])
        assert controller is not None  # construction alone is valid


class TestHiddenBugs:
    def test_race_invisible_to_default_run_is_found(self):
        assert run_schedule(hidden_race).status == "ok"
        report = check_program(hidden_race, name="race", budget=200)
        assert report.exhausted
        assert any("AMBSAN-RACE" in sig for sig in report.signatures())
        finding = next(f for f in report.findings
                       if "AMBSAN-RACE" in f.signature)
        replay = run_schedule(hidden_race, finding.trace)
        assert finding.signature in [sig for sig, _ in replay.findings]

    def test_deadlock_invisible_to_default_run_is_found(self):
        assert run_schedule(hidden_deadlock).status == "ok"
        report = check_program(hidden_deadlock, name="dl", budget=400)
        deadlocks = [f for f in report.findings if f.kind == "deadlock"]
        assert deadlocks
        replay = run_schedule(hidden_deadlock, deadlocks[0].trace)
        assert replay.status == "deadlock"

    def test_bugs_are_rare_under_random_scheduling(self):
        outcomes = sample_random_schedules(
            lambda: run_hidden_race(seed=0), 40, seed=0)
        manifested = sum(1 for o in outcomes
                         if o.status != "ok" or o.findings)
        assert manifested / 40 < 0.2    # rarity; the scenario suite
        assert len(outcomes) == 40      # asserts the strict <5% bound

    def test_random_sampling_is_seed_deterministic(self):
        first = sample_random_schedules(hidden_race, 5, seed=7)
        second = sample_random_schedules(hidden_race, 5, seed=7)
        assert [o.choices for o in first] == [o.choices for o in second]


class TestExploration:
    def test_clean_program_exhausts_clean(self):
        report = check_program(
            lambda: run_racy_counter(seed=0, locked=True, rounds=2),
            name="locked", budget=500)
        assert report.ok, report.render()
        assert report.exhausted

    def test_exploration_is_deterministic(self):
        first = check_program(hidden_race, name="race", budget=200)
        second = check_program(hidden_race, name="race", budget=200)
        assert first.schedules == second.schedules
        assert first.signatures() == second.signatures()
        assert ([f.trace for f in first.findings]
                == [f.trace for f in second.findings])

    def test_dpor_matches_exhaustive_findings(self):
        exhaustive = check_program(hidden_race, name="ex", budget=500,
                                   dpor=False, prune=False)
        reduced = check_program(hidden_race, name="dpor", budget=500)
        assert exhaustive.exhausted and reduced.exhausted
        assert exhaustive.signatures() == reduced.signatures()
        assert reduced.schedules <= exhaustive.schedules

    def test_state_divergence_reported(self):
        # The racing schedules change the returned counter value, so
        # the ok-terminal states disagree.
        report = check_program(hidden_race, name="race", budget=200)
        assert any(f.kind == "divergence" for f in report.findings)

    def test_budget_caps_schedules(self):
        report = check_program(hidden_race, name="race", budget=3)
        assert report.schedules <= 3
        assert not report.exhausted

    def test_metrics_progress_counters(self):
        metrics = MetricsRegistry()
        report = check_program(hidden_race, name="race", budget=200,
                               metrics=metrics)
        assert report.counters["check_schedules"] == report.schedules
        assert report.counters["check_findings"] >= 1

    def test_report_is_json_friendly(self):
        report = check_program(hidden_race, name="race", budget=200)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["schedules"] == report.schedules
        assert payload["findings"]
        rendered = report.render()
        assert "replay" in rendered


class TestCheckCli:
    def test_fixture_exploration_exits_nonzero_on_findings(self, capsys):
        assert main(["check", "--fixture", "hidden-race",
                     "--budget", "50"]) == 1
        out = capsys.readouterr().out
        assert "AMBSAN-RACE" in out

    def test_replay_requires_fixture(self, capsys):
        assert main(["check", "--replay", "0,0,1"]) == 2

    def test_replay_roundtrip(self, capsys):
        assert main(["check", "--fixture", "hidden-race",
                     "--budget", "50"]) == 1
        out = capsys.readouterr().out
        trace = next(line.split("--replay ", 1)[1].strip()
                     for line in out.splitlines() if "--replay" in line)
        code = main(["check", "--fixture", "hidden-race",
                     "--replay", trace])
        replay_out = capsys.readouterr().out
        assert code == 1
        assert "AMBSAN-RACE" in replay_out

    def test_scenario_json(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        path = tmp_path / "check.json"
        assert main(["check", "--fast", "--budget", "500",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        names = {s["name"] for s in payload["scenarios"]}
        assert {"hidden-race", "hidden-deadlock",
                "dpor-vs-exhaustive"} <= names
