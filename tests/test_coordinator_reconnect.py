"""Coordinator-outage tolerance: a killed coordinator can be replaced
on the same port and the cluster heals around it.

During the outage control-plane requests fail typed (``ClusterError``)
and fast — the ``_connected`` gate in ``CoordinatorClient`` refuses new
requests instead of letting them burn their full deadline.  Once a
successor binds the port, every node's client reconnects, re-registers,
and resumes heartbeats; the data plane never stops.
"""

import time

import pytest

from repro.errors import ClusterError
from repro.recovery.config import PEER_TIMEOUT_ENV
from repro.runtime import AmberObject, Cluster
from repro.runtime.coordinator import Coordinator


class Counter(AmberObject):
    def __init__(self):
        self.value = 0

    def add(self, amount):
        self.value += amount
        return self.value


def _await(probe, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if probe():
                return True
        except Exception:
            pass
        time.sleep(0.1)
    return False


def _start_successor(cluster, port, server):
    """Bind a successor on the old port, retrying while the dead
    incarnation's sockets drain out of the kernel."""
    deadline = time.monotonic() + 5.0
    while True:
        try:
            return Coordinator(cluster.num_nodes, cluster._region_bytes,
                               port=port, server=server)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


class TestCoordinatorRestart:
    def test_kill_and_restart_mid_run(self, monkeypatch):
        monkeypatch.setenv(PEER_TIMEOUT_ENV, "8")
        with Cluster(nodes=2) as cluster:
            handle = cluster.create(Counter, node=1)
            assert cluster.call(handle, "add", 1) == 1

            old = cluster._coordinator
            port = old.address[1]
            old.close()

            # In-flight control-plane traffic during the outage is a
            # typed failure, never a hang — and it fails fast: the
            # client's _connected gate refuses the request instead of
            # letting it burn its full deadline.
            t0 = time.monotonic()
            with pytest.raises(ClusterError):
                cluster._client.query_region(1 << 40)
            assert time.monotonic() - t0 < 2.0

            successor = _start_successor(cluster, port, old.server)
            cluster._coordinator = successor

            # Every node (driver + 1 worker) re-registers with the
            # successor and resumes heartbeats.
            assert _await(lambda: len(successor._registered)
                          >= cluster.num_nodes, 20.0), "re-register"
            assert _await(lambda: len(successor._last_heard)
                          >= cluster.num_nodes, 15.0), "heartbeats"
            assert cluster._client.stats["coordinator_reconnects"] >= 1

            # The data plane survived the outage, and fresh creations
            # (which need coordinator grants) work against the
            # successor's adopted address-space state.
            assert cluster.call(handle, "add", 1) == 2
            fresh = cluster.create(Counter, node=1)
            assert cluster.call(fresh, "add", 5) == 5

    def test_connected_gate_recovers(self, monkeypatch):
        """The gate that fails requests fast while disconnected must
        reopen after the reconnect — not wedge the client forever."""
        monkeypatch.setenv(PEER_TIMEOUT_ENV, "8")
        with Cluster(nodes=2) as cluster:
            old = cluster._coordinator
            port = old.address[1]
            old.close()
            with pytest.raises(ClusterError):
                cluster._client.query_region(0)
            successor = _start_successor(cluster, port, old.server)
            cluster._coordinator = successor
            assert _await(lambda: cluster._client._connected.is_set(),
                          20.0), "gate never reopened"
            # A normal control-plane request goes through again.
            assert cluster._client.query_region(1 << 40) is None
