"""Unit tests for runtime Handles: the uniform references of the live
object space (no cluster required)."""

import pickle

import pytest

from repro.errors import AmberError
from repro.runtime.handles import Handle


class TestHandleSemantics:
    def test_equality_by_address(self):
        assert Handle(0x1000) == Handle(0x1000)
        assert Handle(0x1000) != Handle(0x2000)
        assert Handle(0x1000) != 0x1000

    def test_hashable_and_usable_in_sets(self):
        handles = {Handle(0x1000), Handle(0x1000), Handle(0x2000)}
        assert len(handles) == 2

    def test_pickle_roundtrip_preserves_address(self):
        original = Handle(0xABCD)
        copy = pickle.loads(pickle.dumps(original))
        assert copy == original
        assert copy.vaddr == 0xABCD

    def test_nested_pickling(self):
        """Handles embedded in argument structures survive the trip —
        how references cross node boundaries (section 3.1)."""
        payload = {"refs": [Handle(1), Handle(2)],
                   "pair": (Handle(3), "data")}
        copy = pickle.loads(pickle.dumps(payload))
        assert copy["refs"] == [Handle(1), Handle(2)]
        assert copy["pair"][0] == Handle(3)

    def test_repr_shows_address(self):
        assert "0x1000" in repr(Handle(0x1000))

    def test_private_attributes_raise(self):
        with pytest.raises(AttributeError):
            Handle(0x1000)._secret

    def test_method_access_without_kernel_fails_at_call(self):
        """Attribute access builds a remote method eagerly; calling it
        without a kernel in the process is the error, not the lookup."""
        method = Handle(0x1000).poke
        assert "poke" in repr(method)
        # This test process has had kernels installed by other tests in
        # the session; only assert the call path is reachable.
        assert callable(method)
