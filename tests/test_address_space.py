"""Tests for the global virtual address space (paper section 3.1-3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address_space import (
    ALLOC_ALIGN,
    DEFAULT_REGION_BYTES,
    AddressSpaceServer,
    NodeHeap,
    Region,
    RegionMap,
)
from repro.errors import (
    AddressExhaustedError,
    AddressSpaceError,
    HeapError,
)


class TestRegion:
    def test_contains_boundaries(self):
        region = Region(base=0x1000, size=0x100, owner_node=3)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x0FFF)
        assert not region.contains(0x1100)

    def test_limit(self):
        assert Region(0x1000, 0x100, 0).limit == 0x1100


class TestAddressSpaceServer:
    def test_grants_are_disjoint_and_ordered(self):
        server = AddressSpaceServer(region_bytes=4096)
        regions = [server.grant_region(node) for node in (0, 1, 0, 2)]
        for earlier, later in zip(regions, regions[1:]):
            assert earlier.limit <= later.base

    def test_home_node_derivation(self):
        server = AddressSpaceServer(region_bytes=4096)
        r0 = server.grant_region(0)
        r1 = server.grant_region(1)
        assert server.home_node(r0.base) == 0
        assert server.home_node(r0.limit - 1) == 0
        assert server.home_node(r1.base) == 1

    def test_ungranted_address_rejected(self):
        server = AddressSpaceServer(region_bytes=4096)
        server.grant_region(0)
        with pytest.raises(AddressSpaceError):
            server.region_for(1)  # below the heap base

    def test_exhaustion(self):
        server = AddressSpaceServer(region_bytes=4096, base=0,
                                    limit=3 * 4096)
        for _ in range(3):
            server.grant_region(0)
        with pytest.raises(AddressExhaustedError):
            server.grant_region(0)

    def test_bad_region_size_rejected(self):
        with pytest.raises(AddressSpaceError):
            AddressSpaceServer(region_bytes=0)
        with pytest.raises(AddressSpaceError):
            AddressSpaceServer(region_bytes=100)  # not aligned

    def test_grants_recorded_per_node(self):
        server = AddressSpaceServer(region_bytes=4096)
        server.grant_region(2)
        server.grant_region(2)
        server.grant_region(5)
        assert len(server.grants[2]) == 2
        assert len(server.grants[5]) == 1

    def test_default_region_is_one_megabyte(self):
        # "the regions are large enough (currently 1M bytes)"
        assert DEFAULT_REGION_BYTES == 1 << 20
        assert AddressSpaceServer().region_bytes == 1 << 20


class TestRegionMap:
    def test_lookup_hit_and_miss(self):
        rmap = RegionMap()
        region = Region(0x1000, 0x100, 7)
        rmap.add(region)
        assert rmap.lookup(0x1080) == region
        assert rmap.lookup(0x2000) is None

    def test_conflicting_grant_detected(self):
        rmap = RegionMap()
        rmap.add(Region(0x1000, 0x100, 7))
        with pytest.raises(AddressSpaceError):
            rmap.add(Region(0x1000, 0x100, 8))

    def test_re_add_same_grant_is_idempotent(self):
        rmap = RegionMap()
        region = Region(0x1000, 0x100, 7)
        rmap.add(region)
        rmap.add(region)
        assert len(rmap) == 1


class TestNodeHeap:
    def make_heap(self, node=0, region_bytes=4096):
        server = AddressSpaceServer(region_bytes=region_bytes)
        return NodeHeap(node, server), server

    def test_allocations_disjoint(self):
        heap, _ = self.make_heap()
        a = heap.allocate(100)
        b = heap.allocate(100)
        assert abs(a - b) >= 112  # rounded to 16

    def test_alignment(self):
        heap, _ = self.make_heap()
        for size in (1, 15, 16, 17, 100):
            assert heap.allocate(size) % ALLOC_ALIGN == 0

    def test_free_and_reuse_whole_block(self):
        """Section 3.2: blocks are reused only at their original size."""
        heap, _ = self.make_heap()
        a = heap.allocate(128)
        heap.free(a)
        # A smaller allocation must NOT split the freed 128-byte block.
        small = heap.allocate(16)
        assert small != a
        # Same-size allocation reuses it whole.
        again = heap.allocate(128)
        assert again == a

    def test_double_free_rejected(self):
        heap, _ = self.make_heap()
        a = heap.allocate(64)
        heap.free(a)
        with pytest.raises(HeapError):
            heap.free(a)

    def test_free_unknown_rejected(self):
        heap, _ = self.make_heap()
        with pytest.raises(HeapError):
            heap.free(0xDEAD0)

    def test_zero_or_negative_size_rejected(self):
        heap, _ = self.make_heap()
        with pytest.raises(HeapError):
            heap.allocate(0)
        with pytest.raises(HeapError):
            heap.allocate(-4)

    def test_oversized_allocation_rejected(self):
        heap, _ = self.make_heap(region_bytes=4096)
        with pytest.raises(HeapError):
            heap.allocate(8192)

    def test_region_extension(self):
        """Exhausting the initial pool requests a new region from the
        address-space server (section 3.1)."""
        heap, server = self.make_heap(region_bytes=256)
        addresses = [heap.allocate(64) for _ in range(8)]
        assert heap.regions_requested == 2
        assert len({server.home_node(address) for address in addresses}) == 1

    def test_on_grant_callback(self):
        server = AddressSpaceServer(region_bytes=256)
        seen = []
        heap = NodeHeap(3, server, on_grant=seen.append)
        heap.allocate(64)
        assert len(seen) == 1
        assert seen[0].owner_node == 3

    def test_two_nodes_never_collide(self):
        server = AddressSpaceServer(region_bytes=256)
        heap_a = NodeHeap(0, server)
        heap_b = NodeHeap(1, server)
        addresses = set()
        for _ in range(20):
            for heap in (heap_a, heap_b):
                address = heap.allocate(48)
                assert address not in addresses
                addresses.add(address)

    def test_bytes_allocated_accounting(self):
        heap, _ = self.make_heap()
        a = heap.allocate(100)  # rounds to 112
        assert heap.bytes_allocated == 112
        heap.free(a)
        assert heap.bytes_allocated == 0


@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=2048)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=40)),
    ),
    max_size=80,
))
def test_heap_invariants_hold_under_random_workload(ops):
    """Property: live blocks never overlap, every address is aligned, and
    freed blocks are only ever reused at their original size."""
    server = AddressSpaceServer(region_bytes=4096)
    heap = NodeHeap(0, server)
    live = {}  # address -> requested size
    for op, arg in ops:
        if op == "alloc":
            address = heap.allocate(arg)
            assert address % ALLOC_ALIGN == 0
            assert address not in live
            live[address] = arg
        elif live:
            keys = sorted(live)
            address = keys[arg % len(keys)]
            heap.free(address)
            del live[address]
    # No two live blocks overlap.
    spans = sorted((address, heap.block_size(address)) for address in live)
    for (a, size_a), (b, _) in zip(spans, spans[1:]):
        assert a + size_a <= b
