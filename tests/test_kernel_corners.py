"""Remaining corner branches of the simulated kernel."""

import pytest

from repro.errors import MobilityError
from repro.sim.objects import SimObject
from repro.sim.syscalls import (
    Charge,
    Compute,
    Fork,
    GetStats,
    Invoke,
    Join,
    Locate,
    MoveTo,
    New,
    Refresh,
    SetImmutable,
)
from tests.helpers import Cell, run, run_free


class TestReplicaCorners:
    def test_refresh_fetches_remote_replica(self):
        """Refresh on a node without a replica installs one proactively,
        so the first invocation is already local."""
        class Reader(SimObject):
            def prefetch_then_read(self, ctx, table):
                yield Refresh(table)
                stats = yield GetStats()
                remote_before = stats.total_remote_invocations
                value = yield Invoke(table, "get")
                remote_after = stats.total_remote_invocations
                return value, remote_after - remote_before

        def main(ctx):
            table = yield New(Cell, 5)
            yield SetImmutable(table)
            reader = yield New(Reader, on_node=1)
            return (yield Invoke(reader, "prefetch_then_read", table))

        value, extra_remote = run_free(main).value
        assert value == 5
        assert extra_remote == 0

    def test_moveto_immutable_existing_replica_cheap(self):
        def main(ctx):
            table = yield New(Cell, 5)
            yield SetImmutable(table)
            yield MoveTo(table, 1)
            messages_before = ctx.cluster.network.stats.messages
            yield MoveTo(table, 1)     # replica already there: no traffic
            return ctx.cluster.network.stats.messages - messages_before

        assert run_free(main).value == 0

    def test_replica_fetch_prefers_lowest_replica_node(self):
        """Replication sources are deterministic (lowest node id holding
        a copy), keeping runs reproducible."""
        def main(ctx):
            table = yield New(Cell, 5)
            yield SetImmutable(table)
            yield MoveTo(table, 2)
            yield MoveTo(table, 1)
            return sorted(table._replica_nodes)

        assert run_free(main, nodes=3).value == [0, 1, 2]


class TestMoveCorners:
    def test_remote_move_via_chain(self):
        """MoveTo issued by a thread two stale hops away from the
        object."""
        def main(ctx):
            cell = yield New(Cell, 9)
            yield MoveTo(cell, 1)
            # Overwrite node 0's fresh hint by moving via a helper on
            # node 1 (node 0 isn't told).
            class Mover(SimObject):
                def push(self, ctx2, obj, dest):
                    yield MoveTo(obj, dest)

            mover = yield New(Mover, on_node=1)
            yield Invoke(mover, "push", cell, 2)
            yield Invoke(mover, "push", cell, 3)
            # Node 0 still believes node 1; issue the move from here.
            yield MoveTo(cell, 0)
            where = yield Locate(cell)
            value = yield Invoke(cell, "get")
            return where, value

        assert run_free(main, nodes=4).value == (0, 9)

    def test_move_storm_converges(self):
        """Concurrent movers pushing the same object to different nodes:
        the object ends somewhere consistent and reachable."""
        class Mover(SimObject):
            def shuttle(self, ctx, obj, dests):
                for dest in dests:
                    yield MoveTo(obj, dest)
                    yield Compute(500.0)

        def main(ctx):
            cell = yield New(Cell, 1)
            mover_a = yield New(Mover)
            mover_b = yield New(Mover, on_node=1)
            thread_a = yield Fork(mover_a, "shuttle", cell, [1, 2, 3, 0])
            thread_b = yield Fork(mover_b, "shuttle", cell, [2, 0, 1, 2])
            yield Join(thread_a)
            yield Join(thread_b)
            where = yield Locate(cell)
            value = yield Invoke(cell, "get")
            tables = ctx.cluster.descriptor_tables()
            resident = [node for node, table in tables.items()
                        if table.is_resident(cell.vaddr)]
            return where, value, resident

        where, value, resident = run(main, nodes=4, cpus=2).value
        assert value == 1
        assert resident == [where]

    def test_bound_thread_chases_repeated_moves(self):
        """A thread computing inside an object that is moved twice while
        it runs still finishes, on the final node."""
        class Workplace(SimObject):
            def grind(self, ctx):
                yield Compute(100_000)
                yield Charge(1.0)
                return ctx.node

        def main(ctx):
            place = yield New(Workplace)
            worker = yield Fork(place, "grind")
            yield Compute(5_000)
            yield MoveTo(place, 1)
            yield Compute(5_000)
            yield MoveTo(place, 2)
            return (yield Join(worker))

        assert run(main, nodes=3, cpus=2).value == 2


class TestAtomicOpCorners:
    def test_atomic_op_exception_propagates(self):
        class Brittle(SimObject):
            def snap(self, ctx):
                raise RuntimeError("atomic snap")

        def main(ctx):
            brittle = yield New(Brittle)
            try:
                yield Invoke(brittle, "snap")
            except RuntimeError as error:
                return str(error)

        assert run_free(main).value == "atomic snap"

    def test_atomic_op_on_remote_object_round_trips(self):
        class Plain(SimObject):
            def read(self, ctx):
                return 42

        def main(ctx):
            plain = yield New(Plain)
            yield MoveTo(plain, 1)
            t0 = ctx.now_us
            value = yield Invoke(plain, "read")
            return value, ctx.now_us - t0

        value, elapsed = run(main).value
        assert value == 42
        assert elapsed == pytest.approx(8320.0)
