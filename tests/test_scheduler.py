"""Tests for per-node schedulers and runtime scheduler replacement
(paper section 2.1 / Bershad et al. 88b)."""

import pytest

from repro.sim.objects import SimObject
from repro.sim.scheduler import (
    FifoScheduler,
    LifoScheduler,
    PriorityScheduler,
)
from repro.sim.syscalls import (
    Compute,
    Fork,
    Join,
    New,
    SetScheduler,
)
from repro.sim.thread import SimThread
from tests.helpers import run


def make_threads(n):
    return [SimThread(tid, name=f"t{tid}", priority=tid) for tid in range(n)]


class TestSchedulerObjects:
    def test_fifo_order(self):
        scheduler = FifoScheduler()
        threads = make_threads(3)
        for thread in threads:
            scheduler.enqueue(thread)
        assert [scheduler.dequeue() for _ in range(3)] == threads
        assert scheduler.dequeue() is None

    def test_lifo_order(self):
        scheduler = LifoScheduler()
        threads = make_threads(3)
        for thread in threads:
            scheduler.enqueue(thread)
        assert [scheduler.dequeue() for _ in range(3)] == threads[::-1]

    def test_priority_order(self):
        scheduler = PriorityScheduler()
        threads = make_threads(3)   # priority == tid
        for thread in threads:
            scheduler.enqueue(thread)
        out = [scheduler.dequeue() for _ in range(3)]
        assert [thread.priority for thread in out] == [2, 1, 0]

    def test_priority_fifo_among_equals(self):
        scheduler = PriorityScheduler()
        a, b = SimThread(0), SimThread(1)
        scheduler.enqueue(a)
        scheduler.enqueue(b)
        assert scheduler.dequeue() is a
        assert scheduler.dequeue() is b

    @pytest.mark.parametrize("cls", [FifoScheduler, LifoScheduler,
                                     PriorityScheduler])
    def test_remove(self, cls):
        scheduler = cls()
        threads = make_threads(3)
        for thread in threads:
            scheduler.enqueue(thread)
        assert scheduler.remove(threads[1])
        assert not scheduler.remove(threads[1])
        remaining = {scheduler.dequeue(), scheduler.dequeue()}
        assert remaining == {threads[0], threads[2]}
        assert len(scheduler) == 0

    @pytest.mark.parametrize("cls", [FifoScheduler, LifoScheduler,
                                     PriorityScheduler])
    def test_len(self, cls):
        scheduler = cls()
        threads = make_threads(4)
        for thread in threads:
            scheduler.enqueue(thread)
        assert len(scheduler) == 4
        scheduler.dequeue()
        assert len(scheduler) == 3

    def test_drain(self):
        scheduler = FifoScheduler()
        threads = make_threads(3)
        for thread in threads:
            scheduler.enqueue(thread)
        assert scheduler.drain() == threads
        assert len(scheduler) == 0

    def test_priority_remove_then_reenqueue_no_double_dispatch(self):
        """Regression: remove() used to tombstone by thread id and
        enqueue() to discard the tombstone, leaving the removed heap
        entry live — dequeue() then returned the same thread twice
        (double dispatch onto two CPUs)."""
        scheduler = PriorityScheduler()
        thread = SimThread(0, name="t", priority=5)
        scheduler.enqueue(thread)
        assert scheduler.remove(thread)
        scheduler.enqueue(thread)
        assert len(scheduler) == 1
        assert scheduler.dequeue() is thread
        assert scheduler.dequeue() is None
        assert len(scheduler) == 0

    def test_priority_reenqueue_while_queued_keeps_one_entry(self):
        """Enqueueing an already-queued thread (priority change) must
        not create a second dispatchable entry."""
        scheduler = PriorityScheduler()
        thread, other = SimThread(0, priority=1), SimThread(1, priority=0)
        scheduler.enqueue(thread)
        scheduler.enqueue(other)
        scheduler.enqueue(thread)      # re-enqueue without remove
        assert len(scheduler) == 2
        out = [scheduler.dequeue(), scheduler.dequeue()]
        assert out == [thread, other]
        assert scheduler.dequeue() is None

    def test_priority_remove_after_dequeue_is_false(self):
        scheduler = PriorityScheduler()
        thread = SimThread(0, priority=3)
        scheduler.enqueue(thread)
        assert scheduler.dequeue() is thread
        assert not scheduler.remove(thread)


class Recorder(SimObject):
    def __init__(self):
        self.order = []

    def job(self, ctx, tag):
        yield Compute(10_000)
        self.order.append(tag)


class TestRuntimeReplacement:
    def test_priority_scheduler_reorders_execution(self):
        """Replacing the node scheduler at runtime changes dispatch order:
        with a priority scheduler, the high-priority job queued last runs
        before earlier low-priority jobs."""
        def main(ctx):
            yield SetScheduler(0, PriorityScheduler())
            recorder = yield New(Recorder)
            jobs = []
            for tag, priority in [("low1", 0), ("low2", 0), ("high", 9)]:
                jobs.append((yield Fork(recorder, "job", tag,
                                        priority=priority)))
            for job in jobs:
                yield Join(job)
            return recorder.order

        # One CPU: main occupies it while forking, so all three jobs are
        # queued when the CPU frees up; "high" must run first.
        order = run(main, nodes=1, cpus=1).value
        assert order[0] == "high"

    def test_fifo_default_runs_in_fork_order(self):
        def main(ctx):
            recorder = yield New(Recorder)
            jobs = []
            for tag in ("a", "b", "c"):
                jobs.append((yield Fork(recorder, "job", tag)))
            for job in jobs:
                yield Join(job)
            return recorder.order

        assert run(main, nodes=1, cpus=1).value == ["a", "b", "c"]

    def test_replacement_carries_queued_threads(self):
        """Threads already queued survive a scheduler swap."""
        def main(ctx):
            recorder = yield New(Recorder)
            jobs = []
            for tag in ("a", "b"):
                jobs.append((yield Fork(recorder, "job", tag)))
            yield SetScheduler(0, LifoScheduler())
            for job in jobs:
                yield Join(job)
            return sorted(recorder.order)

        assert run(main, nodes=1, cpus=1).value == ["a", "b"]

    def test_per_node_schedulers_independent(self):
        def main(ctx):
            yield SetScheduler(1, PriorityScheduler())
            cluster = ctx.cluster
            return (type(cluster.node(0).scheduler).__name__,
                    type(cluster.node(1).scheduler).__name__)

        assert run(main).value == ("FifoScheduler", "PriorityScheduler")
