"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "remote invoke/return" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "master object" in out

    def test_figure3_fast(self, capsys):
        assert main(["figure3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "(X)" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_requires_artifact(self):
        with pytest.raises(SystemExit):
            main([])
