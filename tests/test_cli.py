"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "remote invoke/return" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "master object" in out

    def test_figure3_fast(self, capsys):
        assert main(["figure3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "(X)" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_requires_artifact(self):
        with pytest.raises(SystemExit):
            main([])

    def test_artifact_metrics_json(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["table1", "--metrics-json", str(path)]) == 0
        metrics = json.loads(path.read_text())
        histograms = metrics["table1"]["histograms"]
        assert histograms  # at least one latency histogram
        for summary in histograms.values():
            for quantile in ("p50", "p90", "p99"):
                assert quantile in summary


class TestTraceProfileCli:
    def test_profile_prints_time_attribution(self, capsys):
        assert main(["profile", "queens", "--fast"]) == 0
        out = capsys.readouterr().out
        for token in ("compute", "migration", "queue", "lock-wait",
                      "critical path:", "Operation metrics"):
            assert token in out

    def test_trace_writes_chrome_trace_json(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["trace", "queens", "--fast",
                     "--out", str(trace_path),
                     "--metrics-json", str(metrics_path)]) == 0
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        assert events
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "M" for e in events)
        metrics = json.loads(metrics_path.read_text())
        assert "p99" in metrics["queens"]["histograms"]["invoke_remote_us"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nosuch"])
        with pytest.raises(SystemExit):
            main(["profile"])
