#!/usr/bin/env python3
"""Dynamic parallelism: N-Queens over a distributed work pool.

SOR (the paper's application) is regular and static.  This example shows
the other side of the model the paper's introduction promises — dynamic,
irregular work balanced at runtime: a shared WorkPool object hands
partial board positions to worker threads spread over the cluster; each
take/report is a function-shipped invocation of the pool.

It also demonstrates a real distributed-systems lesson the paper's model
makes easy to *see*: a centralized hot object becomes a bottleneck as the
cluster grows, and batching work units trades pool traffic against
load-balance granularity.

Run:  python examples/parallel_queens.py
"""

from repro.apps.queens import KNOWN_SOLUTIONS, run_amber_queens
from repro.bench.reporting import render_table

N = 11
SPLIT_DEPTH = 2


def main():
    print(f"counting {N}-Queens solutions "
          f"(expected: {KNOWN_SOLUTIONS[N]:,})\n")

    rows = []
    for nodes, cpus in [(1, 1), (1, 4), (2, 4), (4, 4), (8, 4)]:
        result = run_amber_queens(n=N, nodes=nodes, cpus_per_node=cpus,
                                  split_depth=SPLIT_DEPTH, batch=3)
        assert result.solutions == KNOWN_SOLUTIONS[N]
        rows.append((f"{nodes}Nx{cpus}P", nodes * cpus, result.speedup,
                     result.stats.total_remote_invocations,
                     f"{result.load_imbalance:.2f}"))
    print(render_table(
        ["Config", "CPUs", "Speedup", "Pool invocations (remote)",
         "Max/mean units"],
        rows, title="Work-pool N-Queens on the simulated cluster"))

    print("\nbatching ablation at 8Nx4P (pool traffic vs balance):")
    batch_rows = []
    for batch in (1, 2, 4, 8):
        result = run_amber_queens(n=N, nodes=8, cpus_per_node=4,
                                  split_depth=3, batch=batch)
        batch_rows.append((batch, result.speedup,
                           result.stats.total_remote_invocations))
    print(render_table(["Batch", "Speedup", "Pool invocations"],
                       batch_rows))
    print("\nthe pool is a deliberately centralized hot object: scaling "
          "flattens as its node\nsaturates — the locality/load tension "
          "the paper leaves to the programmer.")


if __name__ == "__main__":
    main()
