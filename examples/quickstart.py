#!/usr/bin/env python3
"""Quickstart: the Amber programming model on a live cluster.

Spawns a three-node cluster (three OS processes on this machine), then
walks through the core of the paper's model:

* objects live in a network-wide object space and are used through
  location-transparent references (handles);
* invoking a remote object ships the computation to it (function
  shipping) — the caller never copies the data;
* objects move under explicit program control (``MoveTo``), leaving
  forwarding addresses behind;
* threads (Start/Join) run where their target object lives;
* read-only objects replicate instead of bouncing callers around.

Run:  python examples/quickstart.py
"""

from repro.runtime import AmberObject, Cluster, current_node


class Inventory(AmberObject):
    """A mutable object: one authoritative copy, wherever it lives."""

    def __init__(self):
        self.stock = {}

    def put(self, item, count):
        self.stock[item] = self.stock.get(item, 0) + count
        return self.stock[item]

    def take(self, item, count):
        have = self.stock.get(item, 0)
        if have < count:
            raise ValueError(f"only {have} x {item} in stock")
        self.stock[item] = have - count
        return count

    def report(self):
        return dict(self.stock), current_node()


class Auditor(AmberObject):
    """Invokes the inventory through a handle — from wherever *it* is."""

    def __init__(self, inventory):
        self.inventory = inventory

    def audit(self):
        stock, inventory_node = self.inventory.report()
        return {
            "auditor_node": current_node(),
            "inventory_node": inventory_node,
            "total_items": sum(stock.values()),
        }


def main():
    with Cluster(nodes=3) as cluster:
        print(f"cluster up: {cluster.num_nodes} nodes "
              f"(processes on this machine)\n")

        # -- create and invoke -------------------------------------------
        inventory = cluster.create(Inventory, node=1)
        inventory.put("widget", 10)
        inventory.put("gadget", 3)
        stock, node = inventory.report()
        print(f"inventory lives on node {node}: {stock}")

        # -- function shipping from another object -----------------------
        auditor = cluster.create(Auditor, inventory, node=2)
        print(f"audit from node 2: {auditor.audit()}")

        # -- explicit mobility ---------------------------------------------
        cluster.move(inventory, 0)
        print(f"\nafter MoveTo(inventory, 0): located on node "
              f"{cluster.locate(inventory)}")
        print(f"audit still works: {auditor.audit()}")
        print("(the auditor's stale reference chased the forwarding "
              "address)")

        # -- threads ----------------------------------------------------
        threads = [cluster.fork(inventory, "put", "widget", 1)
                   for _ in range(5)]
        for thread in threads:
            thread.join(timeout=10)
        stock, _ = inventory.report()
        print(f"\nafter 5 Start/Join threads: widgets = "
              f"{stock['widget']}")

        # -- immutable replication ------------------------------------------
        catalog = cluster.create(Inventory, node=0)
        catalog.put("price-list", 1)
        cluster.set_immutable(catalog)
        cluster.move(catalog, 2)   # copies: both nodes now hold it
        print(f"\nimmutable catalog: copy requested to node 2, original "
              f"still on node {cluster.locate(catalog)}")

        print("\nper-node kernel stats:")
        for node in range(cluster.num_nodes):
            stats = cluster.node_stats(node)
            interesting = {key: value for key, value in stats.items()
                           if value}
            print(f"  node {node}: {interesting}")


if __name__ == "__main__":
    main()
