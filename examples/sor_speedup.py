#!/usr/bin/env python3
"""The paper's evaluation in miniature: SOR speedup on the simulator.

Runs the Red/Black SOR program of section 6 on the simulated cluster for
a handful of Figure 2 configurations, prints the speedup table, and
verifies the numerics against the sequential solver.  A fast version of
``python -m repro.bench.figure2`` with commentary.

Run:  python examples/sor_speedup.py
"""

import numpy as np

from repro.apps.sor import SorProblem, run_amber_sor, run_sequential_sor
from repro.bench.reporting import render_table


def main():
    # The paper's grid, fewer iterations (speedup is steady-state).
    problem = SorProblem(rows=122, cols=842, iterations=10)
    print(f"problem: {problem.rows}x{problem.cols} grid "
          f"({problem.points:,} points), {problem.iterations} iterations\n")

    sequential = run_sequential_sor(problem)
    print(f"sequential baseline: {sequential.elapsed_us / 1e6:.2f} "
          f"simulated seconds\n")

    rows = []
    configs = [(1, 1), (1, 4), (2, 4), (4, 4), (8, 4)]
    for nodes, cpus in configs:
        result = run_amber_sor(problem, nodes=nodes, cpus_per_node=cpus)
        rows.append((result.label, nodes * cpus, result.speedup,
                     result.speedup / (nodes * cpus),
                     result.stats.thread_migrations))
    # The overlap ablation the paper highlights at 8Nx4P.
    no_overlap = run_amber_sor(problem, nodes=8, cpus_per_node=4,
                               overlap=False)
    rows.append(("8Nx4P (no overlap)", 32, no_overlap.speedup,
                 no_overlap.speedup / 32,
                 no_overlap.stats.thread_migrations))

    print(render_table(
        ["Config", "CPUs", "Speedup", "Efficiency", "Thread migrations"],
        rows,
        title="Amber Red/Black SOR speedup (simulated Firefly cluster)"))

    # The parallel program computes *bitwise identical* results.
    check = run_amber_sor(problem, nodes=4, cpus_per_node=4,
                          collect_grid=True)
    identical = np.array_equal(check.grid, sequential.grid)
    print(f"\n4Nx4P grid bitwise identical to sequential: {identical}")
    assert identical


if __name__ == "__main__":
    main()
