#!/usr/bin/env python3
"""Dining philosophers across a live cluster.

Five philosopher objects spread over three nodes share five fork objects
(Amber ``Lock``s) that also live on different nodes.  Every fork pickup
is a (possibly remote) invocation: the philosopher's activation ships to
the fork's node, parks there if the fork is taken, and returns once it is
held — the function-shipping synchronization story of section 4.1, where
a DSM would instead shuttle lock pages between five hungry nodes.

Deadlock is avoided the classic way: each philosopher picks its
lower-numbered fork first (a global lock order).

Run:  python examples/distributed_philosophers.py
"""

from repro.runtime import AmberObject, Cluster, Lock, current_node

PHILOSOPHERS = 5
MEALS = 3
NODES = 3


class Philosopher(AmberObject):
    def __init__(self, index, first_fork, second_fork):
        self.index = index
        self.first_fork = first_fork      # lower-numbered: total order
        self.second_fork = second_fork
        self.meals = 0

    def dine(self, meals):
        log = []
        for _ in range(meals):
            self.first_fork.acquire()
            self.second_fork.acquire()
            self.meals += 1           # eating: both forks held
            log.append(f"philosopher {self.index} ate meal "
                       f"{self.meals} on node {current_node()}")
            self.second_fork.release()
            self.first_fork.release()
        return log


def main():
    with Cluster(nodes=NODES) as cluster:
        forks = [cluster.create(Lock, node=i % NODES)
                 for i in range(PHILOSOPHERS)]
        philosophers = []
        for i in range(PHILOSOPHERS):
            left, right = i, (i + 1) % PHILOSOPHERS
            first, second = min(left, right), max(left, right)
            philosophers.append(cluster.create(
                Philosopher, i, forks[first], forks[second],
                node=i % NODES))

        threads = [cluster.fork(philosopher, "dine", MEALS)
                   for philosopher in philosophers]
        for thread in threads:
            for line in thread.join(timeout=60):
                print(line)

        print(f"\nall {PHILOSOPHERS} philosophers ate {MEALS} meals each "
              f"with forks spread over {NODES} nodes — no deadlock.")
        print("fork lock acquisitions per node:")
        for node in range(NODES):
            stats = cluster.node_stats(node)
            print(f"  node {node}: executed "
                  f"{stats['invocations_executed']} invocations, "
                  f"forwarded {stats['forwards']}")


if __name__ == "__main__":
    main()
