#!/usr/bin/env python3
"""Immutable replication at work: distributed block matrix multiply.

``C = A @ B`` with A's row-blocks spread across four simulated nodes.
Every worker needs all of B.  Mutable B forces each worker to fetch
column blocks through remote invocations over and over; marking B
immutable (``SetImmutable``) lets the kernel hand each node one replica,
after which every read is local — the paper's §2.3 replication facility
carrying a real numeric workload.

Run:  python examples/replicated_matmul.py
"""

import numpy as np

from repro.apps.matmul import run_matmul
from repro.bench.reporting import render_table


def main():
    m = k = n = 128
    nodes = 4
    print(f"C = A @ B with A: {m}x{k}, B: {k}x{n}, "
          f"A split over {nodes} nodes\n")

    rows = []
    results = {}
    for replicate in (False, True):
        # Four sweeps over B, like an iterative algorithm: replication
        # pays its one-time transfer off across the reuse.
        result = run_matmul(m=m, k=k, n=n, nodes=nodes,
                            replicate_b=replicate, rounds=4)
        results[replicate] = result
        rows.append((
            "immutable B (replicated)" if replicate else "mutable B",
            result.speedup,
            result.stats.thread_migrations,
            result.stats.replications,
            result.network_bytes // 1024,
        ))
    print(render_table(
        ["B's treatment", "Speedup", "Thread migrations",
         "Replicas", "KB on wire"],
        rows))

    same = np.allclose(results[True].product, results[False].product,
                       rtol=1e-4)
    print(f"\nboth runs computed the same product: {same}")
    print("one replica per node replaced a stream of per-block fetches —")
    print("mark read-only data immutable and the communication vanishes.")


if __name__ == "__main__":
    main()
