#!/usr/bin/env python3
"""Replacing a node's scheduler at runtime (section 2.1).

"An application can install a custom scheduling discipline at runtime by
replacing the system scheduler object with a similar object that supports
the same interface but behaves differently."

This example defines a *deadline* scheduler (earliest deadline first) as
a subclass of the Scheduler interface, installs it on node 0 of a
simulated cluster mid-program, and shows the dispatch order flipping from
FIFO to deadline order.

Run:  python examples/custom_scheduler.py
"""

import heapq

from repro.sim import (
    Compute,
    Fork,
    Join,
    New,
    Scheduler,
    SetScheduler,
    SimObject,
    run_program,
)


class DeadlineScheduler(Scheduler):
    """Earliest-deadline-first.  The deadline rides in the thread's
    ``priority`` field, negated at fork time (the scheduler interface sees
    whatever the application encodes there — the point of replaceable
    scheduler objects)."""

    def __init__(self):
        self._heap = []
        self._seq = 0

    def enqueue(self, thread):
        deadline = -thread.priority
        heapq.heappush(self._heap, (deadline, self._seq, thread))
        self._seq += 1

    def dequeue(self):
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def remove(self, thread):
        for i, entry in enumerate(self._heap):
            if entry[2] is thread:
                del self._heap[i]
                heapq.heapify(self._heap)
                return True
        return False

    def __len__(self):
        return len(self._heap)


class JobLog(SimObject):
    def __init__(self):
        self.completed = []

    def job(self, ctx, name, work_us):
        yield Compute(work_us)
        self.completed.append(name)


def run_batch(ctx, log, jobs, tag):
    threads = []
    for name, work_us, deadline in jobs:
        thread = yield Fork(log, "job", name, work_us, name=name,
                            priority=-deadline)
        threads.append(thread)
    for thread in threads:
        yield Join(thread)
    start = len(log.completed) - len(jobs)
    return list(log.completed[start:])


def main_program(ctx):
    log = yield New(JobLog)
    # Jobs arrive in this (deliberately unhelpful) order; deadlines say
    # urgent-last-submitted.
    jobs = [("report", 30_000, 900_000),
            ("backup", 30_000, 500_000),
            ("alert", 30_000, 10_000)]

    fifo_order = yield from run_batch(ctx, log, jobs, "fifo")

    yield SetScheduler(0, DeadlineScheduler())
    edf_order = yield from run_batch(ctx, log, jobs, "edf")
    return fifo_order, edf_order


def main():
    # One CPU: the queue order is the execution order.
    result = run_program(main_program, nodes=1, cpus_per_node=1)
    fifo_order, edf_order = result.value
    print("dispatch order under the default FIFO scheduler: ",
          fifo_order)
    print("dispatch order after installing EDF at runtime:  ",
          edf_order)
    assert edf_order == ["alert", "backup", "report"]
    print("\nthe urgent job ran first once the application's own "
          "scheduler object was installed.")


if __name__ == "__main__":
    main()
