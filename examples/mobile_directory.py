#!/usr/bin/env python3
"""Locality through mobility: moving a directory to its clients.

Section 2.3's thesis, demonstrated on the simulator: "interacting objects
should be co-located in order to avoid the cost of a remote procedure
call on each invocation", and placement is the *program's* decision.

A name directory (plus an index attached to it, so they always travel
together) serves lookup bursts from clients on several nodes.  Phase by
phase the program moves the directory to whichever node is about to issue
the burst, then compares against leaving it parked on node 0 — and
against marking a read-only snapshot immutable so every node gets a local
replica.

Run:  python examples/mobile_directory.py
"""

from repro.sim import (
    Attach,
    Charge,
    Compute,
    Fork,
    Invoke,
    Join,
    Locate,
    MoveTo,
    New,
    SetImmutable,
    SimObject,
    run_program,
)

NODES = 4
LOOKUPS_PER_BURST = 30


class Directory(SimObject):
    SIZE_BYTES = 4096

    def __init__(self):
        self.entries = {f"name-{i}": i for i in range(256)}

    def lookup(self, ctx, name):
        yield Charge(3.0)
        return self.entries.get(name)


class Index(SimObject):
    """Auxiliary structure the directory needs nearby."""

    SIZE_BYTES = 1024

    def __init__(self):
        self.hot = ["name-1", "name-2"]


class Client(SimObject):
    def __init__(self, directory):
        self.directory = directory

    def burst(self, ctx, n):
        for i in range(n):
            yield Invoke(self.directory, "lookup", f"name-{i % 256}")
        return ctx.node


def workload(ctx, mobile: bool):
    directory = yield New(Directory)
    index = yield New(Index)
    yield Attach(index, directory)     # co-location guaranteed
    clients = []
    for node in range(NODES):
        clients.append((yield New(Client, directory, on_node=node)))
    t0 = ctx.now_us
    for node, client in enumerate(clients):
        if mobile:
            yield MoveTo(directory, node)   # index comes along
            where = yield Locate(index)
            assert where == node
        worker = yield Fork(client, "burst", LOOKUPS_PER_BURST)
        yield Join(worker)
    return ctx.now_us - t0


def replicated_workload(ctx):
    directory = yield New(Directory)
    yield SetImmutable(directory)
    clients = []
    for node in range(NODES):
        clients.append((yield New(Client, directory, on_node=node)))
    t0 = ctx.now_us
    for client in clients:
        worker = yield Fork(client, "burst", LOOKUPS_PER_BURST)
        yield Join(worker)
    return ctx.now_us - t0


def main():
    static = run_program(lambda ctx: workload(ctx, False),
                         nodes=NODES, cpus_per_node=2)
    mobile = run_program(lambda ctx: workload(ctx, True),
                         nodes=NODES, cpus_per_node=2)
    replicated = run_program(replicated_workload,
                             nodes=NODES, cpus_per_node=2)

    def report(name, result):
        stats = result.stats
        print(f"{name:28s} {result.value / 1000:9.1f} ms   "
              f"thread migrations {stats.thread_migrations:4d}   "
              f"object moves {stats.object_moves}   "
              f"replications {stats.replications}")

    print(f"{NODES} nodes, {LOOKUPS_PER_BURST} lookups per node, "
          f"one burst per node\n")
    report("static placement (node 0):", static)
    report("MoveTo before each burst:", mobile)
    report("immutable snapshot:", replicated)
    print("\nmobility turns every burst local; replication does the same "
          "for read-only data\nwithout ever moving the master copy.")
    assert mobile.value < static.value
    assert replicated.value < static.value


if __name__ == "__main__":
    main()
