"""Heartbeat failure detection for the simulated cluster.

Every ``heartbeat_interval_us`` each live node multicasts a small
heartbeat to every reachable peer.  The detector aggregates receptions:
a node unheard-from for ``grace_us`` is *suspected*; one silent for
``confirm_us`` is *confirmed dead*, which hands control to the kernel's
promotion/resurrection machinery.  A heartbeat from a suspected or
confirmed node (it restarted) rescinds the verdict as a *rejoin*.

Determinism: heartbeats ride the shared wire through plain
:meth:`~repro.sim.network.Ethernet.send` — they occupy the medium like
any message but never consult the seeded fault injector, so attaching a
detector does not perturb the fault stream of the rest of the run.
Crash and partition silence is applied explicitly (and
randomness-free): a down node sends nothing, a severed pair exchanges
nothing.

The heartbeat timer terminates with the program (once the main thread
is done it stops rescheduling), so the event queue still drains.

Events emitted into the obs layer: ``node_suspected``,
``node_confirmed_dead`` (with the ``detection_latency_us`` histogram —
confirmation time minus the actual crash instant) and
``node_rejoined``; counters of the same names aggregate per run.
"""

from __future__ import annotations

from typing import Dict, Set


class HeartbeatDetector:
    """Kernel-driven heartbeat/suspicion service (one per simulation)."""

    def __init__(self, kernel, config):
        self.kernel = kernel
        self.config = config
        self.last_heard: Dict[int, float] = {
            node.id: 0.0 for node in kernel.cluster.nodes}
        self.suspected: Set[int] = set()
        self.confirmed: Set[int] = set()

    def start(self) -> None:
        self.kernel.sim.schedule_us(self.config.heartbeat_interval_us,
                                    self._tick)

    # -- internals -----------------------------------------------------

    def _finished(self) -> bool:
        threads = self.kernel.threads
        return bool(threads) and threads[0].done

    def _tick(self) -> None:
        if self._finished():
            return
        kernel = self.kernel
        cluster = kernel.cluster
        now = kernel.sim.now_us
        plan = cluster.faults
        for src in cluster.nodes:
            if src.down:
                continue
            kernel.metrics.inc("heartbeats_sent")
            for dst in cluster.nodes:
                if dst.id == src.id or dst.down:
                    continue
                if plan is not None and plan.partitioned(src.id, dst.id,
                                                         now):
                    continue
                kernel.net.send(src.id, dst.id,
                                self.config.heartbeat_bytes,
                                lambda s=src.id: self._heard(s))
        self._check(now)
        kernel.sim.schedule_us(self.config.heartbeat_interval_us,
                               self._tick)

    def _heard(self, node_id: int) -> None:
        self.last_heard[node_id] = self.kernel.sim.now_us
        if node_id in self.suspected or node_id in self.confirmed:
            self.suspected.discard(node_id)
            self.confirmed.discard(node_id)
            self.kernel.metrics.inc("node_rejoined")
            self.kernel._trace("node_rejoined", node_id,
                               detail="heartbeat resumed")

    def _check(self, now: float) -> None:
        kernel = self.kernel
        for node in kernel.cluster.nodes:
            node_id = node.id
            if node_id in self.confirmed:
                continue
            silence = now - self.last_heard[node_id]
            if silence >= self.config.confirm_us:
                self.suspected.discard(node_id)
                self.confirmed.add(node_id)
                crashed_at = kernel._crash_times.get(
                    node_id, self.last_heard[node_id])
                latency = now - crashed_at
                kernel.metrics.inc("node_confirmed_dead")
                kernel.metrics.observe("detection_latency_us", latency)
                kernel._trace(
                    "node_confirmed_dead", node_id,
                    detail=f"silent {silence:.0f} us; "
                           f"detection latency {latency:.0f} us")
                kernel._on_node_confirmed_dead(node_id)
            elif silence >= self.config.grace_us and \
                    node_id not in self.suspected:
                self.suspected.add(node_id)
                kernel.metrics.inc("node_suspected")
                kernel._trace("node_suspected", node_id,
                              detail=f"silent {silence:.0f} us")
