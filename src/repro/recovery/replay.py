"""Caller-side invocation log for orphan-thread resurrection.

Every time a thread migrates out to invoke a remote object, the kernel
pushes a :class:`ReplayEntry` on the thread's ``resurrect_stack``: who
launched the invocation (the caller node), what it targets, and a
cluster-unique ``(caller node, thread id, sequence)`` id.  If the callee
node is later confirmed dead, the innermost entry whose origin is still
alive is re-launched from the caller — the orphan thread is resurrected
exactly where its last recoverable invocation began.

At-most-once discipline hangs off the same id: the entry is *marked*
completed when the invocation returns, but only *popped* once the thread
is safely back with its caller.  A thread that dies between completing
an invocation and delivering the result therefore still has the entry —
and because its un-flushed write-through checkpoint dies with it, the
object state it would be replayed against has rolled back to exactly
the pre-invocation epoch: re-execution is consistent, not a
double-apply.  Replays that *do* race a surviving completion are
suppressed by the completion log the object carries in its snapshots
(see :mod:`repro.recovery.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


@dataclass
class ReplayEntry:
    """One migrating invocation, as remembered by its caller."""

    #: ``(anchor node, thread id, per-thread sequence)`` — globally
    #: unique and stable across replays.  The anchor is the origin of the
    #: thread's *outermost* live entry (its own departure node for root
    #: entries): a nested invocation re-issued during replay departs from
    #: the promoted object's new node, and keying on the physical
    #: departure node would miss the completion logged under the original
    #: id.  Resurrection also resets the thread's sequence counter to
    #: ``seq`` so re-executed nested invocations regenerate identical
    #: ids, which is what makes dedup work.
    id: Tuple[int, int, int]
    #: Node the invocation departed from (where replay restarts).
    origin: int
    #: Target object's virtual address.
    target: int
    #: The original ``Invoke`` request (re-sent verbatim on replay).
    request: Any
    #: Marshalled argument bytes (migration payload of the re-send).
    payload: int
    #: ``len(thread.stack)`` at departure: the caller frames to keep.
    depth: int
    #: Whether this is the thread's root (body) invocation.
    is_root: bool
    #: The thread's ``invoke_seq`` when the entry was created.
    seq: int
    #: Set when the invocation returned; the entry is popped only once
    #: the thread is back at its caller (see module docstring).
    completed: bool = False
