"""Crash recovery for the Amber reproduction.

The paper has no recovery story — a crashed node takes its resident
objects and visiting threads with it.  This package closes the loop
from *injecting* failures (:mod:`repro.faults`) to *surviving* them:

* :mod:`repro.recovery.config` — the :class:`RecoveryConfig` policy
  object (heartbeat cadence, grace windows, checkpoint policy) and the
  ``REPRO_PEER_TIMEOUT_S`` knob every live-runtime peer-wait ceiling is
  derived from;
* :mod:`repro.recovery.detector` — heartbeat failure detection in the
  simulator (the live runtime's coordinator-mediated detection lives in
  :mod:`repro.runtime`);
* :mod:`repro.recovery.checkpoint` — epoch-based object snapshots and
  the primary-backup stores promotion draws from;
* :mod:`repro.recovery.replay` — the caller-side invocation log behind
  orphan-thread resurrection with at-most-once semantics;
* :mod:`repro.recovery.workloads` / :mod:`repro.recovery.scenario` —
  SOR and N-Queens arranged so a crash lands on live mutable state, and
  the seeded pass/fail scenarios behind ``repro faults --recover``.

Attach recovery to a simulated run with::

    from repro.recovery import RecoveryConfig
    from repro.sim import AmberProgram

    program = AmberProgram(config, faults=plan,
                           recovery=RecoveryConfig())
"""

from repro.recovery.config import (
    DEFAULT_PEER_TIMEOUT_S,
    PEER_TIMEOUT_ENV,
    RecoveryConfig,
    heartbeat_grace_s,
    peer_timeout_s,
    reply_timeout_s,
)

__all__ = [
    "DEFAULT_PEER_TIMEOUT_S",
    "PEER_TIMEOUT_ENV",
    "RecoveryConfig",
    "heartbeat_grace_s",
    "peer_timeout_s",
    "reply_timeout_s",
]
