"""Recovery configuration: the simulator's knobs and the process-wide
peer-timeout knob shared with the live runtime.

The simulator side is a frozen :class:`RecoveryConfig` passed to
:class:`~repro.sim.program.AmberProgram` (``recovery=``).  Recovery is
strictly opt-in: with no config attached, the kernel schedules no
heartbeats, takes no checkpoints, and behaves bit-identically to the
pre-recovery simulator.

The live runtime side is one environment knob, ``REPRO_PEER_TIMEOUT_S``,
from which every previously hard-coded peer-wait ceiling is derived:

* :func:`peer_timeout_s` — how long bootstrap waits for the rest of the
  cluster (``CoordinatorClient.wait_directory`` and coordinator request
  round-trips; previously a hard-coded 30 s).
* :func:`reply_timeout_s` — the lost-peer ceiling on any request reply
  (``NodeKernel``'s reply wait; previously a hard-coded 120 s), four
  peer-timeouts so a slow bootstrap can never outlive a reply wait.
* :func:`heartbeat_grace_s` — the live failure detector's suspicion
  window, one tenth of the peer timeout (3 s by default): a peer that
  misses that much heartbeat traffic is *suspected*, and one that misses
  twice that is *confirmed dead*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import SimulationError

#: Environment variable holding the single tunable peer-wait budget
#: (seconds).  Everything else is derived from it.
PEER_TIMEOUT_ENV = "REPRO_PEER_TIMEOUT_S"

#: Default peer-wait budget when the environment does not override it.
DEFAULT_PEER_TIMEOUT_S = 30.0


def peer_timeout_s() -> float:
    """The cluster-bootstrap wait budget, seconds."""
    raw = os.environ.get(PEER_TIMEOUT_ENV)
    if raw is None:
        return DEFAULT_PEER_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        raise SimulationError(
            f"{PEER_TIMEOUT_ENV} must be a number of seconds, "
            f"got {raw!r}") from None
    if value <= 0:
        raise SimulationError(
            f"{PEER_TIMEOUT_ENV} must be positive, got {value}")
    return value


def reply_timeout_s() -> float:
    """Ceiling on waiting for any reply in the live runtime (the
    lost-peer ceiling): four peer-timeouts."""
    return 4.0 * peer_timeout_s()


def heartbeat_grace_s() -> float:
    """The live failure detector's suspicion window: a tenth of the
    peer timeout."""
    return peer_timeout_s() / 10.0


@dataclass(frozen=True)
class RecoveryConfig:
    """Simulator-side recovery policy (pure configuration, hashable).

    ``heartbeat_interval_us``
        Every up node multicasts a heartbeat this often (heartbeats
        occupy the shared wire like any control message, but bypass the
        *random* fault injector so attaching a detector never perturbs
        the seeded fault stream — crash and partition silence still
        applies, deterministically).
    ``grace_us`` / ``confirm_us``
        A node unheard-from for ``grace_us`` is *suspected*; one silent
        for ``confirm_us`` is *confirmed dead*, which triggers backup
        promotion and orphan resurrection.  ``confirm_us`` defaults to
        twice ``grace_us`` (see ``__post_init__``).
    ``checkpointing``
        Master switch for checkpoint shipping and promotion.  With it
        off, the detector still runs, but a confirmed-dead node's
        objects are lost forever and its threads terminate with
        :class:`~repro.errors.NodeFailure` instead of hanging.
    ``checkpoint_interval_us``
        Period of the epoch checkpoint sweep (0 disables the sweep,
        leaving only write-through checkpoints).
    ``checkpoint_on_remote_invoke``
        Ship a fresh snapshot whenever a remote invocation completes on
        a mutable object — the write-through that makes every effect a
        survivor has observed durable.
    ``backup_placement``
        ``"home"``: back up on the object's home node (falling back to
        the ring when the object is resident *at* home); ``"ring"``:
        always the deterministic hash-ring successor.
    """

    heartbeat_interval_us: float = 2_000.0
    grace_us: float = 8_000.0
    confirm_us: float = 0.0           # 0 -> 2 * grace_us
    checkpointing: bool = True
    checkpoint_interval_us: float = 25_000.0
    checkpoint_on_remote_invoke: bool = True
    backup_placement: str = "home"
    #: Nominal wire size of one heartbeat, bytes.
    heartbeat_bytes: int = 32

    def __post_init__(self) -> None:
        if self.heartbeat_interval_us <= 0:
            raise SimulationError(
                f"heartbeat interval must be positive: "
                f"{self.heartbeat_interval_us}")
        if self.grace_us < self.heartbeat_interval_us:
            raise SimulationError(
                "grace window shorter than the heartbeat interval would "
                f"suspect healthy nodes: grace={self.grace_us}, "
                f"interval={self.heartbeat_interval_us}")
        if self.confirm_us == 0.0:
            object.__setattr__(self, "confirm_us", 2.0 * self.grace_us)
        if self.confirm_us < self.grace_us:
            raise SimulationError(
                f"confirm window must be >= grace window: "
                f"confirm={self.confirm_us}, grace={self.grace_us}")
        if self.backup_placement not in ("home", "ring"):
            raise SimulationError(
                f"backup_placement must be 'home' or 'ring', "
                f"got {self.backup_placement!r}")
        if self.checkpoint_interval_us < 0:
            raise SimulationError(
                f"checkpoint interval must be >= 0: "
                f"{self.checkpoint_interval_us}")
