"""Recovery workloads: programs whose live mutable state dies mid-run.

The fault scenarios of :mod:`repro.faults.scenario` keep crashed nodes
*restartable* — protocol retries span the outage and no state is lost.
These workloads are built to survive the harder case: a node that holds
live, mutable, mid-computation objects dies **permanently**, and the run
must still produce the clean answer via checkpoint promotion and thread
resurrection (``docs/RECOVERY.md``).

Two programs, chosen to pin the two halves of the recovery guarantee:

``run_recovery_sor``
    Red/Black SOR over horizontal stripes.  Stripe objects (the mutable
    grid state) live on nodes ``1..N-1``; driver threads and the
    iteration barrier stay on node 0.  Drivers carry neighbour edge rows
    *by value* into each ``relax`` invocation, so a resurrected driver
    replays with identical arguments and the promoted stripe computes
    bit-identical values — grid equality with the clean run is
    structural, not probabilistic.

``run_recovery_queens``
    N-Queens over per-node tally objects with *cumulative counters* —
    the at-most-once acid test.  Every ``count`` both returns a value
    and mutates the tally; a duplicated or replayed invocation that
    executed twice would inflate ``calls`` past the number of work
    units.  The scenario asserts the totals match the clean run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.apps.queens import KNOWN_SOLUTIONS, count_completions, seed_prefixes
from repro.apps.sor.grid import (
    BLACK,
    RED,
    VALUE_BYTES,
    SorProblem,
    count_color_points,
    make_grid,
    sweep_color,
)
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.stats import ClusterStats
from repro.sim.sync import Barrier
from repro.sim.syscalls import Charge, Compute, Fork, Invoke, Join, New

#: Bookkeeping cost of an edge-row copy / result collection, us.
EDGE_OP_US = 5.0

TOP = 0
BOTTOM = 1


# ----------------------------------------------------------------------
# SOR over crash-prone stripes
# ----------------------------------------------------------------------


class GridStripe(SimObject):
    """One horizontal band of the grid: rows ``row0 .. row0+nrows-1``
    (global interior coordinates) plus one ghost row on each side.

    The stripe is the recovery target: it is mutable, long-lived, and —
    placed on a crash-prone node — exactly the state the checkpoint
    layer must keep promotable.
    """

    def __init__(self, index: int, row0: int, nrows: int,
                 problem: SorProblem, per_point_us: float):
        self.index = index
        self.row0 = row0
        self.nrows = nrows
        self.omega = problem.omega
        self.per_point_us = per_point_us
        # All columns (boundary included); ghost rows 0 and nrows+1.
        full = make_grid(problem)
        self.grid = full[row0:row0 + nrows + 2, :].copy()
        self.relaxations = 0

    def edge_row(self, ctx, which: int):
        """Copy out my first (TOP) or last (BOTTOM) interior row — the
        neighbour's next ghost row."""
        yield Charge(EDGE_OP_US)
        row = 1 if which == TOP else self.nrows
        return self.grid[row, :].copy()

    def relax(self, ctx, color: int, above: Optional[np.ndarray],
              below: Optional[np.ndarray]):
        """Install ghost rows and update my points of ``color``.

        The ghost rows arrive as invocation arguments, so a replayed
        ``relax`` re-executes against identical inputs; only the
        opposite-color entries of a ghost row are ever read, and those
        are stable for the whole phase (red/black independence)."""
        cols = self.grid.shape[1] - 2
        points = count_color_points(self.nrows, cols, color,
                                    row0=self.row0, col0=0)
        yield Compute(points * self.per_point_us)
        if above is not None:
            self.grid[0, :] = above
        if below is not None:
            self.grid[self.nrows + 1, :] = below
        delta = sweep_color(self.grid, self.omega, color,
                            row0=1, row1=self.nrows + 1,
                            global_row0=self.row0, global_col0=0)
        self.relaxations += 1
        return delta

    def collect(self, ctx):
        """Copy out my interior rows (result assembly)."""
        yield Charge(EDGE_OP_US)
        return self.grid[1:self.nrows + 1, :].copy()


class SorDriver(SimObject):
    """Per-stripe driver, anchored to node 0: fetches neighbour edges,
    invokes ``relax`` (migrating to the stripe's node), and meets the
    others at the barrier after every color phase."""

    SIZE_BYTES = 256

    def __init__(self, index: int, stripes: List[GridStripe],
                 barrier: Barrier, iterations: int, row_bytes: int):
        self.index = index
        self.stripes = stripes
        self.barrier = barrier
        self.iterations = iterations
        self.row_bytes = row_bytes

    def drive(self, ctx):
        stripe = self.stripes[self.index]
        above_src = self.stripes[self.index - 1] if self.index > 0 else None
        below_src = (self.stripes[self.index + 1]
                     if self.index + 1 < len(self.stripes) else None)
        delta = 0.0
        for _iteration in range(self.iterations):
            for color in (BLACK, RED):
                above = below = None
                if above_src is not None:
                    above = yield Invoke(above_src, "edge_row", BOTTOM,
                                         result_bytes=self.row_bytes)
                if below_src is not None:
                    below = yield Invoke(below_src, "edge_row", TOP,
                                         result_bytes=self.row_bytes)
                arg_bytes = self.row_bytes * ((above is not None)
                                              + (below is not None))
                delta = yield Invoke(stripe, "relax", color, above, below,
                                     arg_bytes=arg_bytes)
                yield Invoke(self.barrier, "wait")
        return delta


@dataclass
class RecoverySorResult:
    problem: SorProblem
    nodes: int
    cpus_per_node: int
    stripes: int
    grid: np.ndarray
    final_delta: float
    elapsed_us: float
    stats: ClusterStats
    cluster: object = None


def run_recovery_sor(problem: Optional[SorProblem] = None,
                     nodes: int = 3,
                     cpus_per_node: int = 2,
                     per_point_us: float = 2.0,
                     faults=None,
                     recovery=None) -> RecoverySorResult:
    """Run the striped SOR program; one stripe per node ``1..N-1``, all
    drivers and the barrier on node 0."""
    if problem is None:
        problem = SorProblem(rows=24, cols=24, iterations=6)
    if nodes < 2:
        raise ValueError("recovery SOR needs >=2 nodes "
                         "(stripes live away from the drivers)")
    nstripes = nodes - 1
    row_bytes = (problem.cols + 2) * VALUE_BYTES

    def row_range(index: int) -> Tuple[int, int]:
        lo = problem.rows * index // nstripes
        hi = problem.rows * (index + 1) // nstripes
        return lo, hi - lo

    def main(ctx):
        barrier = yield New(Barrier, nstripes)
        stripes = []
        for i in range(nstripes):
            row0, nrows = row_range(i)
            slab_bytes = (nrows + 2) * (problem.cols + 2) * VALUE_BYTES
            stripe = yield New(GridStripe, i, row0, nrows, problem,
                               per_point_us, size_bytes=slab_bytes,
                               on_node=1 + i)
            stripes.append(stripe)
        threads = []
        for i in range(nstripes):
            driver = yield New(SorDriver, i, stripes, barrier,
                               problem.iterations, row_bytes)
            threads.append((yield Fork(driver, "drive", name=f"drv{i}")))
        deltas = []
        for thread in threads:
            deltas.append((yield Join(thread)))
        grid = make_grid(problem)
        for i, stripe in enumerate(stripes):
            row0, nrows = row_range(i)
            slab = yield Invoke(stripe, "collect")
            grid[row0 + 1:row0 + 1 + nrows, :] = slab
        return grid, max(deltas)

    config = ClusterConfig(nodes=nodes, cpus_per_node=cpus_per_node)
    result = AmberProgram(config, faults=faults,
                          recovery=recovery).run(main)
    grid, final_delta = result.value
    return RecoverySorResult(
        problem=problem, nodes=nodes, cpus_per_node=cpus_per_node,
        stripes=nstripes, grid=grid, final_delta=final_delta,
        elapsed_us=result.elapsed_us, stats=result.stats,
        cluster=result.cluster)


# ----------------------------------------------------------------------
# Queens over crash-prone tallies
# ----------------------------------------------------------------------


class Tally(SimObject):
    """A per-node solution counter.  ``count`` both computes *and*
    mutates — the invocation the at-most-once log must never let run
    twice."""

    SIZE_BYTES = 256

    def __init__(self, n: int, node_cost_us: float):
        self.n = n
        self.node_cost_us = node_cost_us
        self.solutions = 0
        self.visited = 0
        self.calls = 0

    def count(self, ctx, prefix: Tuple[int, ...]):
        solutions, visited = count_completions(self.n, prefix)
        yield Compute(max(1.0, visited * self.node_cost_us))
        self.solutions += solutions
        self.visited += visited
        self.calls += 1
        return solutions, visited

    def totals(self, ctx):
        yield Charge(EDGE_OP_US)
        return self.solutions, self.visited, self.calls


class QueensDriver(SimObject):
    """Walks a fixed slice of the prefix list, spreading invocations
    round-robin over the tallies (static partition: replay-safe and
    schedule-independent)."""

    SIZE_BYTES = 256

    def __init__(self, tallies: List[Tally],
                 prefixes: List[Tuple[int, ...]]):
        self.tallies = tallies
        self.prefixes = prefixes

    def drive(self, ctx, offset: int):
        solutions = visited = 0
        for j, prefix in enumerate(self.prefixes):
            tally = self.tallies[(offset + j) % len(self.tallies)]
            s, v = yield Invoke(tally, "count", prefix, arg_bytes=64)
            solutions += s
            visited += v
        return solutions, visited


@dataclass
class RecoveryQueensResult:
    n: int
    nodes: int
    cpus_per_node: int
    solutions: int
    visited: int
    work_units: int
    #: Per-tally ``(solutions, visited, calls)`` — the mutable state the
    #: crash must not corrupt or double-count.
    tally_totals: List[Tuple[int, int, int]]
    elapsed_us: float
    stats: ClusterStats
    cluster: object = None

    @property
    def correct(self) -> bool:
        known = KNOWN_SOLUTIONS.get(self.n)
        calls = sum(t[2] for t in self.tally_totals)
        tally_solutions = sum(t[0] for t in self.tally_totals)
        return (known is None or self.solutions == known) \
            and tally_solutions == self.solutions \
            and calls == self.work_units


def run_recovery_queens(n: int = 7,
                        nodes: int = 3,
                        cpus_per_node: int = 2,
                        split_depth: int = 2,
                        drivers: int = 4,
                        node_cost_us: float = 10.0,
                        faults=None,
                        recovery=None) -> RecoveryQueensResult:
    """Count N-Queens solutions through per-node tally objects on nodes
    ``1..N-1``; driver threads stay on node 0."""
    if nodes < 2:
        raise ValueError("recovery queens needs >=2 nodes")
    prefixes = seed_prefixes(n, split_depth)

    def main(ctx):
        tallies = []
        for node in range(1, nodes):
            tallies.append((yield New(Tally, n, node_cost_us,
                                      on_node=node)))
        threads = []
        for d in range(drivers):
            mine = prefixes[d::drivers]
            driver = yield New(QueensDriver, tallies, mine)
            threads.append((yield Fork(driver, "drive", d,
                                       name=f"qdrv{d}")))
        solutions = visited = 0
        for thread in threads:
            s, v = yield Join(thread)
            solutions += s
            visited += v
        totals = []
        for tally in tallies:
            totals.append((yield Invoke(tally, "totals")))
        return solutions, visited, totals

    config = ClusterConfig(nodes=nodes, cpus_per_node=cpus_per_node)
    result = AmberProgram(config, faults=faults,
                          recovery=recovery).run(main)
    solutions, visited, totals = result.value
    return RecoveryQueensResult(
        n=n, nodes=nodes, cpus_per_node=cpus_per_node,
        solutions=solutions, visited=visited,
        work_units=len(prefixes), tally_totals=totals,
        elapsed_us=result.elapsed_us, stats=result.stats,
        cluster=result.cluster)
