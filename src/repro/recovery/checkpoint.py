"""Epoch-based object checkpoints and primary-backup promotion.

Mutable objects ship versioned snapshots of their state to a
deterministic backup node.  Snapshots travel two ways:

* **periodic sweep** — every ``checkpoint_interval_us`` the kernel ships
  a fresh epoch of every resident mutable object straight to its backup
  (through the faulty reliable layer, like any protocol message);
* **write-through** — when a migrated invocation completes, the
  *departing thread itself* carries the new epoch and flushes it from
  wherever it lands.  This couples checkpoint survival to thread
  survival: if the thread escapes the node, so does the checkpoint; if
  the node takes the thread down, the un-flushed epoch dies with it and
  the backup still holds the pre-invocation state — which is exactly
  the state the resurrected thread replays against.

Snapshots are *structural* copies: containers and numpy arrays are
copied, references to other Amber objects (including threads) are kept
by identity — object references are location-transparent names here, so
identity is the right serialization.  On restore, thread references are
purged from containers (a promoted lock's waiter queue must not point
at threads that are being resurrected elsewhere) while direct attribute
references such as a lock's owner are preserved: a live owner will
still release the promoted lock.

Torn snapshots are avoided, not repaired: the kernel skips any object a
live thread is currently bound to (its state may be mid-operation).
Consequently sync objects checkpoint only at protocol-quiescent points
— a barrier between cycles, a lock with no enqueued waiters.

Consistency is per object.  Multi-object invariants that span a dead
node (a monitor held while waiting on its condition variable) recover
only as well as their quiescent checkpoints allow; see
``docs/RECOVERY.md`` for the exact guarantees.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Kernel-private ``SimObject`` fields: identity and placement, never
#: part of a snapshot (the promoted object keeps its own).
KERNEL_FIELDS = frozenset((
    "_vaddr", "_home_node", "_location", "_size_bytes", "_immutable",
    "_replica_nodes",
))

_SIM_TYPES = None


def _sim_types():
    """(SimObject, SimThread), imported on first use: ``repro.sim``
    imports this module from its kernel, so a module-level import here
    would make the package initialization order load-bearing."""
    global _SIM_TYPES
    if _SIM_TYPES is None:
        from repro.sim.objects import SimObject
        from repro.sim.thread import SimThread
        _SIM_TYPES = (SimObject, SimThread)
    return _SIM_TYPES


def _copy(value, purge_threads: bool):
    """Structural copy of one attribute value (see module docstring)."""
    SimObject, SimThread = _sim_types()
    if isinstance(value, SimObject):
        return value
    kind = type(value)
    if kind is dict:
        return {
            _copy(key, purge_threads): _copy(item, purge_threads)
            for key, item in value.items()
            if not (purge_threads and isinstance(item, SimThread))
        }
    if kind in (list, tuple, set, frozenset, deque):
        items = [_copy(item, purge_threads) for item in value
                 if not (purge_threads and isinstance(item, SimThread))]
        return kind(items)
    if _np is not None and isinstance(value, _np.ndarray):
        return value.copy()
    return value  # scalars, strings, and unknown types by reference


def _slot_fields(cls: type) -> Tuple[str, ...]:
    """Per-instance ``__slots__`` entries across the MRO.  Hot sim
    classes (sync objects, threads) declare slots; their state lives in
    slot descriptors, not ``__dict__``, so snapshots must walk both."""
    names = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(name for name in slots
                     if name not in ("__dict__", "__weakref__"))
    return tuple(names)


def snapshot_state(obj: SimObject) -> Dict[str, object]:
    """Capture the object's user-visible state (one checkpoint epoch).

    Includes the at-most-once completion log (``_amber_completed``), so
    promotion restores exactly the set of invocation outcomes the
    snapshot's state reflects — log and state stay atomic.
    """
    state = {name: _copy(value, purge_threads=False)
             for name, value in obj.__dict__.items()
             if name not in KERNEL_FIELDS}
    for name in _slot_fields(type(obj)):
        if name in KERNEL_FIELDS or name in state:
            continue
        try:
            value = getattr(obj, name)
        except AttributeError:
            continue            # slot never assigned
        state[name] = _copy(value, purge_threads=False)
    return state


def restore_state(obj: SimObject, state: Dict[str, object]) -> None:
    """Overwrite the object's state from a snapshot (promotion).

    The stored snapshot is itself left untouched (a second crash can
    promote it again); thread references inside containers are purged
    on the way in.
    """
    for name in list(obj.__dict__):
        if name not in KERNEL_FIELDS:
            del obj.__dict__[name]
    slots = set(_slot_fields(type(obj)))
    for name, value in state.items():
        copied = _copy(value, purge_threads=True)
        if name in slots:
            setattr(obj, name, copied)
        else:
            obj.__dict__[name] = copied


class CheckpointManager:
    """Epoch bookkeeping and the per-node backup stores.

    A backup store models battery-backed stable storage at the backup
    node: entries survive that node's own crash-and-restart, but are
    unreachable while it is down — promotion consults only stores on
    live nodes, so an object whose primary *and* backup are dead at
    confirmation time is lost.
    """

    def __init__(self, cluster, config):
        self.cluster = cluster
        self.config = config
        self._epochs: Dict[int, int] = {}
        #: backup node id -> {vaddr -> (epoch, state)}
        self._stores: Dict[int, Dict[int, Tuple[int, dict]]] = {}

    # -- placement ----------------------------------------------------

    def backup_node(self, vaddr: int, primary: int) -> int:
        """Deterministic backup placement for ``vaddr`` held at
        ``primary``: the home node when the object lives away from home
        (policy ``"home"``), else the hash-ring successor — always a
        node other than the primary, skipping nodes that are down (an
        epoch shipped at a corpse is an epoch lost)."""
        nodes = self.cluster.nodes
        nnodes = len(nodes)
        if nnodes < 2:
            return primary
        if self.config.backup_placement == "home":
            home = self.cluster.home_node(vaddr)
            if home != primary and not nodes[home].down:
                return home
        start = (primary + 1 + vaddr % (nnodes - 1)) % nnodes
        for step in range(nnodes):
            candidate = (start + step) % nnodes
            if candidate != primary and not nodes[candidate].down:
                return candidate
        return primary  # everything else is down: nowhere to ship

    def eligible(self, obj) -> bool:
        """Only mutable non-thread objects checkpoint: threads recover
        by resurrection, immutables by replication."""
        SimObject, SimThread = _sim_types()
        return (isinstance(obj, SimObject)
                and not isinstance(obj, SimThread)
                and not obj.immutable)

    # -- epochs and stores --------------------------------------------

    def next_epoch(self, vaddr: int) -> int:
        epoch = self._epochs.get(vaddr, 0) + 1
        self._epochs[vaddr] = epoch
        return epoch

    def store(self, backup_id: int, vaddr: int, epoch: int,
              state: dict) -> bool:
        """Install an epoch at ``backup_id``; stale epochs (late
        retransmissions, out-of-order carried flushes) are ignored."""
        shelf = self._stores.setdefault(backup_id, {})
        held = shelf.get(vaddr)
        if held is not None and held[0] >= epoch:
            return False
        shelf[vaddr] = (epoch, state)
        return True

    def latest(self, vaddr: int) -> Optional[Tuple[int, int, dict]]:
        """Newest epoch of ``vaddr`` held on any *live* node, as
        ``(backup node, epoch, state)`` — ``None`` if every copy is
        behind a dead node."""
        best = None
        for node in self.cluster.nodes:
            if node.down:
                continue
            held = self._stores.get(node.id, {}).get(vaddr)
            if held is not None and (best is None or held[0] > best[1]):
                best = (node.id, held[0], held[1])
        return best

    def drop(self, vaddr: int) -> None:
        """Forget an object entirely (deletion)."""
        self._epochs.pop(vaddr, None)
        for shelf in self._stores.values():
            shelf.pop(vaddr, None)
