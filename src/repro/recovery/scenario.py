"""Crash-recovery scenarios: permanent node death with a pass/fail verdict.

The ``repro faults`` scenarios prove the *retry* story — crashed nodes
restart and in-protocol retransmission papers over the outage.  These
scenarios (``repro faults --recover``) prove the *recovery* story: the
crashed node never comes back, its objects are re-materialized from
checkpoints on their backup nodes, and its orphaned threads are
resurrected and replayed.  Each scenario runs its workload once clean
and twice under the same seeded plan, then checks:

* **correctness** — the recovered run produces the clean answer *and*
  actually recovered something (``objects_recovered >= 1``,
  ``invocations_replayed >= 1``, ``threads_lost == 0``);
* **determinism** — the two recovered runs are bit-identical (same
  final clock, result fingerprint, and counters).

``sor-recover``
    Striped Red/Black SOR; the dead node holds a live mutable grid
    stripe.  The recovered grid must equal the clean grid bit for bit.
``queens-recover``
    N-Queens over mutating per-node tallies; replay must be at-most-once
    (call counts and totals equal the clean run exactly).
``sor-unrecoverable``
    The same SOR crash with checkpointing disabled: the run must
    *terminate* with a typed :class:`~repro.errors.NodeFailure` — never
    hang — and fail identically across replays.

Used by ``python -m repro faults --recover`` and the recovery tests.
"""

from __future__ import annotations

import numpy as np

from repro.apps.sor.grid import SorProblem
from repro.errors import NodeFailure
from repro.faults.plan import FaultPlan, NodeCrash
from repro.faults.scenario import (
    COUNTER_NAMES,
    FaultsReport,
    ScenarioOutcome,
    _counters,
    _fingerprint,
)
from repro.recovery.config import RecoveryConfig
from repro.recovery.workloads import run_recovery_queens, run_recovery_sor

#: The node that dies in every scenario — it hosts stripe/tally 0.
CRASH_NODE = 1


def run_recovery_scenarios(seed: int = 0,
                           fast: bool = False) -> FaultsReport:
    """Run every recovery scenario under ``seed``."""
    scenarios = [
        _run_sor_recover(seed, fast),
        _run_queens_recover(seed, fast),
        _run_sor_unrecoverable(seed, fast),
    ]
    return FaultsReport(seed=seed, fast=fast, scenarios=scenarios)


def _recover_plan(seed: int, clean_elapsed_us: float) -> FaultPlan:
    """The chaos mix of the fault scenarios, but the crash is permanent:
    ``restart_us=None`` means retries can never span the outage — only
    promotion and resurrection can finish the run."""
    return FaultPlan(
        seed=seed,
        drop_rate=0.05,
        dup_rate=0.01,
        delay_rate=0.02,
        reorder_rate=0.01,
        delay_min_us=50.0,
        delay_max_us=2_000.0,
        crashes=(NodeCrash(node=CRASH_NODE,
                           at_us=0.35 * clean_elapsed_us,
                           restart_us=None),),
    )


def _sor_problem(fast: bool) -> SorProblem:
    return (SorProblem(rows=16, cols=16, iterations=4) if fast
            else SorProblem(rows=24, cols=24, iterations=6))


def _recovered(counters) -> bool:
    """Did the run actually exercise the recovery machinery?"""
    return (counters["objects_recovered"] >= 1
            and counters["invocations_replayed"] >= 1
            and counters["threads_lost"] == 0
            and counters["objects_lost"] == 0)


def _run_sor_recover(seed: int, fast: bool) -> ScenarioOutcome:
    problem = _sor_problem(fast)
    nodes, cpus = 3, 2

    def run(faults=None, recovery=None):
        return run_recovery_sor(problem, nodes=nodes, cpus_per_node=cpus,
                                faults=faults, recovery=recovery)

    clean = run()
    plan = _recover_plan(seed, clean.elapsed_us)
    recovery = RecoveryConfig()
    first, second = run(plan, recovery), run(plan, recovery)
    c1 = _counters(first)
    correct = bool(np.array_equal(clean.grid, first.grid)) \
        and _recovered(c1)
    fp1 = _fingerprint(first.elapsed_us, first.grid.tobytes(),
                       sorted(c1.items()))
    fp2 = _fingerprint(second.elapsed_us, second.grid.tobytes(),
                       sorted(_counters(second).items()))
    return ScenarioOutcome(
        name="sor-recover",
        description=(f"striped SOR {problem.rows}x{problem.cols}, node "
                     f"{CRASH_NODE} dies for good holding a live stripe"),
        plan=plan,
        correct=correct,
        deterministic=fp1 == fp2,
        clean_elapsed_us=clean.elapsed_us,
        faulted_elapsed_us=first.elapsed_us,
        fingerprint=fp1,
        counters=c1,
        detail=(f"{c1['objects_recovered']} object(s) promoted, "
                f"{c1['invocations_replayed']} invocation(s) replayed; "
                + ("grid bit-identical to clean run"
                   if np.array_equal(clean.grid, first.grid)
                   else "grid DIVERGED from clean run")))


def _run_queens_recover(seed: int, fast: bool) -> ScenarioOutcome:
    n = 7 if fast else 8
    nodes, cpus = 3, 2

    def run(faults=None, recovery=None):
        return run_recovery_queens(n=n, nodes=nodes, cpus_per_node=cpus,
                                   faults=faults, recovery=recovery)

    clean = run()
    plan = _recover_plan(seed, clean.elapsed_us)
    recovery = RecoveryConfig()
    first, second = run(plan, recovery), run(plan, recovery)
    c1 = _counters(first)
    correct = (first.correct
               and first.tally_totals == clean.tally_totals
               and _recovered(c1))
    fp1 = _fingerprint(first.elapsed_us, first.solutions, first.visited,
                       first.tally_totals, sorted(c1.items()))
    fp2 = _fingerprint(second.elapsed_us, second.solutions,
                       second.visited, second.tally_totals,
                       sorted(_counters(second).items()))
    return ScenarioOutcome(
        name="queens-recover",
        description=(f"{n}-Queens tallies, node {CRASH_NODE} dies for "
                     f"good holding live counters (at-most-once check)"),
        plan=plan,
        correct=correct,
        deterministic=fp1 == fp2,
        clean_elapsed_us=clean.elapsed_us,
        faulted_elapsed_us=first.elapsed_us,
        fingerprint=fp1,
        counters=c1,
        detail=(f"{first.solutions} solutions, "
                f"{sum(t[2] for t in first.tally_totals)} tally calls "
                f"for {first.work_units} work units, "
                f"{c1['invocations_replayed']} replayed"))


def _run_sor_unrecoverable(seed: int, fast: bool) -> ScenarioOutcome:
    problem = _sor_problem(fast)
    nodes, cpus = 3, 2

    clean = run_recovery_sor(problem, nodes=nodes, cpus_per_node=cpus)
    plan = _recover_plan(seed, clean.elapsed_us)
    recovery = RecoveryConfig(checkpointing=False)

    def attempt():
        """Returns ``(exception type name, message)`` — the run must
        terminate with a typed failure, not hang or succeed."""
        try:
            run_recovery_sor(problem, nodes=nodes, cpus_per_node=cpus,
                             faults=plan, recovery=recovery)
        except NodeFailure as failure:
            return type(failure).__name__, str(failure)
        return "", "run unexpectedly succeeded without checkpoints"

    kind1, message1 = attempt()
    kind2, message2 = attempt()
    correct = kind1 == "NodeFailure"
    fp1 = _fingerprint(kind1, message1)
    fp2 = _fingerprint(kind2, message2)
    zeros = {name: 0 for name in COUNTER_NAMES}
    return ScenarioOutcome(
        name="sor-unrecoverable",
        description=("the same crash with checkpointing disabled: the "
                     "run must fail fast with a typed NodeFailure"),
        plan=plan,
        correct=correct,
        deterministic=fp1 == fp2,
        clean_elapsed_us=clean.elapsed_us,
        faulted_elapsed_us=0.0,
        fingerprint=fp1,
        counters=zeros,
        detail=f"{kind1}: {message1}" if kind1 else message1)
