"""Higher-level object placement software (the paper's stated future
direction).

Section 2.3 closes: "Our assumption is that the best policy for managing
location is application-specific and is best left to the program **or
higher-level object placement software**."  Amber itself never decides
placement — and neither does anything here: these are *advisors* that
programs consult and then act on with the ordinary ``MoveTo``/``New``
primitives, keeping location under explicit program control exactly as
the paper requires (contrast Sloop's overridable hints and Orca's fully
automatic placement, both discussed in §2.3).

* :class:`~repro.placement.policies.RoundRobinPlacer`,
  :class:`~repro.placement.policies.LeastPopulatedPlacer` — choose nodes
  for new objects;
* :class:`~repro.placement.policies.AffinityRebalancer` — mine the
  kernel's access log for objects whose invocations mostly arrive from
  some other node and suggest moving them there (the "reorganize object
  locations following different computational phases" pattern of §2.3);
* :class:`~repro.placement.policies.PlacementPolicy` and friends —
  class-level creation-time policies the bundled apps consult:
  the pass-through default (bit-identical to no policy),
  :class:`~repro.placement.policies.SpreadPlacement` (knowledge-free
  round-robin baseline), and
  :class:`~repro.placement.policies.HintedPlacement`, which consumes
  the AmberFlow ``PlacementHints`` artifact (``repro flow``) and falls
  back cleanly when hints are absent, stale, or name unknown classes.
"""

from repro.placement.policies import (
    AffinityRebalancer,
    HintedPlacement,
    LeastPopulatedPlacer,
    MoveSuggestion,
    PlacementPolicy,
    RoundRobinPlacer,
    SpreadPlacement,
)

__all__ = [
    "AffinityRebalancer",
    "HintedPlacement",
    "LeastPopulatedPlacer",
    "MoveSuggestion",
    "PlacementPolicy",
    "RoundRobinPlacer",
    "SpreadPlacement",
]
