"""Higher-level object placement software (the paper's stated future
direction).

Section 2.3 closes: "Our assumption is that the best policy for managing
location is application-specific and is best left to the program **or
higher-level object placement software**."  Amber itself never decides
placement — and neither does anything here: these are *advisors* that
programs consult and then act on with the ordinary ``MoveTo``/``New``
primitives, keeping location under explicit program control exactly as
the paper requires (contrast Sloop's overridable hints and Orca's fully
automatic placement, both discussed in §2.3).

* :class:`~repro.placement.policies.RoundRobinPlacer`,
  :class:`~repro.placement.policies.LeastPopulatedPlacer` — choose nodes
  for new objects;
* :class:`~repro.placement.policies.AffinityRebalancer` — mine the
  kernel's access log for objects whose invocations mostly arrive from
  some other node and suggest moving them there (the "reorganize object
  locations following different computational phases" pattern of §2.3).
"""

from repro.placement.policies import (
    AffinityRebalancer,
    LeastPopulatedPlacer,
    MoveSuggestion,
    RoundRobinPlacer,
)

__all__ = [
    "AffinityRebalancer",
    "LeastPopulatedPlacer",
    "MoveSuggestion",
    "RoundRobinPlacer",
]
