"""Placement advisors over the simulated cluster.

All advisors are pure policy: they read cluster state and *suggest*;
the program decides and moves.  See the package docstring for why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.cluster import SimCluster
from repro.sim.objects import SimObject
from repro.sim.thread import SimThread


class RoundRobinPlacer:
    """Spread new objects evenly: the classic static load-balancing
    choice for regular problems (it is exactly how the SOR program lays
    out its sections)."""

    def __init__(self, nodes: int, start: int = 0):
        self.nodes = nodes
        self._next = start % nodes

    def place(self) -> int:
        node = self._next
        self._next = (self._next + 1) % self.nodes
        return node


class LeastPopulatedPlacer:
    """Place where the fewest objects currently live — a cheap dynamic
    balance signal read from the per-node statistics."""

    def __init__(self, cluster: SimCluster):
        self._cluster = cluster

    def place(self) -> int:
        def population(node) -> int:
            return (node.stats.objects_created + node.stats.objects_in
                    - node.stats.objects_out)

        best = min(self._cluster.nodes, key=lambda n: (population(n), n.id))
        return best.id


@dataclass(frozen=True)
class MoveSuggestion:
    """One recommended relocation, with the evidence behind it."""

    obj: SimObject
    dest: int
    #: Invocations that arrived from ``dest`` since tracking began.
    remote_count: int
    #: Invocations that were already local at the current location.
    local_count: int

    @property
    def gain(self) -> int:
        """Accesses that would have been local had the object lived at
        ``dest`` minus those that would have become remote."""
        return self.remote_count - self.local_count


class AffinityRebalancer:
    """Suggest moving objects toward the node that invokes them most.

    Reads the kernel's access log (``cluster.access_log``: per object,
    per origin node invocation counts).  An object is suggested for
    relocation when some other node accounts for at least
    ``min_fraction`` of its invocations and at least ``min_accesses``
    were observed.  Threads and attachment non-roots are skipped —
    moving any group member moves the group, so one suggestion per
    group suffices.
    """

    def __init__(self, min_accesses: int = 4, min_fraction: float = 0.5):
        self.min_accesses = min_accesses
        self.min_fraction = min_fraction

    def suggest(self, cluster: SimCluster) -> List[MoveSuggestion]:
        suggestions: List[MoveSuggestion] = []
        seen_groups: set = set()
        for vaddr, by_node in cluster.access_log.items():
            obj = cluster.objects.get(vaddr)
            if obj is None or isinstance(obj, SimThread):
                continue
            if getattr(obj, "_immutable", False):
                continue   # replicate instead of moving read-only data
            location = obj._location
            if location is None:
                continue
            group = tuple(sorted(cluster.attachments.group(vaddr)))
            if len(group) > 1:
                if group in seen_groups:
                    continue
                seen_groups.add(group)
            total = sum(by_node.values())
            if total < self.min_accesses:
                continue
            best_node, best_count = max(
                by_node.items(), key=lambda item: (item[1], -item[0]))
            if best_node == location:
                continue
            if best_count / total < self.min_fraction:
                continue
            suggestions.append(MoveSuggestion(
                obj=obj, dest=best_node, remote_count=best_count,
                local_count=by_node.get(location, 0)))
        suggestions.sort(key=lambda s: -s.gain)
        return suggestions

    def reset_log(self, cluster: SimCluster) -> None:
        """Forget history — call at phase boundaries so stale affinity
        does not dominate the next phase."""
        cluster.access_log.clear()
