"""Placement advisors over the simulated cluster.

All advisors are pure policy: they read cluster state and *suggest*;
the program decides and moves.  See the package docstring for why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.sim.cluster import SimCluster
from repro.sim.node import SimNode
from repro.sim.objects import SimObject
from repro.sim.thread import SimThread


class RoundRobinPlacer:
    """Spread new objects evenly: the classic static load-balancing
    choice for regular problems (it is exactly how the SOR program lays
    out its sections)."""

    def __init__(self, nodes: int, start: int = 0) -> None:
        self.nodes = nodes
        self._next = start % nodes

    def place(self) -> int:
        node = self._next
        self._next = (self._next + 1) % self.nodes
        return node


class LeastPopulatedPlacer:
    """Place where the fewest objects currently live — a cheap dynamic
    balance signal read from the per-node statistics."""

    def __init__(self, cluster: SimCluster) -> None:
        self._cluster = cluster

    def place(self) -> int:
        def population(node: SimNode) -> int:
            return (node.stats.objects_created + node.stats.objects_in
                    - node.stats.objects_out)

        best = min(self._cluster.nodes, key=lambda n: (population(n), n.id))
        return best.id


@dataclass(frozen=True)
class MoveSuggestion:
    """One recommended relocation, with the evidence behind it."""

    obj: SimObject
    dest: int
    #: Invocations that arrived from ``dest`` since tracking began.
    remote_count: int
    #: Invocations that were already local at the current location.
    local_count: int

    @property
    def gain(self) -> int:
        """Accesses that would have been local had the object lived at
        ``dest`` minus those that would have become remote."""
        return self.remote_count - self.local_count


class AffinityRebalancer:
    """Suggest moving objects toward the node that invokes them most.

    Reads the kernel's access log (``cluster.access_log``: per object,
    per origin node invocation counts).  An object is suggested for
    relocation when some other node accounts for at least
    ``min_fraction`` of its invocations and at least ``min_accesses``
    were observed.  Threads and attachment non-roots are skipped —
    moving any group member moves the group, so one suggestion per
    group suffices.
    """

    def __init__(self, min_accesses: int = 4,
                 min_fraction: float = 0.5) -> None:
        self.min_accesses = min_accesses
        self.min_fraction = min_fraction

    def suggest(self, cluster: SimCluster) -> List[MoveSuggestion]:
        suggestions: List[MoveSuggestion] = []
        seen_groups: Set[Tuple[int, ...]] = set()
        for vaddr, by_node in cluster.access_log.items():
            obj = cluster.objects.get(vaddr)
            if obj is None or isinstance(obj, SimThread):
                continue
            if getattr(obj, "_immutable", False):
                continue   # replicate instead of moving read-only data
            location = obj._location
            if location is None:
                continue
            group = tuple(sorted(cluster.attachments.group(vaddr)))
            if len(group) > 1:
                if group in seen_groups:
                    continue
                seen_groups.add(group)
            total = sum(by_node.values())
            if total < self.min_accesses:
                continue
            best_node, best_count = max(
                by_node.items(), key=lambda item: (item[1], -item[0]))
            if best_node == location:
                continue
            if best_count / total < self.min_fraction:
                continue
            suggestions.append(MoveSuggestion(
                obj=obj, dest=best_node, remote_count=best_count,
                local_count=by_node.get(location, 0)))
        suggestions.sort(key=lambda s: -s.gain)
        return suggestions

    def reset_log(self, cluster: SimCluster) -> None:
        """Forget history — call at phase boundaries so stale affinity
        does not dominate the next phase."""
        cluster.access_log.clear()


# ---------------------------------------------------------------------------
# Class-level placement policies (consulted at object-creation time)
# ---------------------------------------------------------------------------


class PlacementPolicy:
    """Base policy: honor the program's own choices.

    Apps that opt in consult a policy for every creation-time decision:
    ``node_for`` maps (class name, instance index, the program's own
    default) to a node, and ``replicate`` decides whether a class's
    instances get ``SetImmutable`` treatment.  The base class passes
    every ``default`` through unchanged, so running an app with the
    default policy is bit-identical to running it without one —
    placement stays under explicit program control (§2.3) unless a
    policy deliberately overrides it."""

    def node_for(self, cls: str, index: int, default: Optional[int],
                 count: Optional[int] = None) -> Optional[int]:
        """Node for instance ``index`` of ``cls`` (``count`` instances
        total, when the program knows).  ``None`` means "wherever the
        creating thread runs"."""
        return default

    def replicate(self, cls: str, default: bool) -> bool:
        """Whether instances of ``cls`` should be made immutable and
        replicated on first remote use."""
        return default


class SpreadPlacement(PlacementPolicy):
    """The static default: round-robin every class, replicate nothing.

    This is the knowledge-free baseline the AmberFlow ablation compares
    against — reasonable load balance, zero locality insight."""

    def __init__(self, nodes: int) -> None:
        self.nodes = max(1, nodes)

    def node_for(self, cls: str, index: int, default: Optional[int],
                 count: Optional[int] = None) -> Optional[int]:
        return index % self.nodes

    def replicate(self, cls: str, default: bool) -> bool:
        return False


class HintedPlacement(PlacementPolicy):
    """Placement driven by an AmberFlow ``PlacementHints`` artifact.

    ``hints`` may be the artifact object itself (anything with an
    ``as_dict()``) or the parsed JSON dict; this module deliberately
    does not import :mod:`repro.analyze` — the artifact schema is the
    contract.  A missing, stale (wrong ``schema``), or malformed
    artifact disables the policy entirely: every decision goes to
    ``fallback`` (the base pass-through policy when not given).
    Classes the artifact does not mention also fall back.

    Hint kinds map to decisions:

    * ``spread``/``round-robin`` — instance ``index % nodes``;
    * ``spread``/``block`` — ``index * nodes // count`` (neighbors
      share a node; needs ``count``, else round-robin);
    * ``hub``/``move`` — the program's default (stay put, let function
      shipping or an explicit ``MoveTo`` do the work);
    * ``replicate`` — ``replicate()`` answers True.
    """

    SCHEMA = "amberflow-hints/1"

    def __init__(self, hints: Any, nodes: int,
                 fallback: Optional[PlacementPolicy] = None) -> None:
        self.nodes = max(1, nodes)
        self.fallback: PlacementPolicy = (
            fallback if fallback is not None else PlacementPolicy())
        self._spread: Dict[str, str] = {}
        self._stay: Set[str] = set()        # hub + move classes
        self._replicate: Set[str] = set()
        self.stale = True
        raw: Any = hints
        as_dict = getattr(raw, "as_dict", None)
        if callable(as_dict):
            raw = as_dict()
        if not isinstance(raw, Mapping) or \
                raw.get("schema") != self.SCHEMA:
            return
        self.stale = False
        for hint in raw.get("hints", ()):
            if not isinstance(hint, Mapping):
                continue
            kind = str(hint.get("kind", ""))
            cls = str(hint.get("cls", ""))
            if not cls:
                continue
            if kind == "spread":
                strategy = str(hint.get("strategy") or "round-robin")
                self._spread[cls] = strategy
            elif kind in ("hub", "move"):
                self._stay.add(cls)
            elif kind == "replicate":
                self._replicate.add(cls)

    def knows(self, cls: str) -> bool:
        """Whether the artifact says anything about ``cls``."""
        return (not self.stale
                and (cls in self._spread or cls in self._stay
                     or cls in self._replicate))

    def node_for(self, cls: str, index: int, default: Optional[int],
                 count: Optional[int] = None) -> Optional[int]:
        if self.stale:
            return self.fallback.node_for(cls, index, default, count)
        strategy = self._spread.get(cls)
        if strategy is not None:
            if strategy == "block" and count:
                return (index * self.nodes) // count
            return index % self.nodes
        if cls in self._stay or cls in self._replicate:
            return default
        return self.fallback.node_for(cls, index, default, count)

    def replicate(self, cls: str, default: bool) -> bool:
        if self.stale:
            return self.fallback.replicate(cls, default)
        if cls in self._replicate:
            return True
        if cls in self._spread or cls in self._stay:
            return False
        return self.fallback.replicate(cls, default)
