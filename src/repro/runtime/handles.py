"""Handles: the uniform object references of the live runtime.

A :class:`Handle` is what programs hold instead of raw objects — the
analogue of an Amber virtual address.  Attribute access returns a bound
remote method, so ``handle.add(5)`` invokes ``add`` wherever the object
currently lives (function shipping).  Handles pickle to just their
address and rebind to the local kernel when unpickled, which is what
makes references transmissible across node boundaries with uniform
semantics (section 3.1).
"""

from __future__ import annotations

from typing import Any

from repro.runtime import objects as _objects


class Handle:
    """A location-transparent reference to an Amber object."""

    __slots__ = ("vaddr",)

    def __init__(self, vaddr: int):
        self.vaddr = vaddr

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self, name)

    def __reduce__(self):
        return (Handle, (self.vaddr,))

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Handle) and other.vaddr == self.vaddr

    def __hash__(self) -> int:
        return hash(("amber-handle", self.vaddr))

    def __repr__(self) -> str:
        return f"<Handle {self.vaddr:#x}>"


class _RemoteMethod:
    __slots__ = ("_handle", "_name")

    def __init__(self, handle: Handle, name: str):
        self._handle = handle
        self._name = name

    def __call__(self, *args, **kwargs):
        kernel = _objects.process_kernel()
        return kernel.invoke(self._handle.vaddr, self._name, args, kwargs)

    def __repr__(self) -> str:
        return f"<remote {self._name} of {self._handle!r}>"
