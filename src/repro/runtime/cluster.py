"""Cluster bootstrap and the driver-side API of the live runtime.

The driver process is node 0: it runs the coordinator (a thread), its own
:class:`~repro.runtime.kernel.NodeKernel`, and the user's program.  Nodes
1..N-1 are child processes (fork start method, so classes defined in the
driver script are visible everywhere).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, Optional

from repro.core.address_space import DEFAULT_REGION_BYTES
from repro.errors import ClusterError
from repro.obs.metrics import MetricsRegistry
from repro.recovery.config import peer_timeout_s
from repro.runtime.coordinator import Coordinator, CoordinatorClient
from repro.runtime.handles import Handle
from repro.runtime.kernel import NodeKernel, ThreadHandle
from repro.runtime.node import node_main


class Cluster:
    """A running Amber cluster.

    Use as a context manager; everything is torn down on exit::

        with Cluster(nodes=4) as cluster:
            counter = cluster.create(Counter, node=2)
            counter.add(1)
    """

    def __init__(self, nodes: int = 2,
                 region_bytes: int = DEFAULT_REGION_BYTES,
                 start_timeout: Optional[float] = None,
                 chaos=None):
        if nodes < 1:
            raise ClusterError("a cluster needs at least one node")
        if start_timeout is None:
            # REPRO_PEER_TIMEOUT_S scales every peer-wait in the live
            # runtime (see repro.recovery.config).
            start_timeout = peer_timeout_s()
        self.num_nodes = nodes
        self._region_bytes = region_bytes
        #: Optional frozen FaultPlan: every node's mesh (driver
        #: included) gets a seeded LiveFaultInjector, and
        #: :meth:`start_chaos` runs the plan's kill/restart schedule.
        self._chaos = chaos
        self._chaos_controller = None
        self._coordinator = Coordinator(nodes, region_bytes)
        self._context = multiprocessing.get_context("fork")
        self._processes: Dict[int, multiprocessing.Process] = {}
        for node_id in range(1, nodes):
            self._spawn_node(node_id)
        self._client = CoordinatorClient(self._coordinator.address,
                                         region_bytes)
        self.kernel = NodeKernel(0, self._client, chaos=chaos)
        self._client.on_directory = self.kernel.mesh.set_directory
        self._client.register(0, self.kernel.mesh.address)
        self._client.start_heartbeats(0)
        directory = self._client.wait_directory(timeout=start_timeout)
        self.kernel.mesh.set_directory(directory)
        self._alive = True
        #: Wall-clock latency histograms for driver-side operations
        #: (``invoke_us``, ``move_us``, ``locate_us``, ``create_us``).
        self.metrics = MetricsRegistry()

    def _spawn_node(self, node_id: int) -> None:
        process = self._context.Process(
            target=node_main,
            args=(node_id, self._coordinator.address,
                  self._region_bytes, self._chaos),
            name=f"amber-node-{node_id}", daemon=True)
        process.start()
        self._processes[node_id] = process

    # -- program-facing API -------------------------------------------------

    def create(self, cls: type, *args, node: Optional[int] = None,
               **kwargs) -> Handle:
        """Create an object of ``cls``; on ``node`` if given, else here."""
        self._check_node(node)
        with self._timed("create_us"):
            return self.kernel.create(cls, args, kwargs, node)

    def call(self, handle: Handle, method: str, *args, **kwargs) -> Any:
        """Synchronous invocation (``handle.method(...)`` sugar does the
        same thing)."""
        with self._timed("invoke_us"):
            return self.kernel.invoke(handle.vaddr, method, args, kwargs)

    def fork(self, handle: Handle, method: str, *args,
             **kwargs) -> ThreadHandle:
        """Start an Amber thread running ``method`` on the object; join
        it with ``.join()``."""
        return self.kernel.fork(handle.vaddr, method, args, kwargs)

    def move(self, handle: Handle, node: int) -> None:
        """MoveTo: relocate the object and its attachment group
        (immutable objects are copied instead)."""
        self._check_node(node)
        with self._timed("move_us"):
            self.kernel.move(handle.vaddr, node)

    def locate(self, handle: Handle) -> int:
        with self._timed("locate_us"):
            return self.kernel.locate(handle.vaddr)

    def set_immutable(self, handle: Handle) -> None:
        self.kernel.control(handle.vaddr, "set_immutable")

    def attach(self, handle: Handle, to: Handle) -> None:
        self.kernel.control(handle.vaddr, "attach", to.vaddr)

    def unattach(self, handle: Handle) -> None:
        self.kernel.control(handle.vaddr, "unattach")

    def delete(self, handle: Handle) -> None:
        self.kernel.control(handle.vaddr, "delete")

    def node_stats(self, node: int) -> Dict[str, int]:
        """Kernel counters of one node (invocations, forwards, moves...)."""
        self._check_node(node)
        return self.kernel.node_stats(node)

    def failed_peers(self) -> set:
        """Nodes the coordinator's failure detector currently suspects
        dead (heartbeat silence past the grace window).  Detection only:
        invocations routed at a suspect node still time out rather than
        recover — see docs/RECOVERY.md for the simulator's full story."""
        return self._client.failed_peers()

    # -- chaos (docs/CHAOS.md) ----------------------------------------------

    def start_chaos(self):
        """Start executing the fault plan's kill/restart schedule
        against this cluster's node processes.  Returns the
        :class:`~repro.faults.live.ChaosController` (``stop()``/
        ``join()`` it, or let ``shutdown`` stop it)."""
        if self._chaos is None:
            raise ClusterError("cluster was started without a fault plan")
        from repro.faults.live import ChaosController
        self._chaos_controller = ChaosController(self, self._chaos).start()
        return self._chaos_controller

    def kill_node(self, node: int) -> None:
        """SIGKILL one non-driver node's process: fail-stop, no goodbye
        frames — the failure detector and the request deadlines own the
        aftermath."""
        if not 1 <= node < self.num_nodes:
            raise ClusterError(f"cannot kill node {node}")
        process = self._processes.get(node)
        if process is None or not process.is_alive():
            return
        process.kill()
        process.join(timeout=5)

    def restart_node(self, node: int) -> None:
        """Fork a replacement process for a killed node.  It re-registers
        with the coordinator (fresh mesh address), which rebroadcasts the
        directory so survivors redial it."""
        if not 1 <= node < self.num_nodes:
            raise ClusterError(f"cannot restart node {node}")
        old = self._processes.get(node)
        if old is not None and old.is_alive():
            return
        self._spawn_node(node)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        if not self._alive:
            return
        self._alive = False
        if self._chaos_controller is not None:
            self._chaos_controller.stop()
        self._coordinator.broadcast_shutdown()
        for process in self._processes.values():
            process.join(timeout=5)
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=2)
        self.kernel.shutdown()
        self._client.close()
        self._coordinator.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _timed(self, metric: str):
        """Context manager observing wall-clock latency into ``metric``."""
        return _Timed(self.metrics, metric)

    def _check_node(self, node: Optional[int]) -> None:
        if node is not None and not 0 <= node < self.num_nodes:
            raise ClusterError(
                f"no such node {node} (cluster has {self.num_nodes})")


class _Timed:
    """Times a block and records it, in microseconds, on exit."""

    def __init__(self, metrics: MetricsRegistry, name: str):
        self._metrics = metrics
        self._name = name

    def __enter__(self) -> "_Timed":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._metrics.observe(self._name,
                              (time.perf_counter() - self._t0) * 1e6)
