"""The coordinator: the address-space server plus cluster bootstrap.

One coordinator runs (as a thread) in the driver process.  It plays the
role of the paper's *address-space server* (section 3.1): the single
authority handing out disjoint regions of the global address space, and
answering "who owns the region containing this address?" queries (the
home-node derivation of section 3.3).  It also brokers startup — nodes
register their mesh addresses and receive the full directory once
everyone has arrived — and fans out shutdown.

It is additionally the live runtime's *failure detector*: every node
heartbeats over its coordinator connection, and a monitor thread
broadcasts :class:`~repro.runtime.messages.PeerStatus` verdicts when a
node falls silent past the grace window (``REPRO_PEER_TIMEOUT_S / 10``)
or comes back.  Detection only — recovery of a dead node's objects is
implemented in the deterministic simulator (``docs/RECOVERY.md``).
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, Optional, Tuple

from repro.core.address_space import (
    DEFAULT_REGION_BYTES,
    AddressSpaceServer,
    Region,
)
from repro.errors import AddressSpaceError, ClusterError
from repro.recovery.config import heartbeat_grace_s, peer_timeout_s
from repro.runtime import messages as m
from repro.runtime.transport import recv_frame, send_frame


class Coordinator:
    """Serves registration, region grants, and region queries."""

    def __init__(self, expected_nodes: int,
                 region_bytes: int = DEFAULT_REGION_BYTES,
                 host: str = "127.0.0.1",
                 grace_s: Optional[float] = None):
        self.expected_nodes = expected_nodes
        self.server = AddressSpaceServer(region_bytes)
        #: Heartbeat silence tolerated before a node is declared suspect.
        self.grace_s = heartbeat_grace_s() if grace_s is None else grace_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(expected_nodes + 4)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._lock = threading.Lock()
        self._registered: Dict[int, Tuple[str, int]] = {}
        self._connections: Dict[int, socket.socket] = {}
        #: node -> wall clock of its last heartbeat; only nodes that
        #: have heartbeated at least once are monitored.
        self._last_heard: Dict[int, float] = {}
        self._suspected: set = set()
        #: Serializes all outbound frames: replies come from per-node
        #: serve threads, verdicts from the monitor thread — interleaved
        #: writes to one socket would corrupt the framing.
        self._send_guard = threading.Lock()
        self._closing = threading.Event()
        threading.Thread(target=self._accept_loop, daemon=True,
                         name="coordinator-accept").start()
        threading.Thread(target=self._monitor_loop, daemon=True,
                         name="coordinator-monitor").start()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             daemon=True, name="coordinator-serve").start()

    def _serve(self, conn: socket.socket) -> None:
        node: Optional[int] = None
        try:
            while True:
                message = recv_frame(conn)
                if isinstance(message, m.RegisterNode):
                    node = message.node
                    with self._lock:
                        stale = self._connections.get(node)
                        if stale is not None and stale is not conn:
                            # The node came back (restart): adopt the
                            # new connection, drop the dead one.
                            try:
                                stale.close()
                            except OSError:
                                pass
                        self._registered[node] = message.address
                        self._connections[node] = conn
                        complete = (len(self._registered)
                                    == self.expected_nodes)
                        directory = dict(self._registered)
                        connections = list(self._connections.values())
                    if complete:
                        # A re-registration after completion rebroadcasts
                        # so survivors learn the replacement address.
                        for peer in connections:
                            try:
                                with self._send_guard:
                                    send_frame(peer,
                                               m.NodeDirectory(directory))
                            except OSError:
                                # One dead peer must not starve the rest
                                # of the directory update.
                                continue
                elif isinstance(message, m.Heartbeat):
                    self._heard(message.node)
                elif isinstance(message, m.RegionRequest):
                    region = self.server.grant_region(message.node)
                    with self._send_guard:
                        send_frame(conn, m.RegionGrant(
                            message.request_id, region.base, region.size,
                            region.owner_node))
                elif isinstance(message, m.RegionQuery):
                    try:
                        region = self.server.region_for(message.address)
                        answer = m.RegionAnswer(
                            message.request_id, region.base, region.size,
                            region.owner_node)
                    except AddressSpaceError:
                        answer = m.RegionAnswer(message.request_id,
                                                0, 0, -1)
                    with self._send_guard:
                        send_frame(conn, answer)
        except (ConnectionError, OSError, EOFError):
            return
        finally:
            conn.close()

    # -- failure detection ------------------------------------------------

    def _heard(self, node: int) -> None:
        with self._lock:
            self._last_heard[node] = time.monotonic()
            rejoined = node in self._suspected
            if rejoined:
                self._suspected.discard(node)
        if rejoined:
            self._broadcast(m.PeerStatus(node, alive=True))

    def _monitor_loop(self) -> None:
        """Declare suspect any heartbeating node silent past the grace
        window; retraction happens in :meth:`_heard`."""
        interval = max(self.grace_s / 4.0, 0.01)
        while not self._closing.wait(interval):
            now = time.monotonic()
            verdicts = []
            with self._lock:
                for node, last in self._last_heard.items():
                    silence = now - last
                    if silence > self.grace_s \
                            and node not in self._suspected:
                        self._suspected.add(node)
                        verdicts.append(
                            m.PeerStatus(node, alive=False,
                                         silence_s=silence))
            for verdict in verdicts:
                self._broadcast(verdict)

    def suspected_nodes(self) -> set:
        """Current verdicts (for tests and the driver)."""
        with self._lock:
            return set(self._suspected)

    def _broadcast(self, message) -> None:
        with self._lock:
            connections = list(self._connections.values())
        for conn in connections:
            try:
                with self._send_guard:
                    send_frame(conn, message)
            except OSError:
                continue

    def broadcast_shutdown(self) -> None:
        self._broadcast(m.Shutdown())

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass


class CoordinatorClient:
    """Per-process client; also duck-types the address-space server
    interface :class:`~repro.core.address_space.NodeHeap` expects
    (``grant_region`` / ``region_bytes``)."""

    def __init__(self, address: Tuple[str, int],
                 region_bytes: int = DEFAULT_REGION_BYTES):
        self.region_bytes = region_bytes
        self._sock = socket.create_connection(address, timeout=10)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._pending: Dict[int, "queue.SimpleQueue"] = {}
        self._next_request = 1
        self._request_lock = threading.Lock()
        self._directory: "queue.SimpleQueue" = queue.SimpleQueue()
        self.shutdown_event = threading.Event()
        #: node -> last PeerStatus verdict (False = suspected dead).
        self.peer_status: Dict[int, bool] = {}
        #: Set the first time any peer is suspected (tests/wait hooks).
        self.peer_failure_event = threading.Event()
        self._heartbeat_stop = threading.Event()
        threading.Thread(target=self._reader, daemon=True,
                         name="coordinator-client").start()

    def _reader(self) -> None:
        try:
            while True:
                message = recv_frame(self._sock)
                if isinstance(message, m.NodeDirectory):
                    self._directory.put(message.addresses)
                elif isinstance(message, (m.RegionGrant, m.RegionAnswer)):
                    box = self._pending.pop(message.request_id, None)
                    if box is not None:
                        box.put(message)
                elif isinstance(message, m.PeerStatus):
                    self.peer_status[message.node] = message.alive
                    if not message.alive:
                        self.peer_failure_event.set()
                elif isinstance(message, m.Shutdown):
                    self.shutdown_event.set()
        except (ConnectionError, OSError, EOFError):
            self.shutdown_event.set()

    def _request(self, build) -> object:
        with self._request_lock:
            request_id = self._next_request
            self._next_request += 1
        box: "queue.SimpleQueue" = queue.SimpleQueue()
        self._pending[request_id] = box
        with self._send_lock:
            send_frame(self._sock, build(request_id))
        try:
            return box.get(timeout=peer_timeout_s())
        except queue.Empty:
            raise ClusterError("coordinator did not answer") from None

    def register(self, node: int, address: Tuple[str, int]) -> None:
        with self._send_lock:
            send_frame(self._sock, m.RegisterNode(node, address))

    def wait_directory(self, timeout: Optional[float] = None
                       ) -> Dict[int, Tuple[str, int]]:
        if timeout is None:
            timeout = peer_timeout_s()
        try:
            return self._directory.get(timeout=timeout)
        except queue.Empty:
            raise ClusterError(
                "cluster did not finish registering in time") from None

    # -- failure detection ------------------------------------------------

    def start_heartbeats(self, node: int,
                         interval_s: Optional[float] = None) -> None:
        """Send :class:`~repro.runtime.messages.Heartbeat` for ``node``
        every ``interval_s`` (default: a third of the grace window, so a
        single dropped beat never triggers suspicion)."""
        if interval_s is None:
            interval_s = heartbeat_grace_s() / 3.0
        self._beat(node)

        def loop() -> None:
            while not self._heartbeat_stop.wait(interval_s) \
                    and not self.shutdown_event.is_set():
                try:
                    self._beat(node)
                except OSError:
                    return

        threading.Thread(target=loop, daemon=True,
                         name=f"heartbeat-{node}").start()

    def _beat(self, node: int) -> None:
        with self._send_lock:
            send_frame(self._sock, m.Heartbeat(node))

    def failed_peers(self) -> set:
        """Nodes currently suspected dead by the coordinator."""
        return {node for node, alive in self.peer_status.items()
                if not alive}

    # -- AddressSpaceServer interface for NodeHeap ------------------------

    def grant_region(self, node: int) -> Region:
        answer = self._request(lambda rid: m.RegionRequest(rid, node))
        return Region(answer.base, answer.size, answer.owner)

    def query_region(self, address: int) -> Optional[Region]:
        answer = self._request(
            lambda rid: m.RegionQuery(rid, -1, address))
        if answer.owner < 0:
            return None
        return Region(answer.base, answer.size, answer.owner)

    def close(self) -> None:
        self._heartbeat_stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
