"""The coordinator: the address-space server plus cluster bootstrap.

One coordinator runs (as a thread) in the driver process.  It plays the
role of the paper's *address-space server* (section 3.1): the single
authority handing out disjoint regions of the global address space, and
answering "who owns the region containing this address?" queries (the
home-node derivation of section 3.3).  It also brokers startup — nodes
register their mesh addresses and receive the full directory once
everyone has arrived — and fans out shutdown.

It is additionally the live runtime's *failure detector*: every node
heartbeats over its coordinator connection, and a monitor thread
broadcasts :class:`~repro.runtime.messages.PeerStatus` verdicts when a
node falls silent past the grace window (``REPRO_PEER_TIMEOUT_S / 10``)
or comes back.  Detection only — recovery of a dead node's objects is
implemented in the deterministic simulator (``docs/RECOVERY.md``).

The coordinator is *restartable*: a successor can adopt the old
incarnation's address-space ``server`` (so regions granted before the
outage stay authoritative) and bind the old ``port``.
:class:`CoordinatorClient` survives the outage — it reconnects with
backoff, re-registers, and resumes heartbeats; requests in flight
during the outage fail with a typed
:class:`~repro.errors.ClusterError` instead of deadlocking (see
``docs/CHAOS.md``).
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
import weakref
from typing import Callable, Dict, Optional, Tuple

from repro.core.address_space import (
    DEFAULT_REGION_BYTES,
    AddressSpaceServer,
    Region,
)
from repro.errors import AddressSpaceError, ClusterError
from repro.recovery.config import heartbeat_grace_s, peer_timeout_s
from repro.runtime import messages as m
from repro.runtime.transport import recv_frame, send_frame


def _close_listener_at_fork(coordinator: "Coordinator") -> None:
    """Close this coordinator's listening socket in forked children.

    ``os.register_at_fork`` handlers cannot be unregistered, so hold the
    coordinator only weakly: a dead one costs a no-op per fork."""
    ref = weakref.ref(coordinator)

    def _in_child() -> None:
        owner = ref()
        if owner is not None:
            try:
                owner._listener.close()
            except OSError:
                pass

    os.register_at_fork(after_in_child=_in_child)


class Coordinator:
    """Serves registration, region grants, and region queries."""

    def __init__(self, expected_nodes: int,
                 region_bytes: int = DEFAULT_REGION_BYTES,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 grace_s: Optional[float] = None,
                 server: Optional[AddressSpaceServer] = None):
        self.expected_nodes = expected_nodes
        #: A restarted coordinator adopts its predecessor's server so
        #: regions granted before the outage stay authoritative.
        self.server = AddressSpaceServer(region_bytes) \
            if server is None else server
        #: Heartbeat silence tolerated before a node is declared suspect.
        self.grace_s = heartbeat_grace_s() if grace_s is None else grace_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(expected_nodes + 4)
        # Forked node processes inherit this listening fd; unless they
        # close it, the port stays in LISTEN after our close() and a
        # successor coordinator cannot rebind it (chaos scenario:
        # coordinator restart on its old port, docs/CHAOS.md).
        _close_listener_at_fork(self)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._lock = threading.Lock()
        self._registered: Dict[int, Tuple[str, int]] = {}
        self._connections: Dict[int, socket.socket] = {}
        #: Every accepted connection, registered or not — close() must
        #: sever them all so no serve thread outlives the incarnation.
        self._serve_conns: set = set()
        #: node -> wall clock of its last heartbeat; only nodes that
        #: have heartbeated at least once are monitored.
        self._last_heard: Dict[int, float] = {}
        self._suspected: set = set()
        #: Serializes all outbound frames: replies come from per-node
        #: serve threads, verdicts from the monitor thread — interleaved
        #: writes to one socket would corrupt the framing.
        self._send_guard = threading.Lock()
        self._closing = threading.Event()
        threading.Thread(target=self._accept_loop, daemon=True,
                         name="coordinator-accept").start()
        threading.Thread(target=self._monitor_loop, daemon=True,
                         name="coordinator-monitor").start()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                if self._closing.is_set():
                    # Raced a dial against close(): a dying incarnation
                    # must not adopt clients (they should reconnect to
                    # the successor instead).
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                self._serve_conns.add(conn)
            threading.Thread(target=self._serve, args=(conn,),
                             daemon=True, name="coordinator-serve").start()

    def _serve(self, conn: socket.socket) -> None:
        node: Optional[int] = None
        try:
            while not self._closing.is_set():
                message = recv_frame(conn)
                if isinstance(message, m.RegisterNode):
                    node = message.node
                    with self._lock:
                        stale = self._connections.get(node)
                        if stale is not None and stale is not conn:
                            # The node came back (restart): adopt the
                            # new connection, drop the dead one.
                            try:
                                stale.close()
                            except OSError:
                                pass
                        self._registered[node] = message.address
                        self._connections[node] = conn
                        complete = (len(self._registered)
                                    == self.expected_nodes)
                        directory = dict(self._registered)
                        connections = list(self._connections.values())
                    if complete:
                        # A re-registration after completion rebroadcasts
                        # so survivors learn the replacement address.
                        for peer in connections:
                            try:
                                with self._send_guard:
                                    send_frame(peer,
                                               m.NodeDirectory(directory))
                            except OSError:
                                # One dead peer must not starve the rest
                                # of the directory update.
                                continue
                elif isinstance(message, m.Heartbeat):
                    self._heard(message.node)
                elif isinstance(message, m.RegionRequest):
                    region = self.server.grant_region(message.node)
                    with self._send_guard:
                        send_frame(conn, m.RegionGrant(
                            message.request_id, region.base, region.size,
                            region.owner_node))
                elif isinstance(message, m.RegionQuery):
                    try:
                        region = self.server.region_for(message.address)
                        answer = m.RegionAnswer(
                            message.request_id, region.base, region.size,
                            region.owner_node)
                    except AddressSpaceError:
                        answer = m.RegionAnswer(message.request_id,
                                                0, 0, -1)
                    with self._send_guard:
                        send_frame(conn, answer)
        except (ConnectionError, OSError, EOFError):
            return
        finally:
            with self._lock:
                self._serve_conns.discard(conn)
            conn.close()

    # -- failure detection ------------------------------------------------

    def _heard(self, node: int) -> None:
        with self._lock:
            self._last_heard[node] = time.monotonic()
            rejoined = node in self._suspected
            if rejoined:
                self._suspected.discard(node)
        if rejoined:
            self._broadcast(m.PeerStatus(node, alive=True))

    def _monitor_loop(self) -> None:
        """Declare suspect any heartbeating node silent past the grace
        window; retraction happens in :meth:`_heard`."""
        interval = max(self.grace_s / 4.0, 0.01)
        while not self._closing.wait(interval):
            now = time.monotonic()
            verdicts = []
            with self._lock:
                for node, last in self._last_heard.items():
                    silence = now - last
                    if silence > self.grace_s \
                            and node not in self._suspected:
                        self._suspected.add(node)
                        verdicts.append(
                            m.PeerStatus(node, alive=False,
                                         silence_s=silence))
            for verdict in verdicts:
                self._broadcast(verdict)

    def suspected_nodes(self) -> set:
        """Current verdicts (for tests and the driver)."""
        with self._lock:
            return set(self._suspected)

    def _broadcast(self, message) -> None:
        with self._lock:
            connections = list(self._connections.values())
        for conn in connections:
            try:
                with self._send_guard:
                    send_frame(conn, message)
            except OSError:
                continue

    def broadcast_shutdown(self) -> None:
        self._broadcast(m.Shutdown())

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        # Drop the serve connections too — every accepted socket, not
        # just the registered ones: clients must *see* the outage (and a
        # successor must be able to rebind the port) rather than staying
        # adopted by a dead incarnation's serve threads.
        with self._lock:
            connections = list(self._serve_conns
                               | set(self._connections.values()))
            self._serve_conns.clear()
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


#: Client reconnect backoff (doubles per attempt, capped).
RECONNECT_BACKOFF_BASE_S = 0.05
RECONNECT_BACKOFF_CAP_S = 1.0


class CoordinatorClient:
    """Per-process client; also duck-types the address-space server
    interface :class:`~repro.core.address_space.NodeHeap` expects
    (``grant_region`` / ``region_bytes``)."""

    def __init__(self, address: Tuple[str, int],
                 region_bytes: int = DEFAULT_REGION_BYTES):
        self.region_bytes = region_bytes
        self._address = address
        self._sock = socket.create_connection(address, timeout=10)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._pending: Dict[int, "queue.SimpleQueue"] = {}
        self._next_request = 1
        self._request_lock = threading.Lock()
        self._directory: "queue.SimpleQueue" = queue.SimpleQueue()
        #: Optional callback for *every* NodeDirectory (including
        #: mid-run rebroadcasts after a node restart) — the live node
        #: wires it to ``Mesh.set_directory``.
        self.on_directory: Optional[Callable[[Dict], None]] = None
        self.shutdown_event = threading.Event()
        self._closed = threading.Event()
        #: Cleared while the coordinator link is down (reconnecting):
        #: requests started in that window fail fast and typed instead
        #: of waiting out a deadline nobody will answer.
        self._connected = threading.Event()
        self._connected.set()
        #: node -> last PeerStatus verdict (False = suspected dead).
        self.peer_status: Dict[int, bool] = {}
        #: Set the first time any peer is suspected (tests/wait hooks).
        self.peer_failure_event = threading.Event()
        self._heartbeat_stop = threading.Event()
        #: Remembered for automatic re-registration after a reconnect.
        self._registration: Optional[Tuple[int, Tuple[str, int]]] = None
        self.stats: Dict[str, int] = {"coordinator_reconnects": 0}
        threading.Thread(target=self._reader, daemon=True,
                         name="coordinator-client").start()

    def _reader(self) -> None:
        while True:
            try:
                while True:
                    message = recv_frame(self._sock)
                    if isinstance(message, m.NodeDirectory):
                        self._directory.put(message.addresses)
                        callback = self.on_directory
                        if callback is not None:
                            try:
                                callback(message.addresses)
                            except Exception:   # pragma: no cover
                                pass
                    elif isinstance(message,
                                    (m.RegionGrant, m.RegionAnswer)):
                        box = self._pending.pop(message.request_id, None)
                        if box is not None:
                            box.put(message)
                    elif isinstance(message, m.PeerStatus):
                        self.peer_status[message.node] = message.alive
                        if not message.alive:
                            self.peer_failure_event.set()
                    elif isinstance(message, m.Shutdown):
                        self.shutdown_event.set()
            except (ConnectionError, OSError, EOFError):
                pass
            if self._closed.is_set() or self.shutdown_event.is_set():
                self.shutdown_event.set()
                return
            # The coordinator went away mid-run: fail what is waiting
            # (typed, not a deadlock), then try to come back.
            self._connected.clear()
            self._fail_pending(
                ClusterError("coordinator connection lost"))
            if not self._reconnect():
                self.shutdown_event.set()
                return

    def _fail_pending(self, error: Exception) -> None:
        while self._pending:
            try:
                _, box = self._pending.popitem()
            except KeyError:    # pragma: no cover - racing reader
                break
            box.put(error)

    def _reconnect(self) -> bool:
        """Redial the coordinator with backoff until it answers (then
        re-register) or the peer-timeout budget is exhausted."""
        deadline = time.monotonic() + peer_timeout_s()
        backoff = RECONNECT_BACKOFF_BASE_S
        while not self._closed.is_set() \
                and not self.shutdown_event.is_set():
            if time.monotonic() > deadline:
                return False
            try:
                sock = socket.create_connection(self._address,
                                                timeout=2.0)
            except OSError:
                if self._closed.wait(backoff):
                    return False
                backoff = min(backoff * 2.0, RECONNECT_BACKOFF_CAP_S)
                continue
            sock.settimeout(None)
            with self._send_lock:
                old, self._sock = self._sock, sock
            try:
                old.close()
            except OSError:
                pass
            self.stats["coordinator_reconnects"] += 1
            registration = self._registration
            if registration is not None:
                try:
                    self.register(*registration)
                except OSError:
                    continue   # died again mid-handshake; keep dialing
            self._connected.set()
            return True
        return False

    def _request(self, build) -> object:
        if not self._connected.is_set():
            raise ClusterError(
                "coordinator unreachable (reconnecting)")
        with self._request_lock:
            request_id = self._next_request
            self._next_request += 1
        box: "queue.SimpleQueue" = queue.SimpleQueue()
        self._pending[request_id] = box
        try:
            with self._send_lock:
                send_frame(self._sock, build(request_id))
        except OSError as error:
            self._pending.pop(request_id, None)
            raise ClusterError(
                f"coordinator unreachable: {error}") from error
        try:
            answer = box.get(timeout=peer_timeout_s())
        except queue.Empty:
            self._pending.pop(request_id, None)
            raise ClusterError("coordinator did not answer") from None
        if isinstance(answer, Exception):
            raise answer
        return answer

    def register(self, node: int, address: Tuple[str, int]) -> None:
        self._registration = (node, address)
        with self._send_lock:
            send_frame(self._sock, m.RegisterNode(node, address))

    def wait_directory(self, timeout: Optional[float] = None
                       ) -> Dict[int, Tuple[str, int]]:
        if timeout is None:
            timeout = peer_timeout_s()
        try:
            return self._directory.get(timeout=timeout)
        except queue.Empty:
            raise ClusterError(
                "cluster did not finish registering in time") from None

    # -- failure detection ------------------------------------------------

    def start_heartbeats(self, node: int,
                         interval_s: Optional[float] = None) -> None:
        """Send :class:`~repro.runtime.messages.Heartbeat` for ``node``
        every ``interval_s`` (default: a third of the grace window, so a
        single dropped beat never triggers suspicion)."""
        if interval_s is None:
            interval_s = heartbeat_grace_s() / 3.0
        self._beat(node)

        def loop() -> None:
            while not self._heartbeat_stop.wait(interval_s) \
                    and not self.shutdown_event.is_set():
                try:
                    self._beat(node)
                except OSError:
                    # Coordinator outage: the reader thread is already
                    # reconnecting; skip this beat and keep the loop
                    # alive so heartbeats *resume* once it succeeds.
                    continue

        threading.Thread(target=loop, daemon=True,
                         name=f"heartbeat-{node}").start()

    def _beat(self, node: int) -> None:
        with self._send_lock:
            send_frame(self._sock, m.Heartbeat(node))

    def failed_peers(self) -> set:
        """Nodes currently suspected dead by the coordinator."""
        return {node for node, alive in self.peer_status.items()
                if not alive}

    # -- AddressSpaceServer interface for NodeHeap ------------------------

    def grant_region(self, node: int) -> Region:
        answer = self._request(lambda rid: m.RegionRequest(rid, node))
        return Region(answer.base, answer.size, answer.owner)

    def query_region(self, address: int) -> Optional[Region]:
        answer = self._request(
            lambda rid: m.RegionQuery(rid, -1, address))
        if answer.owner < 0:
            return None
        return Region(answer.base, answer.size, answer.owner)

    def close(self) -> None:
        self._closed.set()
        self._heartbeat_stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
