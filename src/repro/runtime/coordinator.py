"""The coordinator: the address-space server plus cluster bootstrap.

One coordinator runs (as a thread) in the driver process.  It plays the
role of the paper's *address-space server* (section 3.1): the single
authority handing out disjoint regions of the global address space, and
answering "who owns the region containing this address?" queries (the
home-node derivation of section 3.3).  It also brokers startup — nodes
register their mesh addresses and receive the full directory once
everyone has arrived — and fans out shutdown.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Dict, Optional, Tuple

from repro.core.address_space import (
    DEFAULT_REGION_BYTES,
    AddressSpaceServer,
    Region,
)
from repro.errors import AddressSpaceError, ClusterError
from repro.runtime import messages as m
from repro.runtime.transport import recv_frame, send_frame


class Coordinator:
    """Serves registration, region grants, and region queries."""

    def __init__(self, expected_nodes: int,
                 region_bytes: int = DEFAULT_REGION_BYTES,
                 host: str = "127.0.0.1"):
        self.expected_nodes = expected_nodes
        self.server = AddressSpaceServer(region_bytes)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(expected_nodes + 4)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._lock = threading.Lock()
        self._registered: Dict[int, Tuple[str, int]] = {}
        self._connections: Dict[int, socket.socket] = {}
        self._closing = threading.Event()
        threading.Thread(target=self._accept_loop, daemon=True,
                         name="coordinator-accept").start()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             daemon=True, name="coordinator-serve").start()

    def _serve(self, conn: socket.socket) -> None:
        node: Optional[int] = None
        try:
            while True:
                message = recv_frame(conn)
                if isinstance(message, m.RegisterNode):
                    node = message.node
                    with self._lock:
                        stale = self._connections.get(node)
                        if stale is not None and stale is not conn:
                            # The node came back (restart): adopt the
                            # new connection, drop the dead one.
                            try:
                                stale.close()
                            except OSError:
                                pass
                        self._registered[node] = message.address
                        self._connections[node] = conn
                        complete = (len(self._registered)
                                    == self.expected_nodes)
                        directory = dict(self._registered)
                        connections = list(self._connections.values())
                    if complete:
                        # A re-registration after completion rebroadcasts
                        # so survivors learn the replacement address.
                        for peer in connections:
                            try:
                                send_frame(peer, m.NodeDirectory(directory))
                            except OSError:
                                # One dead peer must not starve the rest
                                # of the directory update.
                                continue
                elif isinstance(message, m.RegionRequest):
                    region = self.server.grant_region(message.node)
                    send_frame(conn, m.RegionGrant(
                        message.request_id, region.base, region.size,
                        region.owner_node))
                elif isinstance(message, m.RegionQuery):
                    try:
                        region = self.server.region_for(message.address)
                        send_frame(conn, m.RegionAnswer(
                            message.request_id, region.base, region.size,
                            region.owner_node))
                    except AddressSpaceError:
                        send_frame(conn, m.RegionAnswer(
                            message.request_id, 0, 0, -1))
        except (ConnectionError, OSError, EOFError):
            return
        finally:
            conn.close()

    def broadcast_shutdown(self) -> None:
        with self._lock:
            connections = list(self._connections.values())
        for conn in connections:
            try:
                send_frame(conn, m.Shutdown())
            except OSError:
                pass

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass


class CoordinatorClient:
    """Per-process client; also duck-types the address-space server
    interface :class:`~repro.core.address_space.NodeHeap` expects
    (``grant_region`` / ``region_bytes``)."""

    def __init__(self, address: Tuple[str, int],
                 region_bytes: int = DEFAULT_REGION_BYTES):
        self.region_bytes = region_bytes
        self._sock = socket.create_connection(address, timeout=10)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._pending: Dict[int, "queue.SimpleQueue"] = {}
        self._next_request = 1
        self._request_lock = threading.Lock()
        self._directory: "queue.SimpleQueue" = queue.SimpleQueue()
        self.shutdown_event = threading.Event()
        threading.Thread(target=self._reader, daemon=True,
                         name="coordinator-client").start()

    def _reader(self) -> None:
        try:
            while True:
                message = recv_frame(self._sock)
                if isinstance(message, m.NodeDirectory):
                    self._directory.put(message.addresses)
                elif isinstance(message, (m.RegionGrant, m.RegionAnswer)):
                    box = self._pending.pop(message.request_id, None)
                    if box is not None:
                        box.put(message)
                elif isinstance(message, m.Shutdown):
                    self.shutdown_event.set()
        except (ConnectionError, OSError, EOFError):
            self.shutdown_event.set()

    def _request(self, build) -> object:
        with self._request_lock:
            request_id = self._next_request
            self._next_request += 1
        box: "queue.SimpleQueue" = queue.SimpleQueue()
        self._pending[request_id] = box
        with self._send_lock:
            send_frame(self._sock, build(request_id))
        try:
            return box.get(timeout=30)
        except queue.Empty:
            raise ClusterError("coordinator did not answer") from None

    def register(self, node: int, address: Tuple[str, int]) -> None:
        with self._send_lock:
            send_frame(self._sock, m.RegisterNode(node, address))

    def wait_directory(self, timeout: float = 30.0
                       ) -> Dict[int, Tuple[str, int]]:
        try:
            return self._directory.get(timeout=timeout)
        except queue.Empty:
            raise ClusterError(
                "cluster did not finish registering in time") from None

    # -- AddressSpaceServer interface for NodeHeap ------------------------

    def grant_region(self, node: int) -> Region:
        answer = self._request(lambda rid: m.RegionRequest(rid, node))
        return Region(answer.base, answer.size, answer.owner)

    def query_region(self, address: int) -> Optional[Region]:
        answer = self._request(
            lambda rid: m.RegionQuery(rid, -1, address))
        if answer.owner < 0:
            return None
        return Region(answer.base, answer.size, answer.owner)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
