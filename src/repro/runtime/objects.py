"""Base class and ambient context for live-runtime Amber objects.

Live-runtime operations are ordinary Python methods — no generators, no
``ctx`` argument.  Objects must derive from :class:`AmberObject`: the
kernel refuses anything else, because the whole distribution model rests
on data being reachable only through invocations (section 3.6's warning
about C++ escape hatches applies verbatim to Python attribute access —
inside a node Python will happily let you touch a resident neighbour, and
across nodes there is simply no object there to touch).

Inside an operation, :func:`current_node` reports where it is executing
and :func:`current_kernel` exposes the node kernel (used by the sync
classes to block/wake worker threads).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import AmberError

_ambient = threading.local()
_process_kernel: Optional[object] = None


class AmberObject:
    """Base class for all distributable objects in the live runtime.

    Kernel-managed attributes (never touch them from user code):
    ``_amber_vaddr`` (global address), ``_amber_home`` (home node),
    ``_amber_immutable``.
    """

    _amber_vaddr: int = -1
    _amber_home: int = -1
    _amber_immutable: bool = False

    @property
    def amber_vaddr(self) -> int:
        return self._amber_vaddr


def set_process_kernel(kernel) -> None:
    """Install the (single) kernel of this OS process; Handles bind to it
    when unpickled."""
    global _process_kernel
    _process_kernel = kernel


def process_kernel():
    if _process_kernel is None:
        raise AmberError("no Amber kernel is running in this process")
    return _process_kernel


def current_node() -> int:
    """The node this code is executing on."""
    return process_kernel().node_id


def current_kernel():
    return process_kernel()
