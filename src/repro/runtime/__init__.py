"""The live Amber runtime: one OS process per node, pickle over sockets.

Where :mod:`repro.sim` reproduces the paper's *measurements*, this backend
demonstrates the programming model actually working on commodity
machines: a network-wide object space with function-shipping invocation,
forwarding-address chains with home-node fallback, explicit mobility
(``move``/``locate``/``attach``/immutable replication), threads with
Start/Join, and distributed synchronization objects — all running across
real processes connected by a localhost TCP mesh.

Usage::

    from repro.runtime import AmberObject, Cluster

    class Counter(AmberObject):
        def __init__(self):
            self.value = 0

        def add(self, n):
            self.value += n
            return self.value

    with Cluster(nodes=3) as cluster:
        counter = cluster.create(Counter, node=1)
        counter.add(5)                 # executes on node 1
        cluster.move(counter, 2)       # explicit mobility
        thread = cluster.fork(counter, "add", 7)
        print(thread.join())           # -> 12

Faithfulness notes (also in DESIGN.md): a Python stack cannot be copied
between processes, so a *logical* Amber thread is realized as a chain of
shipped activations — each remote invocation executes at the object's
node while the upstream activations wait, which preserves the observable
semantics of thread migration.  ``move`` drains active invocations of the
moving group instead of migrating threads mid-operation (the simulated
backend implements the paper's full §3.5 protocol).
"""

from repro.runtime.cluster import Cluster
from repro.runtime.handles import Handle
from repro.runtime.objects import AmberObject, current_node
from repro.runtime.sync import Barrier, CondVar, Lock, RendezvousQueue

__all__ = [
    "AmberObject",
    "Barrier",
    "Cluster",
    "CondVar",
    "Handle",
    "Lock",
    "RendezvousQueue",
    "current_node",
]
