"""The per-node kernel of the live runtime.

Each OS process runs exactly one :class:`NodeKernel`.  It owns the node's
slice of the global object space: the object table, the descriptor table
(resident / forwarding / uninitialized — reusing the core model), the
attachment graph for resident groups, and a heap fed by region grants
from the coordinator (the address-space server of section 3.1).

Invocation is function shipping: a non-resident target sends the
activation to the believed holder, chasing forwarding chains hop by hop
with home-node fallback; the node that finally executes sends
:class:`LocationHint` messages back along the chase path (path caching).
Every executing invocation holds a *bind count* on its object; ``move``
drains the group's bind counts before shipping state (see the package
docstring for why this stands in for §3.5's bound-thread migration).
"""

from __future__ import annotations

import itertools
import logging
import pickle
import queue
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from repro.core.address_space import NodeHeap, Region
from repro.core.attachment import AttachmentGraph
from repro.core.descriptor import DescriptorTable
from repro.errors import (
    AmberError,
    AttachmentError,
    ImmutabilityError,
    MobilityError,
    NodeFailure,
    ObjectNotFoundError,
    RemoteInvocationError,
)
from repro.recovery.config import reply_timeout_s
from repro.runtime import messages as m
from repro.runtime.handles import Handle
from repro.runtime.objects import AmberObject, set_process_kernel
from repro.runtime.transport import Mesh

#: Forwarding-chase guard (generous: chains are short, but a move's
#: install window can bounce a request a few times).
MAX_TRACE = 256

#: Seconds a move waits for active invocations of the group to drain.
MOVE_DRAIN_TIMEOUT = 30.0

#: Ceiling on waiting for any reply.  Every request is guaranteed an
#: answer (even pickling failures reply with an error), so hitting this
#: indicates a lost peer; better a TimeoutError than a silent hang.
#: Derived from REPRO_PEER_TIMEOUT_S (default 30 s -> 120 s here); see
#: repro.recovery.config.
DEFAULT_REPLY_TIMEOUT = reply_timeout_s()

log = logging.getLogger(__name__)


class ThreadHandle:
    """A started Amber thread: an outstanding shipped activation."""

    def __init__(self, kernel: "NodeKernel", request_id: int,
                 description: str):
        self._kernel = kernel
        self._request_id = request_id
        self.description = description

    def join(self, timeout: Optional[float] = None):
        """Wait for the thread to finish; returns its result or re-raises
        its exception (like the Join primitive)."""
        return self._kernel.wait_reply(self._request_id, timeout)

    def __repr__(self) -> str:
        return f"<ThreadHandle {self.description}>"


class NodeKernel:
    def __init__(self, node_id: int, coordinator_client):
        self.node_id = node_id
        self._coord = coordinator_client
        self.mesh = Mesh(node_id, self._on_message)
        self._state = threading.RLock()
        self._drained = threading.Condition(self._state)
        self._objects: Dict[int, AmberObject] = {}
        self._descriptors = DescriptorTable(node_id)
        self._attachments = AttachmentGraph()
        self._bind: Dict[int, int] = {}
        self._regions: Dict[int, Region] = {}
        self._heap = NodeHeap(node_id, coordinator_client,
                              on_grant=self._record_region)
        self._pending: Dict[int, "queue.SimpleQueue"] = {}
        self._request_ids = itertools.count(node_id, 1_000_003)
        self.stats: Dict[str, int] = {
            "local_invocations": 0,
            "remote_invocations": 0,
            "invocations_executed": 0,
            "forwards": 0,
            "moves_in": 0,
            "moves_out": 0,
            "replicas_installed": 0,
            "hints": 0,
        }
        set_process_kernel(self)

    # ------------------------------------------------------------------
    # Public API (used by Cluster and by code inside operations)
    # ------------------------------------------------------------------

    def create(self, cls: type, args: Tuple, kwargs: dict,
               node: Optional[int] = None) -> Handle:
        """Create an object (locally, or on ``node``)."""
        if node is None or node == self.node_id:
            return Handle(self._create_local(cls, args, kwargs))
        request_id, box = self._new_request()
        self.mesh.send(node, m.CreateMsg(request_id, self.node_id,
                                         cls, args, kwargs))
        return Handle(self._await(box, request_id=request_id))

    def invoke(self, vaddr: int, method: str, args: Tuple,
               kwargs: dict) -> Any:
        """Invoke ``method`` on the object at ``vaddr`` (synchronously,
        wherever it lives)."""
        obj = self._resident_object(vaddr)
        if obj is not None:
            self.stats["local_invocations"] += 1
            return self._execute(obj, method, args, kwargs)
        self.stats["remote_invocations"] += 1
        request_id, box = self._new_request()
        message = m.InvokeMsg(request_id, self.node_id, vaddr, method,
                              args, kwargs, trace=(self.node_id,))
        self.mesh.send(self._believed(vaddr), message)
        return self._await(box, request_id=request_id)

    def fork(self, vaddr: int, method: str, args: Tuple,
             kwargs: dict) -> ThreadHandle:
        """Start an Amber thread running ``method`` on the object; it
        executes at the object's node."""
        request_id, box = self._new_request()
        message = m.InvokeMsg(request_id, self.node_id, vaddr, method,
                              args, kwargs, trace=(self.node_id,))
        target = self._believed(vaddr) if self._resident_object(vaddr) \
            is None else self.node_id
        self.mesh.send(target, message)
        return ThreadHandle(self, request_id, f"{method}@{vaddr:#x}")

    def move(self, vaddr: int, dest: int) -> None:
        """MoveTo: relocate the object (and its attachment group)."""
        request_id, box = self._new_request()
        message = m.MoveMsg(request_id, self.node_id, vaddr, dest)
        self.mesh.send(self._believed_or_here(vaddr), message)
        self._await(box, request_id=request_id)

    def locate(self, vaddr: int) -> int:
        """Locate: the node where the object currently resides."""
        if self._resident_object(vaddr) is not None:
            return self.node_id
        request_id, box = self._new_request()
        self.mesh.send(self._believed(vaddr),
                       m.LocateMsg(request_id, self.node_id, vaddr,
                                   trace=(self.node_id,)))
        return self._await(box, request_id=request_id)

    def control(self, vaddr: int, op: str, extra: Any = None) -> Any:
        """Routed kernel operation on an object: ``set_immutable``,
        ``attach``, ``unattach``, ``delete``."""
        request_id, box = self._new_request()
        message = m.ControlMsg(request_id, self.node_id, vaddr, op, extra)
        self.mesh.send(self._believed_or_here(vaddr), message)
        return self._await(box, request_id=request_id)

    def node_stats(self, node: int) -> Dict[str, int]:
        if node == self.node_id:
            return self._stats_snapshot()
        request_id, box = self._new_request()
        self.mesh.send(node, m.ControlMsg(request_id, self.node_id,
                                          -1, "stats", None))
        return self._await(box, request_id=request_id)

    def _stats_snapshot(self) -> Dict[str, int]:
        """Kernel counters plus the mesh's, as ``transport_*`` keys."""
        snapshot = dict(self.stats)
        for key, value in self.mesh.stats.items():
            snapshot[f"transport_{key}"] = value
        return snapshot

    def wait_reply(self, request_id: int,
                   timeout: Optional[float] = None) -> Any:
        box = self._pending.get(request_id)
        if box is None:
            raise AmberError(f"unknown request id {request_id}")
        return self._await(box, timeout, request_id)

    def shutdown(self) -> None:
        self.mesh.close()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _new_request(self) -> Tuple[int, "queue.SimpleQueue"]:
        request_id = next(self._request_ids)
        box: "queue.SimpleQueue" = queue.SimpleQueue()
        self._pending[request_id] = box
        return request_id, box

    def _await(self, box: "queue.SimpleQueue",
               timeout: Optional[float] = None,
               request_id: Optional[int] = None) -> Any:
        try:
            ok, value, error = box.get(
                timeout=DEFAULT_REPLY_TIMEOUT if timeout is None
                else timeout)
        except queue.Empty:
            raise TimeoutError("no reply within timeout") from None
        finally:
            if request_id is not None:
                self._pending.pop(request_id, None)
        if ok:
            return value
        raise error

    def _reply(self, to_node: int, request_id: int, value: Any) -> None:
        try:
            self.mesh.send(to_node, m.ResultMsg(request_id, True, value))
        except Exception as error:
            # Most often: the result is not picklable.  The caller must
            # still get an answer or it would wait forever.
            self._reply_error(
                to_node, request_id,
                RemoteInvocationError(
                    f"result could not be transmitted: "
                    f"{type(error).__name__}: {error}"))

    def _reply_error(self, to_node: int, request_id: int,
                     error: BaseException) -> None:
        try:
            pickle.dumps(error)
        except (KeyboardInterrupt, SystemExit):
            raise
        except (pickle.PicklingError, TypeError, AttributeError,
                RecursionError) as pickling_error:
            # The error itself cannot cross the wire (unpicklable
            # payload, custom __reduce__, cyclic state ...).  Replace it
            # with a picklable stand-in so the caller still gets an
            # answer, and say so — silently swapping exception types has
            # burned enough debugging hours already.
            log.warning(
                "node %d: %s for request %d is not picklable (%s: %s); "
                "replying with a RemoteInvocationError stand-in",
                self.node_id, type(error).__name__, request_id,
                type(pickling_error).__name__, pickling_error)
            error = RemoteInvocationError(
                f"{type(error).__name__}: {error}",
                remote_traceback=traceback.format_exc())
        self.mesh.send(to_node,
                       m.ResultMsg(request_id, False, None, error))

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    def _resident_object(self, vaddr: int) -> Optional[AmberObject]:
        with self._state:
            if self._descriptors.is_resident(vaddr):
                return self._objects.get(vaddr)
        return None

    def _believed(self, vaddr: int) -> int:
        """Where to send a request for a non-resident object."""
        with self._state:
            descriptor = self._descriptors.lookup(vaddr)
        if descriptor is not None and not descriptor.resident:
            return descriptor.forward_to
        home = self._home_node(vaddr)
        if home == self.node_id:
            raise ObjectNotFoundError(
                f"object {vaddr:#x} unknown at its home node "
                f"{self.node_id}")
        return home

    def _believed_or_here(self, vaddr: int) -> int:
        return (self.node_id if self._resident_object(vaddr) is not None
                else self._believed(vaddr))

    def _home_node(self, vaddr: int) -> int:
        for region in self._regions.values():
            if region.contains(vaddr):
                return region.owner_node
        region = self._coord.query_region(vaddr)
        if region is None:
            raise ObjectNotFoundError(
                f"address {vaddr:#x} lies in no granted region")
        self._record_region(region)
        return region.owner_node

    def _record_region(self, region: Region) -> None:
        self._regions[region.base] = region

    # ------------------------------------------------------------------
    # Object management
    # ------------------------------------------------------------------

    def _create_local(self, cls: type, args: Tuple, kwargs: dict) -> int:
        obj = cls(*args, **kwargs)
        if not isinstance(obj, AmberObject):
            raise AmberError(
                f"{cls.__name__} does not derive from AmberObject")
        with self._state:
            vaddr = self._heap.allocate(64)
            obj._amber_vaddr = vaddr
            obj._amber_home = self.node_id
            self._objects[vaddr] = obj
            self._descriptors.set_resident(vaddr)
        return vaddr

    def _execute(self, obj: AmberObject, method: str, args: Tuple,
                 kwargs: dict) -> Any:
        fn = getattr(obj, method, None)
        if fn is None or not callable(fn):
            raise AmberError(
                f"{type(obj).__name__} has no operation {method!r}")
        vaddr = obj._amber_vaddr
        with self._state:
            self._bind[vaddr] = self._bind.get(vaddr, 0) + 1
        try:
            self.stats["invocations_executed"] += 1
            return fn(*args, **kwargs)
        finally:
            with self._state:
                self._bind[vaddr] -= 1
                if self._bind[vaddr] == 0:
                    del self._bind[vaddr]
                    self._drained.notify_all()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    _INLINE = (m.ResultMsg, m.InstallAck, m.LocationHint)

    def _on_message(self, peer: int, message: Any) -> None:
        if isinstance(message, m.ResultMsg):
            box = self._pending.get(message.request_id)
            if box is not None:
                box.put((message.ok, message.value, message.error))
            return
        if isinstance(message, m.LocationHint):
            with self._state:
                self._descriptors.update_hint(message.vaddr, message.node)
            self.stats["hints"] += 1
            return
        # Everything else may block: run it on its own worker thread.
        threading.Thread(target=self._dispatch, args=(message,),
                         name=f"amber-worker-{self.node_id}",
                         daemon=True).start()

    def _dispatch(self, message: Any) -> None:
        try:
            if isinstance(message, m.InvokeMsg):
                self._handle_invoke(message)
            elif isinstance(message, m.CreateMsg):
                self._handle_create(message)
            elif isinstance(message, m.MoveMsg):
                self._handle_move(message)
            elif isinstance(message, m.InstallMsg):
                self._handle_install(message)
            elif isinstance(message, m.LocateMsg):
                self._handle_locate(message)
            elif isinstance(message, m.FetchReplicaMsg):
                self._handle_fetch_replica(message)
            elif isinstance(message, m.ControlMsg):
                self._handle_control(message)
            # Unknown messages are dropped (forward compatibility).
        except (KeyboardInterrupt, SystemExit):
            raise
        except NodeFailure:
            # A dead peer mid-handling is an expected outcome under
            # fault injection; the requester's reply timeout (or the
            # failure detector) owns the recovery story.
            raise
        except Exception as error:  # pragma: no cover - diagnostics
            # A handler bug on a worker thread must not kill the node
            # silently: every request path above replies to its caller
            # before raising, so whatever reaches here is unexpected.
            log.error(
                "node %d: unhandled %s while dispatching %s: %s",
                self.node_id, type(error).__name__,
                type(message).__name__, error)
            log.debug("dispatch traceback:\n%s", traceback.format_exc())

    def _forward(self, message, vaddr: int) -> bool:
        """Forward a routed message one hop along the chain.  Returns
        False (with an error reply) when the chase is hopeless."""
        trace = message.trace + (self.node_id,)
        if len(trace) > MAX_TRACE:
            self._reply_error(message.reply_to, message.request_id,
                              ObjectNotFoundError(
                                  f"object {vaddr:#x}: chase exceeded "
                                  f"{MAX_TRACE} hops"))
            return False
        try:
            target = self._believed(vaddr)
        except ObjectNotFoundError as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return False
        if message.trace and target == message.trace[-1]:
            # Immediate bounce: the object is probably mid-move; let the
            # install land before chasing again.
            time.sleep(0.005)
        self.stats["forwards"] += 1
        self.mesh.send(target,
                       type(message)(**{**message.__dict__,
                                        "trace": trace}))
        return True

    def _send_hints(self, trace: Tuple[int, ...], vaddr: int) -> None:
        for node in trace:
            if node != self.node_id:
                self.mesh.send(node, m.LocationHint(vaddr, self.node_id))

    def _handle_invoke(self, message: m.InvokeMsg) -> None:
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        if len(message.trace) > 1:
            # The request was forwarded at least once: refresh the stale
            # descriptors along the chase path, including the origin's.
            self._send_hints(message.trace, message.vaddr)
        try:
            value = self._execute(obj, message.method, message.args,
                                  message.kwargs)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, value)
        if obj._amber_immutable and message.reply_to != self.node_id:
            # Read-only object invoked remotely: push a replica so the
            # caller's future reads are local (section 2.3).
            self._ship_replica(obj, message.reply_to)

    def _handle_create(self, message: m.CreateMsg) -> None:
        try:
            vaddr = self._create_local(message.cls, message.args,
                                       message.kwargs)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, vaddr)

    def _handle_locate(self, message: m.LocateMsg) -> None:
        if self._resident_object(message.vaddr) is None:
            self._forward(message, message.vaddr)
            return
        if len(message.trace) > 1:
            self._send_hints(message.trace, message.vaddr)
        self._reply(message.reply_to, message.request_id, self.node_id)

    # -- moves and replication ------------------------------------------

    def _handle_move(self, message: m.MoveMsg) -> None:
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        if message.dest == self.node_id:
            self._reply(message.reply_to, message.request_id, None)
            return
        try:
            if obj._amber_immutable:
                self._ship_replica(obj, message.dest, wait_ack=True)
            else:
                self._move_group_out(message.vaddr, message.dest)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, None)

    def _move_group_out(self, vaddr: int, dest: int) -> None:
        deadline = time.monotonic() + MOVE_DRAIN_TIMEOUT
        with self._state:
            group = self._attachments.group(vaddr)
            # Wait for active invocations of every member to drain.
            while any(self._bind.get(member, 0) for member in group):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MobilityError(
                        f"move of {vaddr:#x}: active invocations did not "
                        f"drain within {MOVE_DRAIN_TIMEOUT}s")
                self._drained.wait(remaining)
            shipment: Dict[int, AmberObject] = {}
            edges = []
            for member in group:
                member_obj = self._objects.pop(member, None)
                if member_obj is None:
                    raise MobilityError(
                        f"attachment group of {vaddr:#x} is not fully "
                        f"resident here")
                shipment[member] = member_obj
                for target in self._attachments.attachments_of(member):
                    edges.append((member, target))
            for member in group:
                self._attachments.drop(member)
                self._descriptors.set_forwarding(member, dest)
        request_id, box = self._new_request()
        self.mesh.send(dest, m.InstallMsg(request_id, self.node_id,
                                          shipment, tuple(edges)))
        self._await(box, request_id=request_id)
        self.stats["moves_out"] += 1

    def _ship_replica(self, obj: AmberObject, dest: int,
                      wait_ack: bool = False) -> None:
        request_id, box = self._new_request()
        self.mesh.send(dest, m.InstallMsg(
            request_id, self.node_id, {obj._amber_vaddr: obj}, (),
            replica=True))
        if wait_ack:
            self._await(box, request_id=request_id)
        else:
            self._pending.pop(request_id, None)

    def _handle_install(self, message: m.InstallMsg) -> None:
        with self._state:
            for vaddr, obj in message.objects.items():
                if message.replica and self._descriptors.is_resident(vaddr):
                    continue   # already have a replica
                self._objects[vaddr] = obj
                self._descriptors.set_resident(vaddr)
            for source, target in message.attach_edges:
                self._attachments.attach(source, target)
        if message.replica:
            self.stats["replicas_installed"] += len(message.objects)
        else:
            self.stats["moves_in"] += len(message.objects)
        self.mesh.send(message.reply_to,
                       m.ResultMsg(message.request_id, True, None))

    def _handle_fetch_replica(self, message: m.FetchReplicaMsg) -> None:
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        if not obj._amber_immutable:
            self._reply_error(message.reply_to, message.request_id,
                              ImmutabilityError(
                                  f"object {message.vaddr:#x} is mutable; "
                                  "replicas are only made of immutables"))
            return
        self._ship_replica(obj, message.reply_to)
        self._reply(message.reply_to, message.request_id, None)

    # -- control operations ---------------------------------------------

    def _handle_control(self, message: m.ControlMsg) -> None:
        if message.op == "stats":
            self._reply(message.reply_to, message.request_id,
                        self._stats_snapshot())
            return
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        try:
            value = self._control_resident(obj, message.op, message.extra)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, value)

    def _control_resident(self, obj: AmberObject, op: str,
                          extra: Any) -> Any:
        vaddr = obj._amber_vaddr
        if op == "set_immutable":
            with self._state:
                if self._attachments.group(vaddr) != [vaddr]:
                    raise ImmutabilityError(
                        "detach objects before marking them immutable")
                obj._amber_immutable = True
            return None
        if op == "attach":
            other = extra
            with self._state:
                if not self._descriptors.is_resident(other):
                    raise AttachmentError(
                        "Attach requires co-located objects; "
                        f"{other:#x} is not resident here")
                if obj._amber_immutable or \
                        self._objects[other]._amber_immutable:
                    raise AttachmentError(
                        "immutable (replicated) objects cannot be attached")
                self._attachments.attach(vaddr, other)
            return None
        if op == "unattach":
            with self._state:
                self._attachments.unattach(vaddr)
            return None
        if op == "delete":
            with self._state:
                if self._bind.get(vaddr, 0):
                    raise MobilityError(
                        f"cannot delete {vaddr:#x} during an invocation")
                self._objects.pop(vaddr, None)
                self._descriptors.clear(vaddr)
                self._attachments.drop(vaddr)
            return None
        raise AmberError(f"unknown control op {op!r}")
