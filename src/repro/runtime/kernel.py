"""The per-node kernel of the live runtime.

Each OS process runs exactly one :class:`NodeKernel`.  It owns the node's
slice of the global object space: the object table, the descriptor table
(resident / forwarding / uninitialized — reusing the core model), the
attachment graph for resident groups, and a heap fed by region grants
from the coordinator (the address-space server of section 3.1).

Invocation is function shipping: a non-resident target sends the
activation to the believed holder, chasing forwarding chains hop by hop
with home-node fallback; the node that finally executes sends
:class:`LocationHint` messages back along the chase path (path caching).
Every executing invocation holds a *bind count* on its object; ``move``
drains the group's bind counts before shipping state (see the package
docstring for why this stands in for §3.5's bound-thread migration).
"""

from __future__ import annotations

import itertools
import logging
import pickle
import queue
import random
import threading
import time
import traceback
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.address_space import NodeHeap, Region
from repro.core.attachment import AttachmentGraph
from repro.core.descriptor import DescriptorTable
from repro.errors import (
    AmberError,
    AttachmentError,
    ImmutabilityError,
    MobilityError,
    NodeFailure,
    ObjectNotFoundError,
    RemoteInvocationError,
    RuntimeTransportError,
)
from repro.recovery.config import reply_timeout_s
from repro.runtime import messages as m
from repro.runtime.circuit import OPEN, PeerCircuits
from repro.runtime.handles import Handle
from repro.runtime.objects import AmberObject, set_process_kernel
from repro.runtime.transport import Mesh

#: Forwarding-chase guard (generous: chains are short, but a move's
#: install window can bounce a request a few times).
MAX_TRACE = 256

#: Seconds a move waits for active invocations of the group to drain.
MOVE_DRAIN_TIMEOUT = 30.0

#: Ceiling on waiting for any reply.  Every request is guaranteed an
#: answer (even pickling failures reply with an error), so hitting this
#: indicates a lost peer; better a TimeoutError than a silent hang.
#: Derived from REPRO_PEER_TIMEOUT_S (default 30 s -> 120 s here); see
#: repro.recovery.config.  Kept for documentation/compat; the kernel
#: reads the knob per request so tests and chaos scenarios can tighten
#: it at runtime.
DEFAULT_REPLY_TIMEOUT = reply_timeout_s()

#: Receive-side at-most-once window: completed requests remembered per
#: node (their cached replies are re-sent to duplicate requests).
DEDUP_CAPACITY = 8192

#: Retransmission-timeout bounds for one hardened request, seconds.
#: The base scales with the reply deadline so a tightened
#: REPRO_PEER_TIMEOUT_S tightens the whole ladder.
RTO_MIN_S = 0.05
RTO_MAX_S = 2.0
RTO_CAP_FACTOR = 4.0

log = logging.getLogger(__name__)


def _rto_base_s() -> float:
    return max(RTO_MIN_S, min(RTO_MAX_S, reply_timeout_s() / 24.0))


class _Pending:
    """One outstanding request: its reply box plus everything needed to
    re-send it (lost-request/lost-reply recovery)."""

    __slots__ = ("box", "message", "route", "last_target")

    def __init__(self, message: Any,
                 route: Callable[[], int]):
        self.box: "queue.SimpleQueue" = queue.SimpleQueue()
        self.message = message
        self.route = route
        self.last_target: Optional[int] = None


class _Dedup:
    """Receive-side at-most-once table: ``(origin, request_id)`` ->
    in-progress marker or the cached :class:`~repro.runtime.messages.
    ResultMsg`.  Bounded FIFO — old completions are evicted first."""

    _IN_PROGRESS = object()

    def __init__(self, capacity: int = DEDUP_CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict" = OrderedDict()

    def claim(self, key) -> Tuple[str, Any]:
        """Atomically claim ``key`` for execution.  Returns one of
        ``("new", None)`` (execute it), ``("in_progress", None)`` (a
        twin is executing; drop this copy — its reply is coming), or
        ``("replay", cached_result)`` (already executed; re-send the
        cached reply)."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self._entries[key] = self._IN_PROGRESS
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                return "new", None
            if cached is self._IN_PROGRESS:
                return "in_progress", None
            return "replay", cached

    def peek(self, key) -> Tuple[str, Any]:
        """Non-claiming lookup: ``("absent", None)``, ``("in_progress",
        None)``, or ``("replay", cached_result)``.  Used before routing
        so a duplicate of a request this node already answered is
        replayed even if the object has since moved away."""
        with self._lock:
            cached = self._entries.get(key)
        if cached is None:
            return "absent", None
        if cached is self._IN_PROGRESS:
            return "in_progress", None
        return "replay", cached

    def complete(self, key, result: Any) -> None:
        with self._lock:
            if key not in self._entries:
                while len(self._entries) >= self.capacity:
                    self._entries.popitem(last=False)
            self._entries[key] = result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ThreadHandle:
    """A started Amber thread: an outstanding shipped activation."""

    def __init__(self, kernel: "NodeKernel", request_id: int,
                 description: str):
        self._kernel = kernel
        self._request_id = request_id
        self.description = description

    def join(self, timeout: Optional[float] = None):
        """Wait for the thread to finish; returns its result or re-raises
        its exception (like the Join primitive)."""
        return self._kernel.wait_reply(self._request_id, timeout)

    def __repr__(self) -> str:
        return f"<ThreadHandle {self.description}>"


class NodeKernel:
    def __init__(self, node_id: int, coordinator_client, chaos=None):
        self.node_id = node_id
        self._coord = coordinator_client
        self.chaos = None
        if chaos is not None:
            from repro.faults.live import LiveFaultInjector
            self.chaos = LiveFaultInjector(chaos, node_id)
        self.mesh = Mesh(node_id, self._on_message, chaos=self.chaos)
        self._circuits = PeerCircuits()
        self._dedup = _Dedup()
        self._state = threading.RLock()
        self._drained = threading.Condition(self._state)
        self._objects: Dict[int, AmberObject] = {}
        self._descriptors = DescriptorTable(node_id)
        self._attachments = AttachmentGraph()
        self._bind: Dict[int, int] = {}
        self._regions: Dict[int, Region] = {}
        self._heap = NodeHeap(node_id, coordinator_client,
                              on_grant=self._record_region)
        self._pending: Dict[int, _Pending] = {}
        #: Detached requests (forks nobody has joined yet): request id
        #: -> [next_resend_at, rto_s, give_up_at].  A daemon thread
        #: retransmits these — without it a dropped fork frame is lost
        #: until (and unless) someone calls wait_reply.
        self._detached: Dict[int, list] = {}
        self._detached_lock = threading.Lock()
        self._resender_stop = threading.Event()
        self._request_ids = itertools.count(node_id, 1_000_003)
        #: Jitter source for the resend ladder (seeded per node so test
        #: runs are reproducible).
        self._rng = random.Random(node_id ^ 0x5EED)
        self.stats: Dict[str, int] = {
            "local_invocations": 0,
            "remote_invocations": 0,
            "invocations_executed": 0,
            "forwards": 0,
            "moves_in": 0,
            "moves_out": 0,
            "replicas_installed": 0,
            "hints": 0,
            # Request-lifecycle hardening (docs/CHAOS.md).
            "resends": 0,
            "dedup_in_flight": 0,
            "dedup_replayed": 0,
            "circuit_fast_fails": 0,
            "circuit_reroutes": 0,
        }
        set_process_kernel(self)
        threading.Thread(target=self._resend_detached_loop, daemon=True,
                         name=f"amber-resender-{node_id}").start()

    # ------------------------------------------------------------------
    # Public API (used by Cluster and by code inside operations)
    # ------------------------------------------------------------------

    def create(self, cls: type, args: Tuple, kwargs: dict,
               node: Optional[int] = None) -> Handle:
        """Create an object (locally, or on ``node``)."""
        if node is None or node == self.node_id:
            return Handle(self._create_local(cls, args, kwargs))
        return Handle(self._request(
            lambda rid: m.CreateMsg(rid, self.node_id, cls, args, kwargs),
            self._fixed_router(node)))

    def invoke(self, vaddr: int, method: str, args: Tuple,
               kwargs: dict) -> Any:
        """Invoke ``method`` on the object at ``vaddr`` (synchronously,
        wherever it lives)."""
        obj = self._resident_object(vaddr)
        if obj is not None:
            self.stats["local_invocations"] += 1
            return self._execute(obj, method, args, kwargs)
        self.stats["remote_invocations"] += 1
        return self._request(
            lambda rid: m.InvokeMsg(rid, self.node_id, vaddr, method,
                                    args, kwargs, trace=(self.node_id,)),
            self._router(vaddr))

    def fork(self, vaddr: int, method: str, args: Tuple,
             kwargs: dict) -> ThreadHandle:
        """Start an Amber thread running ``method`` on the object; it
        executes at the object's node."""
        request_id = next(self._request_ids)
        message = m.InvokeMsg(request_id, self.node_id, vaddr, method,
                              args, kwargs, trace=(self.node_id,))
        route = self._router_or_here(vaddr)
        entry = _Pending(message, route)
        self._pending[request_id] = entry
        try:
            self._send_request(entry)
        except (RuntimeTransportError, OSError):
            pass   # transient: the resender daemon owns it
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        # Until someone joins this thread no caller is pumping a resend
        # ladder for it, so hand it to the resender daemon: a dropped
        # fork frame must not wedge until (or unless) join is called.
        now = time.monotonic()
        rto = _rto_base_s()
        with self._detached_lock:
            self._detached[request_id] = [now + rto, rto,
                                          now + reply_timeout_s()]
        return ThreadHandle(self, request_id, f"{method}@{vaddr:#x}")

    def move(self, vaddr: int, dest: int) -> None:
        """MoveTo: relocate the object (and its attachment group)."""
        self._request(
            lambda rid: m.MoveMsg(rid, self.node_id, vaddr, dest),
            self._router_or_here(vaddr))

    def locate(self, vaddr: int) -> int:
        """Locate: the node where the object currently resides."""
        if self._resident_object(vaddr) is not None:
            return self.node_id
        return self._request(
            lambda rid: m.LocateMsg(rid, self.node_id, vaddr,
                                    trace=(self.node_id,)),
            self._router(vaddr))

    def control(self, vaddr: int, op: str, extra: Any = None) -> Any:
        """Routed kernel operation on an object: ``set_immutable``,
        ``attach``, ``unattach``, ``delete``."""
        return self._request(
            lambda rid: m.ControlMsg(rid, self.node_id, vaddr, op, extra),
            self._router_or_here(vaddr))

    def node_stats(self, node: int) -> Dict[str, int]:
        if node == self.node_id:
            return self._stats_snapshot()
        return self._request(
            lambda rid: m.ControlMsg(rid, self.node_id, -1, "stats",
                                     None),
            self._fixed_router(node))

    def _stats_snapshot(self) -> Dict[str, int]:
        """Kernel counters plus the mesh's (as ``transport_*`` keys),
        the circuit breakers', and the chaos layer's."""
        snapshot = dict(self.stats)
        for key, value in self.mesh.stats.items():
            snapshot[f"transport_{key}"] = value
        snapshot.update(self._circuits.stats)
        if self.chaos is not None:
            snapshot.update(self.chaos.stats)
        return snapshot

    def wait_reply(self, request_id: int,
                   timeout: Optional[float] = None) -> Any:
        entry = self._pending.get(request_id)
        if entry is None:
            raise AmberError(f"unknown request id {request_id}")
        with self._detached_lock:
            self._detached.pop(request_id, None)   # the waiter's ladder
            # takes over from the resender daemon
        try:
            return self._await_hardened(entry, timeout)
        finally:
            self._pending.pop(request_id, None)

    def shutdown(self) -> None:
        self._resender_stop.set()
        self.mesh.close()

    def _resend_detached_loop(self) -> None:
        """Retransmit detached requests (started threads nobody joined
        yet) on the same backoff ladder ``_await_hardened`` uses, until
        each is answered, fails typed, or outlives the reply deadline
        (after which a late ``wait_reply`` restarts its own ladder)."""
        while not self._resender_stop.wait(0.05):
            now = time.monotonic()
            with self._detached_lock:
                due = [(rid, state) for rid, state in
                       self._detached.items() if now >= state[0]]
            for request_id, state in due:
                entry = self._pending.get(request_id)
                if entry is None or not entry.box.empty():
                    with self._detached_lock:
                        self._detached.pop(request_id, None)
                    continue
                if now >= state[2]:
                    # Deadline exhausted: stop retransmitting; the
                    # verdict belongs to whoever eventually joins.
                    with self._detached_lock:
                        self._detached.pop(request_id, None)
                    continue
                self.stats["resends"] += 1
                try:
                    self._send_request(entry)
                except (NodeFailure, ObjectNotFoundError) as error:
                    # Typed and definitive: park it in the reply box for
                    # the eventual join.
                    entry.box.put((False, None, error))
                    with self._detached_lock:
                        self._detached.pop(request_id, None)
                    continue
                except (RuntimeTransportError, OSError):
                    pass             # transient: keep the ladder going
                except Exception:    # pragma: no cover - defensive
                    log.debug("detached resend failed", exc_info=True)
                state[1] = min(state[1] * 2.0,
                               _rto_base_s() * RTO_CAP_FACTOR) \
                    * (1.0 + 0.25 * self._rng.random())
                state[0] = now + state[1]

    # ------------------------------------------------------------------
    # Request plumbing: send, re-send with backoff, bounded wait
    # ------------------------------------------------------------------

    def _request(self, build: Callable[[int], Any],
                 route: Callable[[], int],
                 timeout: Optional[float] = None) -> Any:
        """Send one request and wait for its reply, re-sending on a
        backoff ladder until the per-request deadline.

        ``build(request_id)`` constructs the message; ``route()`` names
        the current target node and is re-evaluated on every (re)send,
        so a re-send follows fresh location hints and circuit reroutes.
        The caller is guaranteed a typed outcome within the deadline:
        the reply, the remote error, :class:`NodeFailure` (peer
        suspected dead / circuit open), or :class:`TimeoutError`."""
        request_id = next(self._request_ids)
        entry = _Pending(build(request_id), route)
        self._pending[request_id] = entry
        try:
            try:
                self._send_request(entry)
            except (RuntimeTransportError, OSError):
                # Transient wire failure: the resend ladder owns it.
                # Typed verdicts (NodeFailure from an open circuit,
                # ObjectNotFoundError from routing) propagate above.
                pass
            return self._await_hardened(entry, timeout)
        finally:
            self._pending.pop(request_id, None)

    def _send_request(self, entry: _Pending) -> None:
        """One transmission of a pending request; routing and circuit
        decisions happen here, transport failures feed the breaker."""
        target = entry.route()
        entry.last_target = target
        try:
            self.mesh.send(target, entry.message)
        except (RuntimeTransportError, OSError):
            if target != self.node_id:
                self._circuits.record_failure(target)
            raise

    def _await_hardened(self, entry: _Pending,
                        timeout: Optional[float] = None) -> Any:
        deadline_s = reply_timeout_s() if timeout is None else timeout
        deadline = time.monotonic() + deadline_s
        rto = _rto_base_s()
        rto_cap = rto * RTO_CAP_FACTOR
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise self._deadline_error(entry, deadline_s)
            try:
                ok, value, error = entry.box.get(
                    timeout=min(rto, remaining))
            except queue.Empty:
                if deadline - time.monotonic() <= 0:
                    raise self._deadline_error(entry,
                                               deadline_s) from None
                # The request or its reply may be lost: re-send.  The
                # receive side's at-most-once dedup makes this safe —
                # an in-flight twin is dropped, a completed one gets
                # its cached reply replayed.
                self.stats["resends"] += 1
                try:
                    self._send_request(entry)
                except (NodeFailure, ObjectNotFoundError):
                    raise            # typed and definitive
                except (RuntimeTransportError, OSError):
                    pass             # transient: keep waiting/retrying
                rto = min(rto * 2.0, rto_cap) \
                    * (1.0 + 0.25 * self._rng.random())
                continue
            if ok:
                if entry.last_target not in (None, self.node_id):
                    self._circuits.record_success(entry.last_target)
                return value
            raise error

    def _deadline_error(self, entry: _Pending,
                        deadline_s: float) -> Exception:
        """The typed verdict for a request that exhausted its deadline:
        NodeFailure when the peer is known-bad, TimeoutError otherwise."""
        target = entry.last_target
        if target is not None and target != self.node_id:
            self._circuits.record_failure(target)
            if target in self._suspected_peers():
                return NodeFailure(
                    f"node {self.node_id}: no reply to "
                    f"{type(entry.message).__name__} from node {target} "
                    f"within {deadline_s:.1f}s and the failure detector "
                    f"suspects it dead")
        return TimeoutError(
            f"node {self.node_id}: no reply to "
            f"{type(entry.message).__name__} within {deadline_s:.1f}s")

    # -- routing + circuit breaking ------------------------------------

    def _suspected_peers(self) -> set:
        failed = getattr(self._coord, "failed_peers", None)
        if failed is None:
            return set()
        try:
            return failed()
        except Exception:      # pragma: no cover - defensive
            return set()

    def _router(self, vaddr: int) -> Callable[[], int]:
        def route() -> int:
            return self._check_circuit(self._believed(vaddr), vaddr)
        return route

    def _router_or_here(self, vaddr: int) -> Callable[[], int]:
        def route() -> int:
            if self._resident_object(vaddr) is not None:
                return self.node_id
            return self._check_circuit(self._believed(vaddr), vaddr)
        return route

    def _fixed_router(self, node: int) -> Callable[[], int]:
        def route() -> int:
            return self._check_circuit(node, None)
        return route

    def _check_circuit(self, target: int,
                       vaddr: Optional[int]) -> int:
        """Fail fast (or reroute via the home node) instead of burning
        the full backoff ladder against a peer known to be down."""
        if target == self.node_id:
            return target
        suspected = self._suspected_peers()
        if self._circuits.check(target, target in suspected) != OPEN:
            return target
        if vaddr is not None:
            home = self._home_node(vaddr)
            if home not in (target, self.node_id) and \
                    self._circuits.check(home,
                                         home in suspected) != OPEN:
                self.stats["circuit_reroutes"] += 1
                return home
        self.stats["circuit_fast_fails"] += 1
        raise NodeFailure(
            f"node {self.node_id}: node {target} is unavailable "
            f"(circuit open{', suspected dead' if target in suspected else ''})")

    # -- at-most-once execution (receive side) -------------------------

    def _already_handled(self, message) -> bool:
        """Duplicate-suppression peek, before any routing: a request
        this node already answered is replayed from the reply cache, a
        twin of one still executing is dropped (its reply is coming).
        Non-claiming — the atomic gate is :meth:`_begin_request` at the
        point of execution."""
        status, cached = self._dedup.peek(
            (message.reply_to, message.request_id))
        if status == "replay":
            self.stats["dedup_replayed"] += 1
            self._send_quiet(message.reply_to, cached)
            return True
        if status == "in_progress":
            self.stats["dedup_in_flight"] += 1
            return True
        return False

    def _begin_request(self, message) -> bool:
        """Atomically claim one routed request for execution.  Returns
        True when this copy should execute; False when it was a
        duplicate (dropped, or answered from the reply cache)."""
        status, cached = self._dedup.claim(
            (message.reply_to, message.request_id))
        if status == "new":
            return True
        if status == "replay":
            self.stats["dedup_replayed"] += 1
            self._send_quiet(message.reply_to, cached)
        else:
            self.stats["dedup_in_flight"] += 1
        return False

    def _send_quiet(self, node: int, message: Any) -> None:
        """Best-effort send (replayed replies, location hints): losing
        one is recovered by the sender's own resend ladder."""
        try:
            self.mesh.send(node, message)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            pass

    def _reply(self, to_node: int, request_id: int, value: Any) -> None:
        result = m.ResultMsg(request_id, True, value)
        # Cache before sending: if the reply is lost on the wire, the
        # caller's re-sent request finds it here and replays it.
        self._dedup.complete((to_node, request_id), result)
        try:
            self.mesh.send(to_node, result)
        except Exception as error:
            # Most often: the result is not picklable.  The caller must
            # still get an answer or it would wait forever.
            self._reply_error(
                to_node, request_id,
                RemoteInvocationError(
                    f"result could not be transmitted: "
                    f"{type(error).__name__}: {error}"))

    def _reply_error(self, to_node: int, request_id: int,
                     error: BaseException) -> None:
        try:
            pickle.dumps(error)
        except (KeyboardInterrupt, SystemExit):
            raise
        except (pickle.PicklingError, TypeError, AttributeError,
                RecursionError) as pickling_error:
            # The error itself cannot cross the wire (unpicklable
            # payload, custom __reduce__, cyclic state ...).  Replace it
            # with a picklable stand-in so the caller still gets an
            # answer, and say so — silently swapping exception types has
            # burned enough debugging hours already.
            log.warning(
                "node %d: %s for request %d is not picklable (%s: %s); "
                "replying with a RemoteInvocationError stand-in",
                self.node_id, type(error).__name__, request_id,
                type(pickling_error).__name__, pickling_error)
            error = RemoteInvocationError(
                f"{type(error).__name__}: {error}",
                remote_traceback=traceback.format_exc())
        result = m.ResultMsg(request_id, False, None, error)
        self._dedup.complete((to_node, request_id), result)
        self.mesh.send(to_node, result)

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    def _resident_object(self, vaddr: int) -> Optional[AmberObject]:
        with self._state:
            if self._descriptors.is_resident(vaddr):
                return self._objects.get(vaddr)
        return None

    def _believed(self, vaddr: int) -> int:
        """Where to send a request for a non-resident object."""
        with self._state:
            descriptor = self._descriptors.lookup(vaddr)
        if descriptor is not None and not descriptor.resident:
            return descriptor.forward_to
        home = self._home_node(vaddr)
        if home == self.node_id:
            raise ObjectNotFoundError(
                f"object {vaddr:#x} unknown at its home node "
                f"{self.node_id}")
        return home

    def _believed_or_here(self, vaddr: int) -> int:
        return (self.node_id if self._resident_object(vaddr) is not None
                else self._believed(vaddr))

    def _home_node(self, vaddr: int) -> int:
        for region in self._regions.values():
            if region.contains(vaddr):
                return region.owner_node
        region = self._coord.query_region(vaddr)
        if region is None:
            raise ObjectNotFoundError(
                f"address {vaddr:#x} lies in no granted region")
        self._record_region(region)
        return region.owner_node

    def _record_region(self, region: Region) -> None:
        self._regions[region.base] = region

    # ------------------------------------------------------------------
    # Object management
    # ------------------------------------------------------------------

    def _create_local(self, cls: type, args: Tuple, kwargs: dict) -> int:
        obj = cls(*args, **kwargs)
        if not isinstance(obj, AmberObject):
            raise AmberError(
                f"{cls.__name__} does not derive from AmberObject")
        with self._state:
            vaddr = self._heap.allocate(64)
            obj._amber_vaddr = vaddr
            obj._amber_home = self.node_id
            self._objects[vaddr] = obj
            self._descriptors.set_resident(vaddr)
        return vaddr

    def _execute(self, obj: AmberObject, method: str, args: Tuple,
                 kwargs: dict) -> Any:
        fn = getattr(obj, method, None)
        if fn is None or not callable(fn):
            raise AmberError(
                f"{type(obj).__name__} has no operation {method!r}")
        vaddr = obj._amber_vaddr
        with self._state:
            self._bind[vaddr] = self._bind.get(vaddr, 0) + 1
        try:
            self.stats["invocations_executed"] += 1
            return fn(*args, **kwargs)
        finally:
            with self._state:
                self._bind[vaddr] -= 1
                if self._bind[vaddr] == 0:
                    del self._bind[vaddr]
                    self._drained.notify_all()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    #: Routed requests: carry ``(reply_to, request_id)``, get a reply,
    #: and therefore pass through the at-most-once gate.
    _REQUESTS = (m.InvokeMsg, m.CreateMsg, m.MoveMsg, m.InstallMsg,
                 m.LocateMsg, m.FetchReplicaMsg, m.ControlMsg)

    def _on_message(self, peer: int, message: Any) -> None:
        if isinstance(message, m.ResultMsg):
            entry = self._pending.get(message.request_id)
            if entry is not None:
                # A duplicate/replayed reply just parks a second item in
                # a box nobody reads again; request ids are never reused
                # (a strided counter), so mis-delivery cannot happen.
                entry.box.put((message.ok, message.value, message.error))
            return
        if isinstance(message, m.LocationHint):
            with self._state:
                self._descriptors.update_hint(message.vaddr, message.node)
            self.stats["hints"] += 1
            return
        # Everything else may block: run it on its own worker thread.
        threading.Thread(target=self._dispatch, args=(message,),
                         name=f"amber-worker-{self.node_id}",
                         daemon=True).start()

    def _dispatch(self, message: Any) -> None:
        try:
            if isinstance(message, self._REQUESTS) and \
                    self._already_handled(message):
                return
            if isinstance(message, m.InvokeMsg):
                self._handle_invoke(message)
            elif isinstance(message, m.CreateMsg):
                self._handle_create(message)
            elif isinstance(message, m.MoveMsg):
                self._handle_move(message)
            elif isinstance(message, m.InstallMsg):
                self._handle_install(message)
            elif isinstance(message, m.LocateMsg):
                self._handle_locate(message)
            elif isinstance(message, m.FetchReplicaMsg):
                self._handle_fetch_replica(message)
            elif isinstance(message, m.ControlMsg):
                self._handle_control(message)
            # Unknown messages are dropped (forward compatibility).
        except (KeyboardInterrupt, SystemExit):
            raise
        except NodeFailure:
            # A dead peer mid-handling is an expected outcome under
            # fault injection; the requester's reply timeout (or the
            # failure detector) owns the recovery story.
            raise
        except (RuntimeTransportError, OSError) as error:
            # Expected under chaos (peer gone mid-reply, mesh closing):
            # the requester's resend ladder / deadline owns recovery.
            log.debug(
                "node %d: transport error dispatching %s: %s",
                self.node_id, type(message).__name__, error)
        except Exception as error:  # pragma: no cover - diagnostics
            # A handler bug on a worker thread must not kill the node
            # silently: every request path above replies to its caller
            # before raising, so whatever reaches here is unexpected.
            log.error(
                "node %d: unhandled %s while dispatching %s: %s",
                self.node_id, type(error).__name__,
                type(message).__name__, error)
            log.debug("dispatch traceback:\n%s", traceback.format_exc())

    def _forward(self, message, vaddr: int) -> bool:
        """Forward a routed message one hop along the chain.  Returns
        False (with an error reply) when the chase is hopeless."""
        trace = message.trace + (self.node_id,)
        if len(trace) > MAX_TRACE:
            self._reply_error(message.reply_to, message.request_id,
                              ObjectNotFoundError(
                                  f"object {vaddr:#x}: chase exceeded "
                                  f"{MAX_TRACE} hops"))
            return False
        try:
            target = self._believed(vaddr)
        except ObjectNotFoundError as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return False
        if message.trace and target == message.trace[-1]:
            # Immediate bounce: the object is probably mid-move; let the
            # install land before chasing again.
            time.sleep(0.005)
        self.stats["forwards"] += 1
        try:
            self.mesh.send(target,
                           type(message)(**{**message.__dict__,
                                            "trace": trace}))
        except (RuntimeTransportError, OSError) as error:
            # The next hop is unreachable: tell the breaker and give the
            # origin a typed verdict instead of letting it time out.
            self._circuits.record_failure(target)
            self._reply_error(
                message.reply_to, message.request_id,
                NodeFailure(
                    f"node {self.node_id}: forwarding "
                    f"{type(message).__name__} for {vaddr:#x} to node "
                    f"{target} failed: {error}"))
            return False
        return True

    def _send_hints(self, trace: Tuple[int, ...], vaddr: int) -> None:
        for node in trace:
            if node != self.node_id:
                # Hints are an optimization; an unreachable chase-path
                # node must not abort the invocation being answered.
                self._send_quiet(node, m.LocationHint(vaddr, self.node_id))

    def _handle_invoke(self, message: m.InvokeMsg) -> None:
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        if not self._begin_request(message):
            return
        if len(message.trace) > 1:
            # The request was forwarded at least once: refresh the stale
            # descriptors along the chase path, including the origin's.
            self._send_hints(message.trace, message.vaddr)
        try:
            value = self._execute(obj, message.method, message.args,
                                  message.kwargs)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, value)
        if obj._amber_immutable and message.reply_to != self.node_id:
            # Read-only object invoked remotely: push a replica so the
            # caller's future reads are local (section 2.3).
            self._ship_replica(obj, message.reply_to)

    def _handle_create(self, message: m.CreateMsg) -> None:
        if not self._begin_request(message):
            return
        try:
            vaddr = self._create_local(message.cls, message.args,
                                       message.kwargs)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, vaddr)

    def _handle_locate(self, message: m.LocateMsg) -> None:
        if self._resident_object(message.vaddr) is None:
            self._forward(message, message.vaddr)
            return
        if not self._begin_request(message):
            return
        if len(message.trace) > 1:
            self._send_hints(message.trace, message.vaddr)
        self._reply(message.reply_to, message.request_id, self.node_id)

    # -- moves and replication ------------------------------------------

    def _handle_move(self, message: m.MoveMsg) -> None:
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        if not self._begin_request(message):
            return
        if message.dest == self.node_id:
            self._reply(message.reply_to, message.request_id, None)
            return
        try:
            if obj._amber_immutable:
                self._ship_replica(obj, message.dest, wait_ack=True)
            else:
                self._move_group_out(message.vaddr, message.dest)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, None)

    def _move_group_out(self, vaddr: int, dest: int) -> None:
        deadline = time.monotonic() + MOVE_DRAIN_TIMEOUT
        with self._state:
            group = self._attachments.group(vaddr)
            # Wait for active invocations of every member to drain.
            while any(self._bind.get(member, 0) for member in group):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MobilityError(
                        f"move of {vaddr:#x}: active invocations did not "
                        f"drain within {MOVE_DRAIN_TIMEOUT}s")
                self._drained.wait(remaining)
            shipment: Dict[int, AmberObject] = {}
            edges = []
            for member in group:
                member_obj = self._objects.pop(member, None)
                if member_obj is None:
                    raise MobilityError(
                        f"attachment group of {vaddr:#x} is not fully "
                        f"resident here")
                shipment[member] = member_obj
                for target in self._attachments.attachments_of(member):
                    edges.append((member, target))
            for member in group:
                self._attachments.drop(member)
                self._descriptors.set_forwarding(member, dest)
        # The install is a hardened request of its own: re-sent on
        # silence (the receiver's dedup makes a duplicate install a
        # cached-reply replay), typed failure on a dead destination.
        self._request(
            lambda rid: m.InstallMsg(rid, self.node_id, shipment,
                                     tuple(edges)),
            self._fixed_router(dest))
        self.stats["moves_out"] += 1

    def _ship_replica(self, obj: AmberObject, dest: int,
                      wait_ack: bool = False) -> None:
        shipment = {obj._amber_vaddr: obj}
        if wait_ack:
            self._request(
                lambda rid: m.InstallMsg(rid, self.node_id, shipment,
                                         (), replica=True),
                self._fixed_router(dest))
            return
        # Replica pushes are an optimization: fire-and-forget, and a
        # loss just means the caller keeps invoking remotely.
        self._send_quiet(dest, m.InstallMsg(
            next(self._request_ids), self.node_id, shipment, (),
            replica=True))

    def _handle_install(self, message: m.InstallMsg) -> None:
        if not self._begin_request(message):
            return
        try:
            with self._state:
                for vaddr, obj in message.objects.items():
                    if message.replica and \
                            self._descriptors.is_resident(vaddr):
                        continue   # already have a replica
                    self._objects[vaddr] = obj
                    self._descriptors.set_resident(vaddr)
                for source, target in message.attach_edges:
                    self._attachments.attach(source, target)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        if message.replica:
            self.stats["replicas_installed"] += len(message.objects)
        else:
            self.stats["moves_in"] += len(message.objects)
        self._reply(message.reply_to, message.request_id, None)

    def _handle_fetch_replica(self, message: m.FetchReplicaMsg) -> None:
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        if not self._begin_request(message):
            return
        if not obj._amber_immutable:
            self._reply_error(message.reply_to, message.request_id,
                              ImmutabilityError(
                                  f"object {message.vaddr:#x} is mutable; "
                                  "replicas are only made of immutables"))
            return
        self._ship_replica(obj, message.reply_to)
        self._reply(message.reply_to, message.request_id, None)

    # -- control operations ---------------------------------------------

    def _handle_control(self, message: m.ControlMsg) -> None:
        if message.op == "stats":
            if not self._begin_request(message):
                return
            self._reply(message.reply_to, message.request_id,
                        self._stats_snapshot())
            return
        obj = self._resident_object(message.vaddr)
        if obj is None:
            self._forward(message, message.vaddr)
            return
        if not self._begin_request(message):
            return
        try:
            value = self._control_resident(obj, message.op, message.extra)
        except BaseException as error:
            self._reply_error(message.reply_to, message.request_id, error)
            return
        self._reply(message.reply_to, message.request_id, value)

    def _control_resident(self, obj: AmberObject, op: str,
                          extra: Any) -> Any:
        vaddr = obj._amber_vaddr
        if op == "set_immutable":
            with self._state:
                if self._attachments.group(vaddr) != [vaddr]:
                    raise ImmutabilityError(
                        "detach objects before marking them immutable")
                obj._amber_immutable = True
            return None
        if op == "attach":
            other = extra
            with self._state:
                if not self._descriptors.is_resident(other):
                    raise AttachmentError(
                        "Attach requires co-located objects; "
                        f"{other:#x} is not resident here")
                if obj._amber_immutable or \
                        self._objects[other]._amber_immutable:
                    raise AttachmentError(
                        "immutable (replicated) objects cannot be attached")
                self._attachments.attach(vaddr, other)
            return None
        if op == "unattach":
            with self._state:
                self._attachments.unattach(vaddr)
            return None
        if op == "delete":
            with self._state:
                if self._bind.get(vaddr, 0):
                    raise MobilityError(
                        f"cannot delete {vaddr:#x} during an invocation")
                self._objects.pop(vaddr, None)
                self._descriptors.clear(vaddr)
                self._attachments.drop(vaddr)
            return None
        raise AmberError(f"unknown control op {op!r}")
