"""Wire messages for the live runtime.

Every message is a small dataclass, pickled and length-framed by
:mod:`repro.runtime.transport`.  ``reply_to`` is always a node id; replies
are matched by ``request_id`` (unique per sending node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class Hello:
    """First message on every dialed connection: who is calling."""

    node: int
    version: int = PROTOCOL_VERSION


# --- invocation --------------------------------------------------------


@dataclass(frozen=True)
class InvokeMsg:
    """Ship an activation to (we believe) the object's node.

    ``trace`` accumulates the nodes that forwarded this request along a
    forwarding chain; the node that finally executes it sends each of
    them a :class:`LocationHint` (path caching, section 3.3)."""

    request_id: int
    reply_to: int
    vaddr: int
    method: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    trace: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ResultMsg:
    request_id: int
    ok: bool
    value: Any = None
    #: Pickled exception (or a RemoteInvocationError fallback).
    error: Optional[BaseException] = None


@dataclass(frozen=True)
class LocationHint:
    """Advisory: ``vaddr`` was last seen resident on ``node``."""

    vaddr: int
    node: int


# --- object management --------------------------------------------------


@dataclass(frozen=True)
class CreateMsg:
    """Create an instance of ``cls`` on the receiving node."""

    request_id: int
    reply_to: int
    cls: type
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]


@dataclass(frozen=True)
class MoveMsg:
    """Request that ``vaddr`` (and its attachment group) move to
    ``dest``.  Routed along the forwarding chain like an invocation."""

    request_id: int
    reply_to: int
    vaddr: int
    dest: int
    trace: Tuple[int, ...] = ()


@dataclass(frozen=True)
class InstallMsg:
    """Carry a moved (or replicated) group's state to its new node.

    ``objects`` maps vaddr -> the object itself (pickled by the framing
    layer; embedded Handles stay handles).  ``attach_edges`` are the
    attachment edges internal to the group.
    """

    request_id: int
    reply_to: int
    objects: Dict[int, Any]
    attach_edges: Tuple[Tuple[int, int], ...]
    #: True when this is an immutable replica rather than a move.
    replica: bool = False


@dataclass(frozen=True)
class InstallAck:
    request_id: int


@dataclass(frozen=True)
class LocateMsg:
    request_id: int
    reply_to: int
    vaddr: int
    trace: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FetchReplicaMsg:
    """Ask a (believed) holder of an immutable object for a copy."""

    request_id: int
    reply_to: int
    vaddr: int
    trace: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ControlMsg:
    """Routed kernel-to-kernel request on an object: set-immutable,
    attach, unattach, delete.  ``op`` selects the action."""

    request_id: int
    reply_to: int
    vaddr: int
    op: str
    extra: Any = None
    trace: Tuple[int, ...] = ()


# --- coordinator traffic -------------------------------------------------


@dataclass(frozen=True)
class RegisterNode:
    node: int
    address: Tuple[str, int]


@dataclass(frozen=True)
class Heartbeat:
    """Node -> coordinator: still alive (sent every grace/3 seconds)."""

    node: int


@dataclass(frozen=True)
class PeerStatus:
    """Coordinator -> everyone: a failure-detector verdict.

    ``alive=False`` means the node has been silent past the grace
    window and should be treated as suspect; ``alive=True`` retracts an
    earlier suspicion (the node's heartbeats resumed).  Detection only:
    the live runtime reports the verdict, it does not (yet) recover the
    dead node's objects — that is the simulator's job (see
    ``docs/RECOVERY.md``).
    """

    node: int
    alive: bool
    silence_s: float = 0.0


@dataclass(frozen=True)
class NodeDirectory:
    """Coordinator -> everyone: the full node address map."""

    addresses: Dict[int, Tuple[str, int]]


@dataclass(frozen=True)
class RegionRequest:
    request_id: int
    node: int


@dataclass(frozen=True)
class RegionGrant:
    request_id: int
    base: int
    size: int
    owner: int


@dataclass(frozen=True)
class RegionQuery:
    """Who owns the region containing this address?"""

    request_id: int
    node: int
    address: int


@dataclass(frozen=True)
class RegionAnswer:
    request_id: int
    base: int
    size: int
    owner: int


@dataclass(frozen=True)
class Shutdown:
    reason: str = "normal shutdown"
