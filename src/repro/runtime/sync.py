"""Distributed synchronization objects for the live runtime.

These are ordinary Amber objects: create one, hand its Handle to threads
on any node, and every operation ships to wherever the object lives —
a remote ``acquire`` parks the caller's activation *at the lock's node*
until granted, which is exactly the function-shipping behaviour section
4.1 contrasts with DSM lock-page thrashing.

Implementation note: inside its node, each object synchronizes its own
state with a ``threading.Condition`` (the node is a real shared-memory
multiprocessor here — the process's threads).  Those primitives are
process-local and are deliberately dropped and rebuilt when the object
moves; an object with blocked waiters cannot move anyway (the waiters
hold bind counts until released).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque

from repro.errors import SynchronizationError
from repro.runtime.objects import AmberObject

#: Default ceiling on blocking waits; prevents lost-signal bugs in user
#: programs from hanging a whole cluster.
DEFAULT_WAIT_S = 30.0


class _Synchronized(AmberObject):
    """Shared plumbing: a rebuild-on-arrival Condition variable."""

    def __init__(self) -> None:
        self._cv = threading.Condition()

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_cv", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cv = threading.Condition()


class Lock(_Synchronized):
    """A relinquishing mutual-exclusion lock."""

    def __init__(self) -> None:
        super().__init__()
        self._held = False
        self.acquisitions = 0

    def acquire(self, timeout: float = DEFAULT_WAIT_S) -> bool:
        with self._cv:
            if not self._cv.wait_for(lambda: not self._held, timeout):
                raise SynchronizationError(
                    f"lock {self._amber_vaddr:#x}: acquire timed out")
            self._held = True
            self.acquisitions += 1
            return True

    def try_acquire(self) -> bool:
        with self._cv:
            if self._held:
                return False
            self._held = True
            self.acquisitions += 1
            return True

    def release(self) -> None:
        with self._cv:
            if not self._held:
                raise SynchronizationError(
                    f"lock {self._amber_vaddr:#x}: release while free")
            self._held = False
            self._cv.notify()

    def locked(self) -> bool:
        with self._cv:
            return self._held


class Barrier(_Synchronized):
    """N-party reusable barrier; ``wait`` returns True for exactly one
    party per cycle."""

    def __init__(self, parties: int) -> None:
        super().__init__()
        if parties < 1:
            raise SynchronizationError(
                f"barrier needs >=1 party, got {parties}")
        self.parties = parties
        self._count = 0
        self._generation = 0
        self.cycles = 0

    def wait(self, timeout: float = DEFAULT_WAIT_S) -> bool:
        with self._cv:
            generation = self._generation
            self._count += 1
            if self._count == self.parties:
                self._count = 0
                self._generation += 1
                self.cycles += 1
                self._cv.notify_all()
                return True
            if not self._cv.wait_for(
                    lambda: self._generation != generation, timeout):
                raise SynchronizationError(
                    f"barrier {self._amber_vaddr:#x}: timed out with "
                    f"{self._count}/{self.parties} arrived")
            return False


class CondVar(_Synchronized):
    """A standalone condition: ``wait`` blocks until a later ``signal``
    (one waiter) or ``broadcast`` (all current waiters).  Signals sent
    with no waiters present wake the next waiter (semaphore-flavoured, so
    the classic send-before-wait race cannot hang a program)."""

    def __init__(self) -> None:
        super().__init__()
        self._tickets = 0
        self._broadcast_generation = 0

    def wait(self, timeout: float = DEFAULT_WAIT_S) -> None:
        with self._cv:
            generation = self._broadcast_generation

            def ready() -> bool:
                return (self._tickets > 0
                        or self._broadcast_generation != generation)

            if not self._cv.wait_for(ready, timeout):
                raise SynchronizationError(
                    f"condvar {self._amber_vaddr:#x}: wait timed out")
            if self._broadcast_generation == generation:
                self._tickets -= 1

    def signal(self) -> None:
        with self._cv:
            self._tickets += 1
            self._cv.notify()

    def broadcast(self) -> None:
        with self._cv:
            self._broadcast_generation += 1
            self._cv.notify_all()


class RendezvousQueue(_Synchronized):
    """A bounded blocking queue: the distributed producer/consumer
    building block (both ends invoke the queue wherever it lives)."""

    def __init__(self, capacity: int = 0) -> None:
        super().__init__()
        self.capacity = capacity   # 0 = unbounded
        self._items: Deque[Any] = deque()

    def put(self, item: Any, timeout: float = DEFAULT_WAIT_S) -> None:
        with self._cv:
            if self.capacity:
                if not self._cv.wait_for(
                        lambda: len(self._items) < self.capacity, timeout):
                    raise SynchronizationError("queue put timed out")
            self._items.append(item)
            self._cv.notify_all()

    def get(self, timeout: float = DEFAULT_WAIT_S) -> Any:
        with self._cv:
            if not self._cv.wait_for(lambda: self._items, timeout):
                raise SynchronizationError("queue get timed out")
            item = self._items.popleft()
            self._cv.notify_all()
            return item

    def size(self) -> int:
        with self._cv:
            return len(self._items)
