"""Entry point of a non-driver node process."""

from __future__ import annotations

from typing import Tuple

from repro.runtime.coordinator import CoordinatorClient
from repro.runtime.kernel import NodeKernel


def node_main(node_id: int, coordinator_address: Tuple[str, int],
              region_bytes: int, chaos=None) -> None:
    """Run one node until the coordinator says shutdown.

    ``chaos`` is an optional frozen :class:`~repro.faults.plan.FaultPlan`;
    when given, the node's outbound frames pass through a seeded
    :class:`~repro.faults.live.LiveFaultInjector` (docs/CHAOS.md).
    """
    client = CoordinatorClient(coordinator_address, region_bytes)
    kernel = NodeKernel(node_id, client, chaos=chaos)
    # Mid-run directory rebroadcasts (a peer restarted at a new address)
    # must reach the mesh, not just the startup queue.
    client.on_directory = kernel.mesh.set_directory
    client.register(node_id, kernel.mesh.address)
    client.start_heartbeats(node_id)
    directory = client.wait_directory()
    kernel.mesh.set_directory(directory)
    client.shutdown_event.wait()
    kernel.shutdown()
    client.close()
