"""Entry point of a non-driver node process."""

from __future__ import annotations

from typing import Tuple

from repro.runtime.coordinator import CoordinatorClient
from repro.runtime.kernel import NodeKernel


def node_main(node_id: int, coordinator_address: Tuple[str, int],
              region_bytes: int) -> None:
    """Run one node until the coordinator says shutdown."""
    client = CoordinatorClient(coordinator_address, region_bytes)
    kernel = NodeKernel(node_id, client)
    client.register(node_id, kernel.mesh.address)
    client.start_heartbeats(node_id)
    directory = client.wait_directory()
    kernel.mesh.set_directory(directory)
    client.shutdown_event.wait()
    kernel.shutdown()
    client.close()
