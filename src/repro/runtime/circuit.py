"""Per-peer circuit breakers for the live runtime.

A breaker protects callers from burning a full retransmission/backoff
ladder against a peer that is known to be down.  State machine, per
peer:

``closed``
    Normal operation.  ``consecutive send failures >= failure_threshold``
    (or a failure-detector verdict) opens the breaker.
``open``
    Every send attempt fails fast with a typed
    :class:`~repro.errors.NodeFailure` (or is rerouted via the object's
    home node by the kernel) until ``cooldown_s`` has elapsed.
``half-open``
    After the cooldown one *probe* send is let through; its outcome
    decides: success closes the breaker, failure re-opens it (and
    restarts the cooldown).

The kernel feeds the breaker two signals: its own send/reply outcomes
(:meth:`record_failure` / :meth:`record_success`) and the coordinator's
failure-detector verdicts (the ``suspected`` flag of :meth:`check`,
driven by ``CoordinatorClient.failed_peers()``).  A suspected peer is
treated as open regardless of local history — heartbeat silence is
stronger evidence than one healthy TCP accept — and a retracted
suspicion (the peer rejoined) lets probes close the breaker again.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

#: Consecutive send failures that trip a closed breaker.
FAILURE_THRESHOLD = 3
#: Seconds an open breaker fails fast before allowing a half-open probe.
COOLDOWN_S = 1.0

#: ``check`` verdicts.
CLOSED = "closed"
OPEN = "open"
PROBE = "probe"


class _Peer:
    __slots__ = ("failures", "opened_at", "probe_at")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at = 0.0      # 0.0 = not open
        self.probe_at = 0.0       # 0.0 = no probe in flight

    @property
    def probing(self) -> bool:
        return bool(self.probe_at)


class PeerCircuits:
    """Breaker state for every peer of one node."""

    def __init__(self, failure_threshold: int = FAILURE_THRESHOLD,
                 cooldown_s: float = COOLDOWN_S):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._peers: Dict[int, _Peer] = {}
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "circuit_opens": 0,
            "circuit_probes": 0,
            "circuit_closes": 0,
        }

    def _peer(self, node: int) -> _Peer:
        peer = self._peers.get(node)
        if peer is None:
            peer = self._peers[node] = _Peer()
        return peer

    # -- queries -----------------------------------------------------------

    def check(self, node: int, suspected: bool = False) -> str:
        """Current verdict for sending to ``node``: ``closed``, ``open``
        (fail fast / reroute), or ``probe`` (one half-open attempt is
        allowed — the caller should send and report the outcome)."""
        now = time.monotonic()
        with self._lock:
            peer = self._peer(node)
            if suspected and not peer.opened_at:
                peer.opened_at = now
                peer.probe_at = 0.0
                self.stats["circuit_opens"] += 1
            if not peer.opened_at:
                return CLOSED
            # While the failure detector still suspects the peer, probes
            # are pointless: stay open and keep failing fast.  A later
            # retraction allows a probe immediately (the cooldown is
            # considered served during the suspicion window).
            if suspected:
                peer.probe_at = 0.0
                peer.opened_at = min(peer.opened_at, now - self.cooldown_s)
                return OPEN
            if peer.probing:
                # One probe is in flight; if its outcome was never
                # reported (the prober died), release the slot after a
                # generous multiple of the cooldown.
                if now - peer.probe_at < 3.0 * self.cooldown_s:
                    return OPEN
            elif now - peer.opened_at < self.cooldown_s:
                return OPEN
            peer.probe_at = now
            self.stats["circuit_probes"] += 1
            return PROBE

    def is_open(self, node: int, suspected: bool = False) -> bool:
        return self.check(node, suspected) == OPEN

    # -- outcome feedback --------------------------------------------------

    def record_failure(self, node: int) -> None:
        """A send to (or reply wait on) ``node`` failed."""
        now = time.monotonic()
        with self._lock:
            peer = self._peer(node)
            peer.failures += 1
            if peer.opened_at:
                # A failed probe re-opens and restarts the cooldown.
                peer.opened_at = now
                peer.probe_at = 0.0
            elif peer.failures >= self.failure_threshold:
                peer.opened_at = now
                peer.probe_at = 0.0
                self.stats["circuit_opens"] += 1

    def record_success(self, node: int) -> None:
        """A reply arrived from ``node``: close its breaker."""
        with self._lock:
            peer = self._peers.get(node)
            if peer is None:
                return
            if peer.opened_at:
                self.stats["circuit_closes"] += 1
            peer.failures = 0
            peer.opened_at = 0.0
            peer.probe_at = 0.0

    def open_peers(self) -> set:
        """Peers whose breaker is currently open (tests/diagnostics)."""
        with self._lock:
            return {node for node, peer in self._peers.items()
                    if peer.opened_at}
