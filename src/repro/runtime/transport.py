"""Length-framed pickle over TCP, plus the per-node connection mesh.

Framing: 4-byte big-endian length, then the pickle.  Each node keeps one
outgoing connection per peer (dialed lazily) and accepts any number of
incoming connections, each drained by a reader thread that hands decoded
messages to a callback.  The first frame on a dialed connection is a
:class:`~repro.runtime.messages.Hello`; a connection that opens with
anything else is rejected and closed.

Sends are retried: a broken connection is torn down and redialed with
exponential backoff plus jitter, up to :data:`SEND_RETRIES` attempts, so
a peer that restarts (same address) is transparently reconnected to.
Errors retrying cannot fix — an unknown peer, an oversized or
unpicklable frame — propagate immediately.  A mesh that is closing
raises :class:`~repro.errors.RuntimeTransportError` instead of
pretending the send was delivered (``dropped_on_close`` counts them).

A mesh may carry a chaos layer
(:class:`~repro.faults.live.LiveFaultInjector`): every outbound frame is
then subject to seeded drop / duplicate / delay / connection-reset
decisions *before* it reaches the wire — see ``docs/CHAOS.md``.
"""

from __future__ import annotations

import logging
import pickle
import random
import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import RuntimeTransportError
from repro.runtime.messages import PROTOCOL_VERSION, Hello

logger = logging.getLogger(__name__)

_LENGTH = struct.Struct(">I")

#: Ceiling on a single frame (a moved object group); prevents a corrupt
#: length prefix from triggering a giant allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Attempts beyond the first for one :meth:`Mesh.send`.
SEND_RETRIES = 5
#: First retry backoff; doubles per attempt, capped, plus up to 25% jitter.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0
#: Connect/handshake timeout for one dial attempt.
DIAL_TIMEOUT_S = 10.0


def send_frame(sock: socket.socket, payload: Any) -> None:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise RuntimeTransportError(
            f"frame of {len(data)} bytes exceeds limit")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Any:
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RuntimeTransportError(f"oversized frame: {length} bytes")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class Mesh:
    """One node's connections: a listener for inbound traffic and a lazy
    dial-out table for outbound sends."""

    def __init__(self, node: int,
                 on_message: Callable[[int, Any], None],
                 host: str = "127.0.0.1",
                 port: int = 0,
                 chaos: Optional[Any] = None):
        self.node = node
        self._on_message = on_message
        #: Optional LiveFaultInjector deciding per-frame fates.
        self._chaos = chaos
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._out: Dict[int, socket.socket] = {}
        #: Accepted inbound connections and their reader threads,
        #: closed/joined with the mesh so the listening port is
        #: actually released.
        self._in: set = set()
        self._readers: list = []
        #: Per-peer lock serializing dial + handshake + frame writes, so
        #: no data frame can beat the Hello onto a fresh connection.
        self._peer_locks: Dict[int, threading.Lock] = {}
        #: Peers we connected to at least once: a later dial is a reconnect.
        self._connected_once: set = set()
        self._lock = threading.Lock()
        self._closing = threading.Event()
        #: Jitter source; seeded per node so test runs are reproducible.
        self._rng = random.Random(node)
        self.stats: Dict[str, int] = {"sends": 0, "retries": 0,
                                      "reconnects": 0,
                                      "handshake_rejects": 0,
                                      "dropped_on_close": 0}
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"mesh-accept-{node}",
            daemon=True)
        self._accept_thread.start()

    # -- outbound ---------------------------------------------------------

    def set_directory(self, addresses: Dict[int, Tuple[str, int]]) -> None:
        """Install (or refresh) peer addresses.  A peer whose address
        changed — it died and a replacement re-registered elsewhere —
        has its cached connection torn down so the next send redials."""
        with self._lock:
            changed = [node for node, address in addresses.items()
                       if self._peers.get(node) not in (None, address)]
            self._peers.update(addresses)
        for node in changed:
            self._invalidate(node)

    def send(self, node: int, message: Any) -> None:
        """Send one message to ``node``, dialing on first use and
        redialing (with backoff) when the connection has broken."""
        if node == self.node:
            # Local delivery without touching the network.
            self._on_message(self.node, message)
            return
        copies = 1
        if self._chaos is not None:
            decision = self._chaos.on_send(node, message)
            if decision.drop:
                # Consumed by the chaos layer: to the caller this looks
                # exactly like loss on the wire.
                return
            if decision.delay_s:
                time.sleep(decision.delay_s)
            if decision.reset:
                self._chaos_reset(node)
            if decision.duplicate:
                copies = 2
        lock = self._peer_lock(node)
        attempt = 0
        while True:
            try:
                with lock:
                    sock = self._connection_locked(node)
                    for _ in range(copies):
                        send_frame(sock, message)
                with self._lock:
                    self.stats["sends"] += 1
                return
            except (RuntimeTransportError, pickle.PicklingError,
                    TypeError, AttributeError):
                # Unknown peer, oversized or unpicklable frame: a retry
                # cannot change the outcome.
                raise
            except OSError as error:
                self._invalidate(node)
                if self._closing.is_set():
                    # Pretending this was delivered would let a caller
                    # mistake a swallowed send for success; fail typed.
                    with self._lock:
                        self.stats["dropped_on_close"] += 1
                    raise RuntimeTransportError(
                        f"node {self.node}: send to node {node} aborted: "
                        f"mesh is closing") from error
                attempt += 1
                if attempt > SEND_RETRIES:
                    raise RuntimeTransportError(
                        f"node {self.node}: send to node {node} failed "
                        f"after {attempt} attempts: {error}") from error
                with self._lock:
                    self.stats["retries"] += 1
                backoff = min(BACKOFF_BASE_S * 2 ** (attempt - 1),
                              BACKOFF_CAP_S)
                time.sleep(backoff * (1.0 + 0.25 * self._rng.random()))

    def _chaos_reset(self, node: int) -> None:
        """Poison the current connection to ``node`` with a truncated
        frame, then tear it down: the receiver sees a broken frame and
        drops the connection, the next send here redials."""
        with self._lock:
            sock = self._out.get(node)
        if sock is None:
            return
        try:
            # Header promising 64 bytes, followed by silence.
            sock.sendall(_LENGTH.pack(64) + b"\x00" * 7)
        except OSError:
            pass
        self._invalidate(node)

    def _peer_lock(self, node: int) -> threading.Lock:
        with self._lock:
            lock = self._peer_locks.get(node)
            if lock is None:
                lock = self._peer_locks[node] = threading.Lock()
            return lock

    def _connection_locked(self, node: int) -> socket.socket:
        """The live connection to ``node``, dialing if needed.  Caller
        holds the peer lock; the Hello handshake completes *before* the
        socket is published, so no concurrent send can put a data frame
        on the wire first."""
        with self._lock:
            sock = self._out.get(node)
            address = self._peers.get(node)
        if sock is not None:
            return sock
        if address is None:
            raise RuntimeTransportError(
                f"node {self.node}: no address for node {node}")
        sock = socket.create_connection(address, timeout=DIAL_TIMEOUT_S)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            send_frame(sock, Hello(self.node))
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)
        with self._lock:
            self._out[node] = sock
            if node in self._connected_once:
                self.stats["reconnects"] += 1
            else:
                self._connected_once.add(node)
        return sock

    def _invalidate(self, node: int) -> None:
        """Tear down a broken outgoing connection so the next send
        redials."""
        with self._lock:
            sock = self._out.pop(node, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- inbound ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = threading.Thread(target=self._reader_loop,
                                      args=(conn,),
                                      name=f"mesh-reader-{self.node}",
                                      daemon=True)
            with self._lock:
                self._in.add(conn)
                # Reconnect churn (peer restarts, chaos resets) retires
                # readers continuously; prune the finished ones instead
                # of accumulating every thread ever started until
                # close().
                self._readers = [thread for thread in self._readers
                                 if thread.is_alive()]
                self._readers.append(reader)
            reader.start()

    def _reader_loop(self, conn: socket.socket) -> None:
        try:
            try:
                hello = recv_frame(conn)
            except (ConnectionError, OSError, EOFError,
                    pickle.UnpicklingError):
                return
            if not isinstance(hello, Hello) or \
                    hello.version != PROTOCOL_VERSION:
                # A connection that does not open with a current-version
                # Hello is not a mesh peer: drop it loudly rather than
                # attributing its frames to a made-up node id.
                with self._lock:
                    self.stats["handshake_rejects"] += 1
                logger.warning(
                    "node %d: %s", self.node,
                    RuntimeTransportError(
                        f"rejected inbound connection: first frame was "
                        f"{hello!r}, expected Hello(version="
                        f"{PROTOCOL_VERSION})"))
                return
            peer = hello.node
            while True:
                message = recv_frame(conn)
                self._on_message(peer, message)
        except (ConnectionError, OSError, EOFError):
            return
        finally:
            with self._lock:
                self._in.discard(conn)
            conn.close()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=1.0)
        with self._lock:
            for sock in list(self._out.values()) + list(self._in):
                try:
                    # shutdown (not just close) wakes any reader thread
                    # blocked in recv, so the kernel socket is actually
                    # released and the port is free for a restart.
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
            self._out.clear()
            self._in.clear()
            readers = list(self._readers)
            self._readers.clear()
        # A blocked recv holds the kernel socket until the thread
        # returns; wait for the readers so a successor can rebind.
        for reader in readers:
            if reader is not threading.current_thread():
                reader.join(timeout=1.0)
