"""Length-framed pickle over TCP, plus the per-node connection mesh.

Framing: 4-byte big-endian length, then the pickle.  Each node keeps one
outgoing connection per peer (dialed lazily, kept forever) and accepts
any number of incoming connections, each drained by a reader thread that
hands decoded messages to a callback.  The first frame on a dialed
connection is a :class:`~repro.runtime.messages.Hello`.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import RuntimeTransportError
from repro.runtime.messages import Hello

_LENGTH = struct.Struct(">I")

#: Ceiling on a single frame (a moved object group); prevents a corrupt
#: length prefix from triggering a giant allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_frame(sock: socket.socket, payload: Any) -> None:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise RuntimeTransportError(
            f"frame of {len(data)} bytes exceeds limit")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Any:
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RuntimeTransportError(f"oversized frame: {length} bytes")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class Mesh:
    """One node's connections: a listener for inbound traffic and a lazy
    dial-out table for outbound sends."""

    def __init__(self, node: int,
                 on_message: Callable[[int, Any], None],
                 host: str = "127.0.0.1"):
        self.node = node
        self._on_message = on_message
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._out: Dict[int, socket.socket] = {}
        self._out_locks: Dict[int, threading.Lock] = {}
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"mesh-accept-{node}",
            daemon=True)
        self._accept_thread.start()

    # -- outbound ---------------------------------------------------------

    def set_directory(self, addresses: Dict[int, Tuple[str, int]]) -> None:
        with self._lock:
            self._peers.update(addresses)

    def send(self, node: int, message: Any) -> None:
        """Send one message to ``node`` (dialing on first use)."""
        if node == self.node:
            # Local delivery without touching the network.
            self._on_message(self.node, message)
            return
        sock = self._connection_to(node)
        lock = self._out_locks[node]
        with lock:
            try:
                send_frame(sock, message)
            except OSError as error:
                if self._closing.is_set():
                    return
                raise RuntimeTransportError(
                    f"node {self.node}: send to node {node} failed: "
                    f"{error}") from error

    def _connection_to(self, node: int) -> socket.socket:
        with self._lock:
            sock = self._out.get(node)
            if sock is not None:
                return sock
            address = self._peers.get(node)
        if address is None:
            raise RuntimeTransportError(
                f"node {self.node}: no address for node {node}")
        sock = socket.create_connection(address, timeout=10)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            existing = self._out.get(node)
            if existing is not None:
                sock.close()
                return existing
            self._out[node] = sock
            self._out_locks[node] = threading.Lock()
        send_frame(sock, Hello(self.node))
        return sock

    # -- inbound ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=self._reader_loop, args=(conn,),
                             name=f"mesh-reader-{self.node}",
                             daemon=True).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        peer: Optional[int] = None
        try:
            hello = recv_frame(conn)
            if isinstance(hello, Hello):
                peer = hello.node
            while True:
                message = recv_frame(conn)
                self._on_message(peer if peer is not None else -1, message)
        except (ConnectionError, OSError, EOFError):
            return
        finally:
            conn.close()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            for sock in self._out.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._out.clear()
