"""Cluster assembly: nodes + network + address space + kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.address_space import AddressSpaceServer
from repro.core.attachment import AttachmentGraph
from repro.core.costs import CostModel
from repro.errors import SimulationError
from repro.faults.inject import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.network import Ethernet
from repro.sim.node import SimNode
from repro.sim.objects import SimObject
from repro.sim.stats import ClusterStats


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated machine.

    The paper's testbed is ``ClusterConfig(nodes=8, cpus_per_node=4)`` — up
    to eight Fireflies, each contributing four CVAX processors to user
    threads — on one shared Ethernet.
    """

    nodes: int = 1
    cpus_per_node: int = 4
    contended_network: bool = True

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cpus_per_node < 1:
            raise SimulationError(
                f"cluster needs >=1 node and >=1 CPU, got {self}")

    @property
    def total_cpus(self) -> int:
        return self.nodes * self.cpus_per_node

    def label(self) -> str:
        """The paper's configuration label, e.g. ``4Nx2P``."""
        return f"{self.nodes}Nx{self.cpus_per_node}P"


class SimCluster:
    """Everything shared by the simulated machine.

    The Python object for every Amber object lives in ``objects`` (there is
    only one OS process here); *where the object is* in the simulated world
    is tracked solely by per-node descriptor tables, exactly as in the
    paper.  The address-space server is global knowledge, mirroring section
    3.3: "Each task has complete knowledge of the assignment of heap regions
    to nodes".
    """

    def __init__(self, config: ClusterConfig,
                 costs: Optional[CostModel] = None,
                 faults=None, recovery=None):
        self.config = config
        self.costs = costs or CostModel.firefly()
        #: Optional repro.recovery.config.RecoveryConfig; when set, the
        #: kernel runs a heartbeat detector, checkpoints mutable objects
        #: to backups, and resurrects orphaned threads after crashes.
        self.recovery = recovery
        self.sim = Simulator()
        #: Always-on registry: the kernel and network feed it operation
        #: latency histograms, lock wait/hold times, queue occupancy.
        self.metrics = MetricsRegistry()
        #: Optional repro.faults.plan.FaultPlan; crash/restart events are
        #: scheduled by the kernel, message faults by the injector.
        self.faults = faults
        injector = None
        if faults is not None:
            injector = FaultInjector(
                faults, self.metrics,
                is_down=lambda node_id: self.nodes[node_id].down)
        self.fault_injector = injector
        self.network = Ethernet(self.sim, self.costs,
                                contended=config.contended_network,
                                metrics=self.metrics,
                                faults=injector)
        self.address_server = AddressSpaceServer()
        self.nodes: List[SimNode] = [
            SimNode(node_id, config.cpus_per_node, self.address_server)
            for node_id in range(config.nodes)
        ]
        self.objects: Dict[int, SimObject] = {}
        self.attachments = AttachmentGraph()
        self.stats = ClusterStats(nodes=[node.stats for node in self.nodes],
                                  metrics=self.metrics)
        #: vaddr -> {origin node -> invocation count}; fed by the kernel,
        #: consumed by placement policies (repro.placement).
        self.access_log: Dict[int, Dict[int, int]] = {}
        #: Optional repro.sim.trace.Tracer receiving kernel events.
        self.tracer = None
        #: The run's :class:`repro.analyze.sanitizer.Sanitizer`, when
        #: the program was run with ``sanitize=True`` / ``--sanitize``.
        self.sanitizer = None
        # The kernel is attached by AmberProgram (import cycle otherwise).
        self.kernel = None

    def node(self, node_id: int) -> SimNode:
        if not 0 <= node_id < len(self.nodes):
            raise SimulationError(
                f"no such node {node_id} (cluster has {len(self.nodes)})")
        return self.nodes[node_id]

    def descriptor_tables(self):
        """node id -> DescriptorTable, for the pure forwarding resolver."""
        return {node.id: node.descriptors for node in self.nodes}

    def home_node(self, vaddr: int) -> int:
        return self.address_server.home_node(vaddr)

    @property
    def now_us(self) -> float:
        return self.sim.now_us
