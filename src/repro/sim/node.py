"""Simulated nodes: small shared-memory multiprocessors.

A node owns its CPUs, a ready queue (the replaceable scheduler object), a
descriptor table, and a heap carved from regions granted by the
address-space server.  All inter-node interaction goes through the kernel
and the shared Ethernet.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.address_space import AddressSpaceServer, NodeHeap
from repro.core.descriptor import DescriptorTable
from repro.sim.scheduler import FifoScheduler, Scheduler
from repro.sim.stats import NodeStats
from repro.sim.thread import SimThread


class Cpu:
    """One processor.  ``thread`` is the occupant; ``run_event`` is the
    pending engine event advancing it (cancelled on preemption)."""

    __slots__ = ("index", "thread", "run_event", "charge_started_ns",
                 "charge_us", "charge_preemptible")

    def __init__(self, index: int):
        self.index = index
        self.thread: Optional[SimThread] = None
        self.run_event = None
        #: Bookkeeping for splitting a preempted charge.
        self.charge_started_ns: int = 0
        self.charge_us: float = 0.0
        self.charge_preemptible: bool = False

    @property
    def idle(self) -> bool:
        return self.thread is None


class SimNode:
    """A multiprocessor node in the simulated cluster."""

    def __init__(self, node_id: int, ncpus: int,
                 server: AddressSpaceServer):
        self.id = node_id
        self.ncpus = ncpus
        self.cpus: List[Cpu] = [Cpu(i) for i in range(ncpus)]
        self.scheduler: Scheduler = FifoScheduler()
        self.descriptors = DescriptorTable(node_id)
        self.heap = NodeHeap(node_id, server)
        self.stats = NodeStats(node_id, ncpus)
        #: Crashed (fault injection): the network drops the node's
        #: traffic and the kernel dispatches nothing here until restart.
        self.down = False

    def idle_cpu(self) -> Optional[Cpu]:
        for cpu in self.cpus:
            if cpu.idle:
                return cpu
        return None

    def busy_cpus(self) -> List[Cpu]:
        return [cpu for cpu in self.cpus if not cpu.idle]

    def set_scheduler(self, scheduler: Scheduler) -> None:
        """Install a new scheduler object, carrying queued threads over."""
        for thread in self.scheduler.drain():
            scheduler.enqueue(thread)
        self.scheduler = scheduler

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimNode {self.id} cpus={self.ncpus}>"
