"""Per-node thread schedulers.

The paper (section 2.1, after Presto) lets an application replace a node's
scheduler object at runtime with any object supporting the same interface.
:class:`Scheduler` is that interface; three disciplines are provided, and
programs may subclass their own and install them with the ``SetScheduler``
request (see ``examples/custom_scheduler.py``).

Schedulers order *runnable* threads only.  Timeslicing is enforced by the
kernel (quantum from the cost model); the scheduler is consulted at dispatch
and preemption points.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional

from repro.sim.thread import SimThread


class Scheduler:
    """Interface for a node's ready queue."""

    def enqueue(self, thread: SimThread) -> None:
        raise NotImplementedError

    def dequeue(self) -> Optional[SimThread]:
        """Remove and return the next thread to run, or None if empty."""
        raise NotImplementedError

    def remove(self, thread: SimThread) -> bool:
        """Withdraw a specific thread (e.g. it is being migrated away while
        queued).  Returns True if it was present."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def drain(self) -> List[SimThread]:
        """Remove all queued threads (used when the scheduler is replaced)."""
        threads = []
        while True:
            thread = self.dequeue()
            if thread is None:
                return threads
            threads.append(thread)


class FifoScheduler(Scheduler):
    """Round-robin FIFO — the default, matching Presto's base discipline."""

    def __init__(self) -> None:
        self._queue: Deque[SimThread] = deque()

    def enqueue(self, thread: SimThread) -> None:
        self._queue.append(thread)

    def dequeue(self) -> Optional[SimThread]:
        return self._queue.popleft() if self._queue else None

    def remove(self, thread: SimThread) -> bool:
        try:
            self._queue.remove(thread)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._queue)


class LifoScheduler(Scheduler):
    """Last-in first-out — favors cache-warm threads; an example of the
    adaptive policies the paper alludes to."""

    def __init__(self) -> None:
        self._stack: List[SimThread] = []

    def enqueue(self, thread: SimThread) -> None:
        self._stack.append(thread)

    def dequeue(self) -> Optional[SimThread]:
        return self._stack.pop() if self._stack else None

    def remove(self, thread: SimThread) -> bool:
        try:
            self._stack.remove(thread)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._stack)


class ControlledScheduler(Scheduler):
    """A ready queue whose dequeue picks are made by an external chooser.

    This is AmberCheck's entry into the paper's user-replaceable-
    scheduler hook: the model checker installs one per node, and every
    dispatch becomes a recorded (and replayable) choice point.  The
    queue preserves arrival order; ``chooser.choose`` returns the index
    of the thread to run next — index 0 reproduces FIFO behaviour, so a
    run with all-default choices matches the stock scheduler's order.
    """

    def __init__(self, chooser, node_id: int) -> None:
        #: Anything with ``choose(kind, where, options, queued=())``
        #: returning an index — see repro.analyze.check.ChoiceController.
        self._chooser = chooser
        self._node_id = node_id
        self._queue: List[SimThread] = []

    def enqueue(self, thread: SimThread) -> None:
        self._queue.append(thread)

    def dequeue(self) -> Optional[SimThread]:
        if not self._queue:
            return None
        index = self._chooser.choose(
            "pick", f"node{self._node_id}",
            tuple(thread.name for thread in self._queue))
        return self._queue.pop(index)

    def remove(self, thread: SimThread) -> bool:
        try:
            self._queue.remove(thread)
            return True
        except ValueError:
            return False

    def thread_names(self) -> List[str]:
        """Names of the queued threads, in arrival order (exposed so the
        kernel's preemption choice points can record who was runnable)."""
        return [thread.name for thread in self._queue]

    def drain(self) -> List[SimThread]:
        """Replacement drain is bookkeeping, not a scheduling decision —
        hand the threads over in arrival order without consulting the
        chooser."""
        threads, self._queue = self._queue, []
        return threads

    def __len__(self) -> int:
        return len(self._queue)


class PriorityScheduler(Scheduler):
    """Highest ``thread.priority`` first; FIFO among equals.

    Lazy deletion is done per heap *entry*, not per thread: each entry
    carries its own alive flag, and ``_live`` maps a queued thread to its
    single live entry.  A shared per-thread tombstone set is not enough —
    remove-then-re-enqueue would discard the tombstone while the dead
    entry still sits in the heap, and ``dequeue`` would then hand out the
    same thread twice (double dispatch onto two CPUs).
    """

    #: Entry layout: [neg_priority, seq, thread, alive].
    _ALIVE = 3

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._seq = 0
        #: id(thread) -> its one live heap entry.
        self._live: dict = {}

    def enqueue(self, thread: SimThread) -> None:
        stale = self._live.get(id(thread))
        if stale is not None:
            # Re-enqueued while a live entry exists (priority change):
            # kill the old entry so only one can ever be dispatched.
            stale[self._ALIVE] = False
        entry = [-thread.priority, self._seq, thread, True]
        self._seq += 1
        self._live[id(thread)] = entry
        heapq.heappush(self._heap, entry)

    def dequeue(self) -> Optional[SimThread]:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry[self._ALIVE]:
                continue
            thread = entry[2]
            entry[self._ALIVE] = False
            del self._live[id(thread)]
            return thread
        return None

    def remove(self, thread: SimThread) -> bool:
        entry = self._live.pop(id(thread), None)
        if entry is None:
            return False
        entry[self._ALIVE] = False
        return True

    def __len__(self) -> int:
        return len(self._live)
