"""Per-node thread schedulers.

The paper (section 2.1, after Presto) lets an application replace a node's
scheduler object at runtime with any object supporting the same interface.
:class:`Scheduler` is that interface; three disciplines are provided, and
programs may subclass their own and install them with the ``SetScheduler``
request (see ``examples/custom_scheduler.py``).

Schedulers order *runnable* threads only.  Timeslicing is enforced by the
kernel (quantum from the cost model); the scheduler is consulted at dispatch
and preemption points.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.sim.thread import SimThread


class Scheduler:
    """Interface for a node's ready queue."""

    def enqueue(self, thread: SimThread) -> None:
        raise NotImplementedError

    def dequeue(self) -> Optional[SimThread]:
        """Remove and return the next thread to run, or None if empty."""
        raise NotImplementedError

    def remove(self, thread: SimThread) -> bool:
        """Withdraw a specific thread (e.g. it is being migrated away while
        queued).  Returns True if it was present."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def drain(self) -> List[SimThread]:
        """Remove all queued threads (used when the scheduler is replaced)."""
        threads = []
        while True:
            thread = self.dequeue()
            if thread is None:
                return threads
            threads.append(thread)


class FifoScheduler(Scheduler):
    """Round-robin FIFO — the default, matching Presto's base discipline."""

    def __init__(self) -> None:
        self._queue: Deque[SimThread] = deque()

    def enqueue(self, thread: SimThread) -> None:
        self._queue.append(thread)

    def dequeue(self) -> Optional[SimThread]:
        return self._queue.popleft() if self._queue else None

    def remove(self, thread: SimThread) -> bool:
        try:
            self._queue.remove(thread)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._queue)


class LifoScheduler(Scheduler):
    """Last-in first-out — favors cache-warm threads; an example of the
    adaptive policies the paper alludes to."""

    def __init__(self) -> None:
        self._stack: List[SimThread] = []

    def enqueue(self, thread: SimThread) -> None:
        self._stack.append(thread)

    def dequeue(self) -> Optional[SimThread]:
        return self._stack.pop() if self._stack else None

    def remove(self, thread: SimThread) -> bool:
        try:
            self._stack.remove(thread)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._stack)


class PriorityScheduler(Scheduler):
    """Highest ``thread.priority`` first; FIFO among equals."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, SimThread]] = []
        self._seq = 0
        self._removed: set = set()

    def enqueue(self, thread: SimThread) -> None:
        self._removed.discard(id(thread))
        heapq.heappush(self._heap, (-thread.priority, self._seq, thread))
        self._seq += 1

    def dequeue(self) -> Optional[SimThread]:
        while self._heap:
            _, _, thread = heapq.heappop(self._heap)
            if id(thread) in self._removed:
                self._removed.discard(id(thread))
                continue
            return thread
        return None

    def remove(self, thread: SimThread) -> bool:
        if any(entry[2] is thread and id(thread) not in self._removed
               for entry in self._heap):
            self._removed.add(id(thread))
            return True
        return False

    def __len__(self) -> int:
        return sum(1 for entry in self._heap
                   if id(entry[2]) not in self._removed)
