"""Simulated Amber threads.

Threads are the active entities: objects that possess processor state and a
runtime stack and can execute on a CPU (section 1).  Here the "stack" is a
list of :class:`Activation` records, each holding the generator of one
executing operation and the object it is bound to.  A thread is *bound* to
every object on its activation stack — the set the mobility code must
consider when one of those objects moves (section 3.5).

Being objects, threads live in the global address space, can be joined from
anywhere, and migrate between nodes — either because they invoked a remote
object (function shipping) or because an object they are bound to moved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.obs.profile import bucket_for_state
from repro.sim.engine import NS_PER_US
from repro.sim.objects import SimObject


class ThreadState(enum.Enum):
    NEW = "new"             # created, not started
    READY = "ready"         # runnable, queued at a node
    RUNNING = "running"     # on a CPU
    BLOCKED = "blocked"     # suspended (sync object, join, ...)
    TRANSIT = "transit"     # migrating between nodes
    DONE = "done"           # terminated


@dataclass(slots=True)
class Activation:
    """One frame of a thread's stack: an operation executing on an object.

    ``gen`` is ``None`` for atomic (non-generator) operations, which never
    suspend mid-body.  ``result_bytes`` is the declared size of the return
    value, charged as migration payload if the return crosses nodes.
    """

    obj: SimObject
    method: str
    gen: Optional[Generator[Any, Any, Any]]
    result_bytes: int = 0
    #: When the invocation entered the kernel (for latency histograms).
    start_us: float = 0.0
    #: Whether the invocation trapped and migrated to reach the target.
    remote: bool = False
    #: Root frames (thread bodies) are not measured as invocations.
    root: bool = False


class SimThread(SimObject):
    """A simulated thread of control.

    All scheduling fields are kernel-private; programs interact with threads
    only through the ``Fork``/``NewThread``/``Start``/``Join`` requests and
    through the statistics snapshot.
    """

    SIZE_BYTES = 1000   # one network packet, per the Table 1 benchmark note

    #: Thread state is kernel bookkeeping, not user data (AmberSan).
    SANITIZE_FIELDS = False

    # Hot-loop layout: every scheduling field below is read or written
    # on each dispatch, so slot descriptors beat dict probes.  The
    # SimObject base is unslotted, so instances keep a ``__dict__`` for
    # the kernel-attached fields (``_vaddr`` and friends) — these slots
    # only cover the per-instance state declared here.
    __slots__ = (
        "tid", "name", "priority", "_state", "location", "stack",
        "send_value", "send_exc", "surcharge_us", "pending_compute_us",
        "slice_left_us", "cpu", "run_token", "wakeup_pending",
        "transit_target", "transit_path", "transit_hop", "on_arrival",
        "transit_start_us", "home_probes", "invoke_t0", "invoke_remote",
        "pending_invoke_metric", "invoke_seq", "resurrect_stack",
        "carried_checkpoints", "result", "exception", "joiners",
        "migrations", "invocations", "remote_invocations",
        "state_time_us", "block_reason", "_clock", "_state_since_us")

    def __init__(self, tid: int, name: str = "", priority: int = 0):
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.priority = priority
        self._state = ThreadState.NEW
        #: Node the thread currently occupies (None while in transit).
        self.location: Optional[int] = None
        self.stack: List[Activation] = []

        # --- generator resumption -------------------------------------
        #: Value / exception to deliver at the next generator advance.
        self.send_value: Any = None
        self.send_exc: Optional[BaseException] = None

        # --- scheduling -------------------------------------------------
        #: CPU time to charge before the thread's next instruction
        #: (unmarshal/dispatch after migration, context switch after
        #: preemption, join completion after wakeup...).
        self.surcharge_us: float = 0.0
        #: Remaining compute of a Compute request split by preemption.
        self.pending_compute_us: float = 0.0
        #: Remaining timeslice.
        self.slice_left_us: float = 0.0
        #: CPU currently running the thread (index within its node).
        self.cpu: Optional[int] = None
        #: Invalidates in-flight run events after a preemption.
        self.run_token: int = 0
        #: Pending Wakeup that arrived before the Suspend completed.
        self.wakeup_pending: bool = False

        # --- migration --------------------------------------------------
        #: While TRANSIT: (target vaddr, visited path) for chain following.
        self.transit_target: Optional[int] = None
        self.transit_path: List[int] = []
        #: Destination of the hop currently in flight (lets the crash
        #: sweep catch threads migrating *toward* a confirmed-dead node
        #: without waiting out the reliable layer's give-up budget).
        self.transit_hop: Optional[int] = None
        #: What to do on arrival; set by the kernel.
        self.on_arrival: Any = None
        #: Departure time of the in-flight migration (latency histogram).
        self.transit_start_us: float = 0.0
        #: Consecutive probes of an unreachable node (dead-node recovery);
        #: reset on every successful arrival.
        self.home_probes: int = 0

        # --- invocation latency bookkeeping ------------------------------
        #: Kernel-entry time / residency of the invocation being set up
        #: (copied onto the Activation frame at push time).
        self.invoke_t0: float = 0.0
        self.invoke_remote: bool = False
        #: (histogram name, start time) of a completed invocation whose
        #: value is still being delivered (possibly across a migration).
        self.pending_invoke_metric: Optional[tuple] = None

        # --- crash recovery ----------------------------------------------
        #: Per-thread sequence for invocation ids; reset to the replayed
        #: entry's ``seq`` on resurrection so re-executed nested
        #: invocations regenerate identical ids (at-most-once dedup).
        self.invoke_seq: int = 0
        #: Caller-side :class:`repro.recovery.replay.ReplayEntry` log of
        #: in-flight migrating invocations (innermost last).
        self.resurrect_stack: List[Any] = []
        #: Write-through checkpoint epochs this thread is carrying away
        #: from their primary; flushed to the backup on arrival.
        self.carried_checkpoints: List[Any] = []

        # --- termination --------------------------------------------------
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.joiners: List["SimThread"] = []

        # --- per-thread statistics ---------------------------------------
        self.migrations: int = 0
        self.invocations: int = 0
        self.remote_invocations: int = 0
        #: Wall-time attribution: profile bucket -> microseconds, kept by
        #: the ``state`` setter once the kernel attaches a clock.
        self.state_time_us: Dict[str, float] = {}
        #: Why the thread is (or was last) BLOCKED — the Suspend reason,
        #: or "join"/"sleep" for the kernel's own waits.
        self.block_reason: str = ""
        self._clock = None           # Simulator, attached by the kernel
        self._state_since_us: Optional[float] = None

    def attach_clock(self, sim) -> None:
        """Start state-time accounting against ``sim``'s clock."""
        self._clock = sim
        self._state_since_us = sim.now_us

    @property
    def state(self) -> ThreadState:
        return self._state

    @state.setter
    def state(self, new_state: ThreadState) -> None:
        clock = self._clock
        if clock is not None:
            # Inline now_us and classify the outgoing state only when
            # time actually passed: most transitions (ready -> running
            # on an idle CPU, chained kernel steps) happen within one
            # event timestamp, and this setter runs on every one.
            now_us = clock.now_ns / NS_PER_US
            elapsed = now_us - (self._state_since_us or 0.0)
            if elapsed > 0:
                bucket = bucket_for_state(self._state.value,
                                          self.block_reason)
                self.state_time_us[bucket] = \
                    self.state_time_us.get(bucket, 0.0) + elapsed
            self._state_since_us = now_us
        self._state = new_state

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def bound_objects(self) -> List[SimObject]:
        """Objects this thread is currently executing within (innermost
        last) — the bound set of section 3.5."""
        return [activation.obj for activation in self.stack]

    def is_bound_to(self, vaddrs: set) -> bool:
        """True if any activation on the stack targets one of ``vaddrs``."""
        return any(activation.obj.vaddr in vaddrs
                   for activation in self.stack)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimThread {self.name} tid={self.tid} "
                f"{self.state.value} @node {self.location}>")
