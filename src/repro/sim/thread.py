"""Simulated Amber threads.

Threads are the active entities: objects that possess processor state and a
runtime stack and can execute on a CPU (section 1).  Here the "stack" is a
list of :class:`Activation` records, each holding the generator of one
executing operation and the object it is bound to.  A thread is *bound* to
every object on its activation stack — the set the mobility code must
consider when one of those objects moves (section 3.5).

Being objects, threads live in the global address space, can be joined from
anywhere, and migrate between nodes — either because they invoked a remote
object (function shipping) or because an object they are bound to moved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.sim.objects import SimObject


class ThreadState(enum.Enum):
    NEW = "new"             # created, not started
    READY = "ready"         # runnable, queued at a node
    RUNNING = "running"     # on a CPU
    BLOCKED = "blocked"     # suspended (sync object, join, ...)
    TRANSIT = "transit"     # migrating between nodes
    DONE = "done"           # terminated


@dataclass
class Activation:
    """One frame of a thread's stack: an operation executing on an object.

    ``gen`` is ``None`` for atomic (non-generator) operations, which never
    suspend mid-body.  ``result_bytes`` is the declared size of the return
    value, charged as migration payload if the return crosses nodes.
    """

    obj: SimObject
    method: str
    gen: Optional[Generator[Any, Any, Any]]
    result_bytes: int = 0


class SimThread(SimObject):
    """A simulated thread of control.

    All scheduling fields are kernel-private; programs interact with threads
    only through the ``Fork``/``NewThread``/``Start``/``Join`` requests and
    through the statistics snapshot.
    """

    SIZE_BYTES = 1000   # one network packet, per the Table 1 benchmark note

    def __init__(self, tid: int, name: str = "", priority: int = 0):
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.priority = priority
        self.state = ThreadState.NEW
        #: Node the thread currently occupies (None while in transit).
        self.location: Optional[int] = None
        self.stack: List[Activation] = []

        # --- generator resumption -------------------------------------
        #: Value / exception to deliver at the next generator advance.
        self.send_value: Any = None
        self.send_exc: Optional[BaseException] = None

        # --- scheduling -------------------------------------------------
        #: CPU time to charge before the thread's next instruction
        #: (unmarshal/dispatch after migration, context switch after
        #: preemption, join completion after wakeup...).
        self.surcharge_us: float = 0.0
        #: Remaining compute of a Compute request split by preemption.
        self.pending_compute_us: float = 0.0
        #: Remaining timeslice.
        self.slice_left_us: float = 0.0
        #: CPU currently running the thread (index within its node).
        self.cpu: Optional[int] = None
        #: Invalidates in-flight run events after a preemption.
        self.run_token: int = 0
        #: Pending Wakeup that arrived before the Suspend completed.
        self.wakeup_pending: bool = False

        # --- migration --------------------------------------------------
        #: While TRANSIT: (target vaddr, visited path) for chain following.
        self.transit_target: Optional[int] = None
        self.transit_path: List[int] = []
        #: What to do on arrival; set by the kernel.
        self.on_arrival: Any = None

        # --- termination --------------------------------------------------
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.joiners: List["SimThread"] = []

        # --- per-thread statistics ---------------------------------------
        self.migrations: int = 0
        self.invocations: int = 0
        self.remote_invocations: int = 0

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def bound_objects(self) -> List[SimObject]:
        """Objects this thread is currently executing within (innermost
        last) — the bound set of section 3.5."""
        return [activation.obj for activation in self.stack]

    def is_bound_to(self, vaddrs: set) -> bool:
        """True if any activation on the stack targets one of ``vaddrs``."""
        return any(activation.obj.vaddr in vaddrs
                   for activation in self.stack)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimThread {self.name} tid={self.tid} "
                f"{self.state.value} @node {self.location}>")
