"""The discrete-event engine: an integer-nanosecond clock and event queue.

Every cause of simulated delay — CPU charges, wire time, protocol waits —
becomes an event.  Events at equal timestamps fire in scheduling order
(a monotonic sequence number breaks ties), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

NS_PER_US = 1000


class Event:
    """A scheduled callback.  ``cancel()`` makes it a no-op (lazy deletion:
    the heap entry stays but is skipped when popped).

    Events never compare with each other: the heap holds
    ``(time_ns, seq, event)`` triples, and ``seq`` is unique, so every
    ordering decision resolves on the integers at C speed — a Python
    ``__lt__`` here would put an interpreter frame inside every sift of
    every heap operation of the hot loop.
    """

    __slots__ = ("time_ns", "seq", "fn", "cancelled")

    def __init__(self, time_ns: int, seq: int, fn: Callable[[], None]):
        self.time_ns = time_ns
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event loop with a nanosecond clock.

    ``max_events`` bounds total event count as a runaway-program backstop
    (a simulation hitting it raises :class:`SimulationError` rather than
    spinning forever).
    """

    def __init__(self, max_events: int = 500_000_000):
        self.now_ns: int = 0
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq = 0
        self._events_run = 0
        self.max_events = max_events
        #: Optional hot-loop self-profiler (see
        #: :mod:`repro.perf.hotprof`).  When attached, :meth:`run` takes
        #: the instrumented loop that attributes host time to heap-op /
        #: dispatch / hook phases; when ``None`` (the default) the loop
        #: carries no timing instrumentation at all.
        self.profiler = None

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self.now_ns / NS_PER_US

    @property
    def events_run(self) -> int:
        """Events executed so far — the denominator of events/sec."""
        return self._events_run

    def schedule_us(self, delay_us: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay_us`` microseconds from now."""
        if delay_us < 0:
            raise SimulationError(f"negative delay: {delay_us}")
        return self.schedule_at_ns(self.now_ns + round(delay_us * NS_PER_US),
                                   fn)

    def schedule_at_ns(self, time_ns: int, fn: Callable[[], None]) -> Event:
        if time_ns < self.now_ns:
            raise SimulationError(
                f"event scheduled in the past: {time_ns} < {self.now_ns}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time_ns, seq, fn)
        profiler = self.profiler
        if profiler is None:
            heapq.heappush(self._queue, (time_ns, seq, event))
        else:
            t0 = perf_counter()
            heapq.heappush(self._queue, (time_ns, seq, event))
            profiler.heap_push_s += perf_counter() - t0
            profiler.heap_pushes += 1
        return event

    def call_now(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current time (after already-queued events
        at this timestamp)."""
        return self.schedule_at_ns(self.now_ns, fn)

    def step(self) -> bool:
        """Run the next non-cancelled event.  Returns False when the queue
        is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)[2]
            if event.cancelled:
                continue
            self.now_ns = event.time_ns
            self._events_run += 1
            if self._events_run > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a livelocked simulation")
            event.fn()
            return True
        return False

    def run(self, until_us: Optional[float] = None) -> None:
        """Drain the event queue, optionally stopping once the clock would
        pass ``until_us``.

        The draining loop is inlined rather than delegating to
        :meth:`step` — on event-dense simulations the per-event method
        call and re-entry cost is measurable (see ``repro perf``), and
        this loop is the hot loop of everything built on the simulator.
        """
        if self.profiler is not None:
            self._run_profiled(until_us)
            return
        queue = self._queue
        pop = heapq.heappop
        limit_ns = (None if until_us is None
                    else round(until_us * NS_PER_US))
        while queue:
            head = queue[0]
            event = head[2]
            if event.cancelled:
                pop(queue)
                continue
            time_ns = head[0]
            if limit_ns is not None and time_ns > limit_ns:
                break
            pop(queue)
            self.now_ns = time_ns
            self._events_run += 1
            if self._events_run > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a livelocked simulation")
            event.fn()

    def _run_profiled(self, until_us: Optional[float] = None) -> None:
        """The :meth:`run` loop with host-time phase attribution: heap
        maintenance (pop + cancelled-event skipping) and event dispatch
        are timed separately; heap pushes and subsystem hooks nested
        inside a dispatch are timed at their own sites and subtracted by
        the profiler's report."""
        profiler = self.profiler
        queue = self._queue
        pop = heapq.heappop
        limit_ns = (None if until_us is None
                    else round(until_us * NS_PER_US))
        while queue:
            t0 = perf_counter()
            head = queue[0]
            while head[2].cancelled:
                pop(queue)
                if not queue:
                    profiler.heap_pop_s += perf_counter() - t0
                    return
                head = queue[0]
            if limit_ns is not None and head[0] > limit_ns:
                profiler.heap_pop_s += perf_counter() - t0
                break
            pop(queue)
            t1 = perf_counter()
            profiler.heap_pop_s += t1 - t0
            self.now_ns = head[0]
            self._events_run += 1
            if self._events_run > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a livelocked simulation")
            head[2].fn()
            profiler.dispatch_s += perf_counter() - t1
            profiler.events += 1
            if profiler.events % profiler.sample_every == 0:
                profiler.take_sample()

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for entry in self._queue if not entry[2].cancelled)
