"""The discrete-event engine: an integer-nanosecond clock and event queue.

Every cause of simulated delay — CPU charges, wire time, protocol waits —
becomes an event.  Events at equal timestamps fire in scheduling order
(a monotonic sequence number breaks ties), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError

NS_PER_US = 1000


class Event:
    """A scheduled callback.  ``cancel()`` makes it a no-op (lazy deletion:
    the heap entry stays but is skipped when popped)."""

    __slots__ = ("time_ns", "seq", "fn", "cancelled")

    def __init__(self, time_ns: int, seq: int, fn: Callable[[], None]):
        self.time_ns = time_ns
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)


class Simulator:
    """Event loop with a nanosecond clock.

    ``max_events`` bounds total event count as a runaway-program backstop
    (a simulation hitting it raises :class:`SimulationError` rather than
    spinning forever).
    """

    def __init__(self, max_events: int = 500_000_000):
        self.now_ns: int = 0
        self._queue: List[Event] = []
        self._seq = 0
        self._events_run = 0
        self.max_events = max_events

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self.now_ns / NS_PER_US

    def schedule_us(self, delay_us: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay_us`` microseconds from now."""
        if delay_us < 0:
            raise SimulationError(f"negative delay: {delay_us}")
        return self.schedule_at_ns(self.now_ns + round(delay_us * NS_PER_US),
                                   fn)

    def schedule_at_ns(self, time_ns: int, fn: Callable[[], None]) -> Event:
        if time_ns < self.now_ns:
            raise SimulationError(
                f"event scheduled in the past: {time_ns} < {self.now_ns}")
        event = Event(time_ns, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_now(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current time (after already-queued events
        at this timestamp)."""
        return self.schedule_at_ns(self.now_ns, fn)

    def step(self) -> bool:
        """Run the next non-cancelled event.  Returns False when the queue
        is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now_ns = event.time_ns
            self._events_run += 1
            if self._events_run > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a livelocked simulation")
            event.fn()
            return True
        return False

    def run(self, until_us: Optional[float] = None) -> None:
        """Drain the event queue, optionally stopping once the clock would
        pass ``until_us``."""
        if until_us is None:
            while self.step():
                pass
            return
        limit_ns = round(until_us * NS_PER_US)
        while self._queue:
            # Peek: stop before executing events beyond the horizon.
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time_ns > limit_ns:
                break
            self.step()

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)
