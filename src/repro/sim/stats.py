"""Instrumentation for simulated runs.

Every kernel action increments counters here; benchmarks and tests read them
to verify communication behaviour (message counts, migrations, utilization)
rather than just end-to-end time.  Distributional metrics — operation
latency histograms, lock wait times, network queueing — live in the
cluster's :class:`repro.obs.metrics.MetricsRegistry`, which this snapshot
references so ``as_dict()`` can report p50/p90/p99 alongside the flat
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry


@dataclass
class NodeStats:
    node: int
    cpus: int
    #: Total CPU busy time across the node's processors, microseconds.
    cpu_busy_us: float = 0.0
    local_invocations: int = 0
    remote_invocations: int = 0      # traps taken on this node (outbound)
    threads_in: int = 0              # migrated threads accepted
    threads_out: int = 0
    objects_created: int = 0
    objects_in: int = 0              # objects moved here
    objects_out: int = 0
    replicas_installed: int = 0
    preemptions: int = 0             # move-protocol CPU preemptions
    context_switches: int = 0
    forward_hops: int = 0            # misdelivered requests forwarded on

    def utilization(self, elapsed_us: float) -> float:
        """Mean busy fraction of this node's CPUs over ``elapsed_us``."""
        if elapsed_us <= 0 or self.cpus <= 0:
            return 0.0
        return self.cpu_busy_us / (elapsed_us * self.cpus)

    def merge(self, other: "NodeStats") -> None:
        """Accumulate another run's counters for the same node shape."""
        for f in fields(self):
            if f.name in ("node", "cpus"):
                continue
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))


@dataclass
class ClusterStats:
    nodes: List[NodeStats] = field(default_factory=list)
    object_moves: int = 0            # group moves completed
    replications: int = 0            # immutable copies made
    locates: int = 0
    thread_migrations: int = 0       # one-way thread transfers
    forwarding_hops_followed: int = 0
    #: Latency histograms etc. for the same run (attached by SimCluster).
    metrics: Optional[MetricsRegistry] = None

    def node(self, node_id: int) -> NodeStats:
        return self.nodes[node_id]

    @property
    def total_local_invocations(self) -> int:
        return sum(n.local_invocations for n in self.nodes)

    @property
    def total_remote_invocations(self) -> int:
        return sum(n.remote_invocations for n in self.nodes)

    @property
    def total_cpu_busy_us(self) -> float:
        return sum(n.cpu_busy_us for n in self.nodes)

    def mean_utilization(self, elapsed_us: float) -> float:
        total_cpus = sum(n.cpus for n in self.nodes)
        if elapsed_us <= 0 or total_cpus == 0:
            return 0.0
        return self.total_cpu_busy_us / (elapsed_us * total_cpus)

    def merge(self, other: "ClusterStats") -> "ClusterStats":
        """Fold another run's stats into this one (in place) so
        multi-run benchmarks can report aggregates; returns self.
        Node lists are matched by index (shorter list is extended)."""
        for mine, theirs in zip(self.nodes, other.nodes):
            mine.merge(theirs)
        for extra in other.nodes[len(self.nodes):]:
            clone = NodeStats(extra.node, extra.cpus)
            clone.merge(extra)
            self.nodes.append(clone)
        self.object_moves += other.object_moves
        self.replications += other.replications
        self.locates += other.locates
        self.thread_migrations += other.thread_migrations
        self.forwarding_hops_followed += other.forwarding_hops_followed
        if other.metrics is not None:
            if self.metrics is None:
                self.metrics = MetricsRegistry()
            self.metrics.merge(other.metrics)
        return self

    def as_dict(self) -> Dict[str, float]:
        """Flat summary, convenient for benchmark reporting.  When a
        metrics registry is attached, every latency histogram contributes
        ``<name>_p50`` / ``_p90`` / ``_p99`` / ``_max`` entries."""
        out: Dict[str, float] = {
            "local_invocations": self.total_local_invocations,
            "remote_invocations": self.total_remote_invocations,
            "thread_migrations": self.thread_migrations,
            "object_moves": self.object_moves,
            "replications": self.replications,
            "forwarding_hops": self.forwarding_hops_followed,
        }
        if self.metrics is not None:
            for name, histogram in sorted(self.metrics.histograms.items()):
                summary = histogram.summary()
                out[f"{name}_count"] = summary["count"]
                for quantile in ("p50", "p90", "p99", "max"):
                    out[f"{name}_{quantile}"] = summary[quantile]
        return out
