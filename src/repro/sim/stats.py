"""Instrumentation for simulated runs.

Every kernel action increments counters here; benchmarks and tests read them
to verify communication behaviour (message counts, migrations, utilization)
rather than just end-to-end time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class NodeStats:
    node: int
    cpus: int
    #: Total CPU busy time across the node's processors, microseconds.
    cpu_busy_us: float = 0.0
    local_invocations: int = 0
    remote_invocations: int = 0      # traps taken on this node (outbound)
    threads_in: int = 0              # migrated threads accepted
    threads_out: int = 0
    objects_created: int = 0
    objects_in: int = 0              # objects moved here
    objects_out: int = 0
    replicas_installed: int = 0
    preemptions: int = 0             # move-protocol CPU preemptions
    context_switches: int = 0
    forward_hops: int = 0            # misdelivered requests forwarded on

    def utilization(self, elapsed_us: float) -> float:
        """Mean busy fraction of this node's CPUs over ``elapsed_us``."""
        if elapsed_us <= 0:
            return 0.0
        return self.cpu_busy_us / (elapsed_us * self.cpus)


@dataclass
class ClusterStats:
    nodes: List[NodeStats] = field(default_factory=list)
    object_moves: int = 0            # group moves completed
    replications: int = 0            # immutable copies made
    locates: int = 0
    thread_migrations: int = 0       # one-way thread transfers
    forwarding_hops_followed: int = 0

    def node(self, node_id: int) -> NodeStats:
        return self.nodes[node_id]

    @property
    def total_local_invocations(self) -> int:
        return sum(n.local_invocations for n in self.nodes)

    @property
    def total_remote_invocations(self) -> int:
        return sum(n.remote_invocations for n in self.nodes)

    @property
    def total_cpu_busy_us(self) -> float:
        return sum(n.cpu_busy_us for n in self.nodes)

    def mean_utilization(self, elapsed_us: float) -> float:
        total_cpus = sum(n.cpus for n in self.nodes)
        if elapsed_us <= 0 or total_cpus == 0:
            return 0.0
        return self.total_cpu_busy_us / (elapsed_us * total_cpus)

    def as_dict(self) -> Dict[str, float]:
        """Flat summary, convenient for benchmark reporting."""
        return {
            "local_invocations": self.total_local_invocations,
            "remote_invocations": self.total_remote_invocations,
            "thread_migrations": self.thread_migrations,
            "object_moves": self.object_moves,
            "replications": self.replications,
            "forwarding_hops": self.forwarding_hops_followed,
        }
