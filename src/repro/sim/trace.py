"""Execution tracing for simulated runs.

Attach a :class:`Tracer` to a cluster before running and the kernel emits
an event for every interesting transition: invocations (local/remote),
thread migrations (departure and arrival), object moves, replica
installs, and move-protocol preemptions.  Traces explain *why* a run
spent its time — which threads bounced between which nodes, which objects
were migration magnets — and feed the text renderings below.

Usage::

    program = AmberProgram(config)
    tracer = Tracer()
    result = program.run(main, tracer=tracer)
    print(render_log(tracer.events[:40]))
    print(render_migration_matrix(tracer, nodes=config.nodes))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One kernel transition."""

    t_us: float
    kind: str            # invoke-local | invoke-remote | migrate-out |
    #                      migrate-in | move | replicate | preempt
    node: int            # where it happened
    thread: str = ""     # thread name, if any
    vaddr: Optional[int] = None
    detail: str = ""


class Tracer:
    """Collects :class:`TraceEvent` records; bounded to protect memory on
    long runs (the newest events win; ``dropped`` counts the rest)."""

    def __init__(self, max_events: int = 100_000):
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, t_us: float, kind: str, node: int, thread: str = "",
             vaddr: Optional[int] = None, detail: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            self.events.pop(0)
        self.events.append(TraceEvent(t_us, kind, node, thread, vaddr,
                                      detail))

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def migrations(self) -> List[Tuple[str, int, int]]:
        """(thread, src, dst) per completed migration, in order."""
        pending: Dict[str, int] = {}
        moves: List[Tuple[str, int, int]] = []
        for event in self.events:
            if event.kind == "migrate-out":
                pending[event.thread] = event.node
            elif event.kind == "migrate-in" and event.thread in pending:
                moves.append((event.thread, pending.pop(event.thread),
                              event.node))
        return moves


def render_log(events: List[TraceEvent], limit: int = 50) -> str:
    """A readable event log (first ``limit`` events)."""
    lines = [f"{'time (us)':>12}  {'node':>4}  {'kind':<14} "
             f"{'thread':<14} detail"]
    for event in events[:limit]:
        obj = f" obj={event.vaddr:#x}" if event.vaddr is not None else ""
        lines.append(f"{event.t_us:12.1f}  {event.node:>4}  "
                     f"{event.kind:<14} {event.thread:<14} "
                     f"{event.detail}{obj}")
    if len(events) > limit:
        lines.append(f"... {len(events) - limit} more events")
    return "\n".join(lines)


def render_migration_matrix(tracer: Tracer, nodes: int) -> str:
    """src x dst counts of thread migrations — the communication shape of
    the program at a glance."""
    matrix = [[0] * nodes for _ in range(nodes)]
    for _, src, dst in tracer.migrations():
        if 0 <= src < nodes and 0 <= dst < nodes:
            matrix[src][dst] += 1
    width = max(5, len(str(max(max(row) for row in matrix) if nodes
                           else 0)) + 2)
    header = "src\\dst" + "".join(f"{d:>{width}}" for d in range(nodes))
    lines = [header]
    for src in range(nodes):
        lines.append(f"{src:>7}" + "".join(
            f"{matrix[src][dst]:>{width}}" for dst in range(nodes)))
    return "\n".join(lines)
