"""Execution tracing for simulated runs.

Attach a :class:`Tracer` to a cluster before running and the kernel emits
an event for every interesting transition: invocations (local/remote),
thread migrations (departure and arrival), object moves, replica
installs, move-protocol preemptions, plus scheduling events (compute
slices, ready/run/block transitions) that power the Perfetto exporter and
the profile analyzer in :mod:`repro.obs`.  Traces explain *why* a run
spent its time — which threads bounced between which nodes, which objects
were migration magnets — and feed the text renderings below.

Events flow into a :class:`repro.obs.sinks.TraceSink`; the default is an
in-memory ring (newest events win, O(1) eviction), but a
:class:`~repro.obs.sinks.JsonlSink` streams arbitrarily long runs to disk.

Usage::

    program = AmberProgram(config)
    tracer = Tracer()
    result = program.run(main, tracer=tracer)
    print(render_log(tracer.events[:40]))
    print(render_migration_matrix(tracer, nodes=config.nodes))

    from repro.obs import export_chrome_trace
    export_chrome_trace(tracer.events, "trace.json")   # open in Perfetto
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.sinks import RingSink, TraceSink


@dataclass(frozen=True)
class TraceEvent:
    """One kernel transition."""

    t_us: float
    kind: str            # invoke-local | invoke-remote | migrate-out |
    #                      migrate-in | move | replicate | preempt |
    #                      compute | ready | run | block | wake | exit
    node: int            # where it happened
    thread: str = ""     # thread name, if any
    vaddr: Optional[int] = None
    detail: str = ""
    #: Span length for duration events (``compute``); 0 for instants.
    dur_us: float = 0.0


class Tracer:
    """Collects :class:`TraceEvent` records into a sink.

    By default events land in a bounded in-memory ring to protect memory
    on long runs (the newest events win; ``dropped`` counts the rest).
    Pass any :class:`~repro.obs.sinks.TraceSink` to change the policy —
    e.g. ``Tracer(sink=JsonlSink("events.jsonl"))`` to stream to disk.
    """

    def __init__(self, max_events: int = 100_000,
                 sink: Optional[TraceSink] = None):
        self.max_events = max_events
        self.sink = sink if sink is not None else RingSink(max_events)

    def emit(self, t_us: float, kind: str, node: int, thread: str = "",
             vaddr: Optional[int] = None, detail: str = "",
             dur_us: float = 0.0) -> None:
        self.sink.append(TraceEvent(t_us, kind, node, thread, vaddr,
                                    detail, dur_us))

    @property
    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return self.sink.events

    @property
    def dropped(self) -> int:
        return self.sink.dropped

    def close(self) -> None:
        self.sink.close()

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def migrations(self) -> List[Tuple[str, int, int]]:
        """(thread, src, dst) per completed migration, in order."""
        return migration_pairs(self.events)


def migration_pairs(events) -> List[Tuple[str, int, int]]:
    """(thread, src, dst) per completed migration in an event stream."""
    pending: Dict[str, int] = {}
    moves: List[Tuple[str, int, int]] = []
    for event in events:
        if event.kind == "migrate-out":
            pending[event.thread] = event.node
        elif event.kind == "migrate-in" and event.thread in pending:
            moves.append((event.thread, pending.pop(event.thread),
                          event.node))
    return moves


def render_log(events: List[TraceEvent], limit: int = 50) -> str:
    """A readable event log (first ``limit`` events)."""
    lines = [f"{'time (us)':>12}  {'node':>4}  {'kind':<14} "
             f"{'thread':<14} detail"]
    for event in events[:limit]:
        obj = f" obj={event.vaddr:#x}" if event.vaddr is not None else ""
        dur = f" dur={event.dur_us:.1f}us" if event.dur_us else ""
        lines.append(f"{event.t_us:12.1f}  {event.node:>4}  "
                     f"{event.kind:<14} {event.thread:<14} "
                     f"{event.detail}{obj}{dur}")
    if len(events) > limit:
        lines.append(f"... {len(events) - limit} more events")
    return "\n".join(lines)


def render_migration_matrix(tracer: Tracer, nodes: int) -> str:
    """src x dst counts of thread migrations — the communication shape of
    the program at a glance."""
    if nodes <= 0:
        return "(no migrations: cluster has no nodes)"
    matrix = [[0] * nodes for _ in range(nodes)]
    total = 0
    for _, src, dst in tracer.migrations():
        if 0 <= src < nodes and 0 <= dst < nodes:
            matrix[src][dst] += 1
            total += 1
    if total == 0:
        return "(no migrations)"
    width = max(5, len(str(max(max(row) for row in matrix))) + 2)
    header = "src\\dst" + "".join(f"{d:>{width}}" for d in range(nodes))
    lines = [header]
    for src in range(nodes):
        lines.append(f"{src:>7}" + "".join(
            f"{matrix[src][dst]:>{width}}" for dst in range(nodes)))
    return "\n".join(lines)
