"""Simulated Amber objects.

Every piece of data a simulated program shares between threads is a
:class:`SimObject`: a passive entity with private state and public
operations, referenced by a virtual address that means the same thing on
every node (section 3.1).  Operations are ordinary methods — generator
methods may yield kernel requests (see :mod:`repro.sim.syscalls`);
non-generator methods execute atomically.

Objects are created with the ``New`` request, never by calling the class
directly, so the kernel can assign the virtual address, charge the creation
cost, and install the resident descriptor (section 3.2).
"""

from __future__ import annotations

from typing import Any, Optional


class SimObject:
    """Base class for all simulated Amber objects.

    Subclasses declare their nominal size (heap footprint and transfer
    size) with the ``SIZE_BYTES`` class attribute or per-instance via
    ``New(..., size_bytes=...)``.

    Kernel-managed fields (all underscore-prefixed) are installed when the
    object is created through ``New``:

    ``_vaddr``
        The object's global virtual address (also its identity).
    ``_home_node``
        The node whose heap region contains ``_vaddr``.
    ``_location``
        Authoritative current residence.  *Semantics never read this* — the
        kernel routes through descriptors and forwarding chains — but it
        anchors internal assertions and statistics.
    ``_immutable``
        Set by ``SetImmutable``; enables replication.
    """

    #: Default nominal object size in bytes (descriptor + representation).
    SIZE_BYTES = 256

    #: Whether AmberSan (:mod:`repro.analyze.sanitizer`) tracks this
    #: class's public instance fields for race/residency checking during
    #: sanitized runs.  Kernel-internal object kinds (threads, the
    #: synchronization classes) opt out: their state is synchronization
    #: machinery, not user data.
    SANITIZE_FIELDS = True

    _vaddr: int
    _home_node: int
    _location: Optional[int]
    _size_bytes: int
    _immutable: bool

    @property
    def vaddr(self) -> int:
        """The object's global virtual address."""
        return self._vaddr

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def immutable(self) -> bool:
        return self._immutable

    @property
    def home_node(self) -> int:
        return self._home_node

    def _amber_init(self, vaddr: int, home_node: int, size_bytes: int) -> None:
        """Called by the kernel when the object is created."""
        self._vaddr = vaddr
        self._home_node = home_node
        self._location = home_node
        self._size_bytes = size_bytes
        self._immutable = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        vaddr = getattr(self, "_vaddr", None)
        where = getattr(self, "_location", "?")
        tag = f"{vaddr:#x}" if isinstance(vaddr, int) else "unregistered"
        return f"<{type(self).__name__} {tag} @node {where}>"


def operation_of(obj: SimObject, method: str) -> Any:
    """Fetch the bound operation ``method`` of ``obj``, raising a clean
    error for unknown names (used by the kernel's invocation path)."""
    from repro.errors import InvocationError

    fn = getattr(obj, method, None)
    if fn is None or not callable(fn):
        raise InvocationError(
            f"{type(obj).__name__} has no operation {method!r}")
    return fn
