"""Deterministic discrete-event simulation of an Amber cluster.

This backend models the paper's testbed — a network of small shared-memory
multiprocessors — closely enough to regenerate its measurements: per-node
CPUs with context switches and timeslicing, a shared 10 Mbit/s Ethernet with
transmission-time contention, Firefly-RPC-like migration costs, and the full
Amber kernel semantics (residency traps at invocation/return/context-switch
time, bound-thread handling during moves, forwarding chains, immutable
replication, attachment groups).

User programs are written as Python generator *operations* on
:class:`~repro.sim.objects.SimObject` subclasses that ``yield`` requests from
:mod:`repro.sim.syscalls` (``Compute``, ``Invoke``, ``MoveTo``, ``Fork`` ...).
:class:`~repro.sim.program.AmberProgram` assembles a cluster and runs a main
operation to completion, returning the result, the simulated elapsed time,
and detailed statistics.

All timing comes from :class:`repro.core.costs.CostModel`; simulated clocks
are integer nanoseconds, so runs are exactly reproducible.
"""

from repro.core.costs import CostModel
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.engine import Simulator
from repro.sim.kernel import AmberKernel, InvocationContext
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram, ProgramResult, run_program
from repro.sim.scheduler import (
    FifoScheduler,
    LifoScheduler,
    PriorityScheduler,
    Scheduler,
)
from repro.sim.sync import (
    Barrier,
    CondVar,
    Lock,
    Monitor,
    ReaderWriterLock,
    SpinLock,
)
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.syscalls import (
    Attach,
    Charge,
    Compute,
    Delete,
    FastInvoke,
    Fork,
    GetStats,
    Invoke,
    Join,
    Locate,
    MoveTo,
    New,
    NewThread,
    Refresh,
    SetImmutable,
    SetScheduler,
    Sleep,
    Start,
    Suspend,
    Unattach,
    Wakeup,
    Yield,
)

__all__ = [
    "AmberKernel",
    "AmberProgram",
    "Attach",
    "Barrier",
    "Charge",
    "ClusterConfig",
    "Compute",
    "CondVar",
    "CostModel",
    "Delete",
    "FastInvoke",
    "FifoScheduler",
    "Fork",
    "GetStats",
    "Invoke",
    "InvocationContext",
    "Join",
    "LifoScheduler",
    "Locate",
    "Lock",
    "Monitor",
    "MoveTo",
    "New",
    "NewThread",
    "PriorityScheduler",
    "ProgramResult",
    "ReaderWriterLock",
    "Refresh",
    "Scheduler",
    "SetImmutable",
    "SetScheduler",
    "SimCluster",
    "SimObject",
    "Simulator",
    "Sleep",
    "SpinLock",
    "Start",
    "Suspend",
    "TraceEvent",
    "Tracer",
    "Unattach",
    "Wakeup",
    "Yield",
    "run_program",
]
