"""Requests that simulated Amber programs ``yield`` to the kernel.

An Amber *operation* is a Python generator method on a
:class:`~repro.sim.objects.SimObject`.  It expresses work and kernel calls by
yielding instances of the classes below; the value of the ``yield``
expression is the request's result (an invocation's return value, a new
object, a located node id...).

Example::

    class Counter(SimObject):
        def __init__(self):
            self.value = 0

        def add(self, ctx, n):
            yield Compute(2.0)          # 2 microseconds of CPU
            self.value += n
            return self.value

    class Driver(SimObject):
        def main(self, ctx):
            counter = yield New(Counter)
            yield MoveTo(counter, 1)            # place it on node 1
            total = yield Invoke(counter, "add", 5)   # remote invocation:
            return total                              # the thread migrates

Plain (non-generator) methods are also valid operations; they execute
atomically at the invocation's completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

# Typed as Any to avoid an import cycle; targets are SimObject instances
# (or SimThread for the thread requests).
_Obj = Any
_Thread = Any


@dataclass(frozen=True)
class Compute:
    """Consume ``us`` microseconds of CPU.  Preemptible: a timeslice expiry
    or an object-move preemption can split it."""

    us: float


@dataclass(frozen=True)
class Charge:
    """Consume ``us`` microseconds of CPU *non-preemptibly* (models short
    critical code such as spinlock holders)."""

    us: float


class Invoke:
    """Invoke ``method`` on ``target`` with ``args``.

    If the target is not resident on the current node, the calling thread
    migrates to it (function shipping).  ``arg_bytes`` models the size of
    by-value argument data carried along (e.g. an edge of grid values);
    ``result_bytes`` models the size of the returned data.
    """

    __slots__ = ("target", "method", "args", "kwargs", "arg_bytes",
                 "result_bytes")

    def __init__(self, target: _Obj, method: str, *args: Any,
                 arg_bytes: int = 0, result_bytes: int = 0,
                 **kwargs: Any):
        self.target = target
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.arg_bytes = arg_bytes
        self.result_bytes = result_bytes

    def __repr__(self) -> str:
        return (f"Invoke({self.target!r}, {self.method!r}, "
                f"*{self.args!r})")


class FastInvoke:
    """A co-residency-optimized invocation (section 3.6).

    The paper notes that C++'s escape hatches (inline functions, direct
    member access) "present opportunities to optimize interactions
    between objects that are known to reside on the same node" — safe
    when co-residency is guaranteed by attachment.  ``FastInvoke`` skips
    the residency check and its cost entirely; the kernel *verifies* the
    guarantee and raises :class:`~repro.errors.InvocationError` if the
    target is not attached to (or identical with) the invoking object's
    group — the disciplined version of "incorrect program behavior".
    """

    __slots__ = ("target", "method", "args", "kwargs")

    def __init__(self, target: _Obj, method: str, *args: Any,
                 **kwargs: Any):
        self.target = target
        self.method = method
        self.args = args
        self.kwargs = kwargs


class New:
    """Create an object of ``cls`` on the current node (or ``on_node``).

    ``size_bytes`` overrides the class's declared size; it determines heap
    footprint and move/replication transfer cost.
    """

    __slots__ = ("cls", "args", "kwargs", "size_bytes", "on_node")

    def __init__(self, cls: type, *args: Any,
                 size_bytes: Optional[int] = None,
                 on_node: Optional[int] = None, **kwargs: Any):
        self.cls = cls
        self.args = args
        self.kwargs = kwargs
        self.size_bytes = size_bytes
        self.on_node = on_node

    def __repr__(self) -> str:
        return f"New({self.cls.__name__}, *{self.args!r})"


@dataclass(frozen=True)
class Delete:
    """Destroy an object: free its heap block (which will only ever be
    reused whole) and drop its descriptors."""

    target: _Obj


class NewThread:
    """Create (but do not start) a thread that will run ``method`` on
    ``target``.  The thread object is created on the current node."""

    __slots__ = ("target", "method", "args", "name", "priority")

    def __init__(self, target: _Obj, method: str, *args: Any,
                 name: str = "", priority: int = 0):
        self.target = target
        self.method = method
        self.args = args
        self.name = name
        self.priority = priority


@dataclass(frozen=True)
class Start:
    """Start a thread created with :class:`NewThread`."""

    thread: _Thread


class Fork:
    """Create *and* start a thread: ``New`` + ``Start`` in one request.
    Returns the running thread."""

    __slots__ = ("target", "method", "args", "name", "priority", "arg_bytes")

    def __init__(self, target: _Obj, method: str, *args: Any,
                 name: str = "", priority: int = 0, arg_bytes: int = 0):
        self.target = target
        self.method = method
        self.args = args
        self.name = name
        self.priority = priority
        self.arg_bytes = arg_bytes


@dataclass(frozen=True)
class Join:
    """Block until ``thread`` terminates; returns the result of the
    operation given in its Start (re-raises its exception, if any)."""

    thread: _Thread


@dataclass(frozen=True)
class MoveTo:
    """Move ``target`` (and its whole attachment group) to node ``node``.
    Moving an immutable object copies it instead (replication)."""

    target: _Obj
    node: int


@dataclass(frozen=True)
class Locate:
    """Return the node where ``target`` currently resides (possibly stale
    the moment it is returned, as in the paper)."""

    target: _Obj


@dataclass(frozen=True)
class Attach:
    """Attach ``target`` to ``to``: they are henceforth co-located and move
    together."""

    target: _Obj
    to: _Obj


@dataclass(frozen=True)
class Unattach:
    """Sever the attachments ``target`` made with :class:`Attach`."""

    target: _Obj


@dataclass(frozen=True)
class SetImmutable:
    """Mark ``target`` immutable: it will never be modified again, so the
    kernel is free to replicate it (MoveTo copies; remote invocations fetch
    a local replica)."""

    target: _Obj


@dataclass(frozen=True)
class Refresh:
    """Prefetch a local replica of the immutable ``target`` (no-op if one is
    already resident)."""

    target: _Obj


@dataclass(frozen=True)
class Yield:
    """Relinquish the CPU to the scheduler (end of timeslice semantics)."""


@dataclass(frozen=True)
class Sleep:
    """Block for ``us`` microseconds of simulated time *without* holding
    a CPU (a timer wait, unlike :class:`Compute` which burns cycles)."""

    us: float


@dataclass(frozen=True)
class Suspend:
    """Block the current thread until another thread issues
    :class:`Wakeup` on it.  Building block for the synchronization classes;
    user code normally uses :mod:`repro.sim.sync` instead.

    A :class:`Wakeup` that races ahead of the suspension is not lost: the
    kernel remembers it and the suspend completes immediately.
    """

    reason: str = ""


@dataclass(frozen=True)
class Wakeup:
    """Make a suspended thread runnable again."""

    thread: _Thread


@dataclass(frozen=True)
class SetScheduler:
    """Replace the scheduler object of ``node`` at runtime (section 2.1:
    "An application can install a custom scheduling discipline at runtime").
    Threads already queued are re-enqueued into the new scheduler."""

    node: int
    scheduler: Any


@dataclass(frozen=True)
class GetStats:
    """Return the cluster's :class:`~repro.sim.stats.ClusterStats` (live
    view; cheap, charged as a local call)."""
