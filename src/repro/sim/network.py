"""A shared-medium Ethernet model (10 Mbit/s by default, via the cost model).

The paper's eight Fireflies share one 10 Mbit/s Ethernet, so transmission
time — ``bytes * per_byte_us`` — serializes across the whole cluster, while
the fixed per-message latency (controller + protocol software at both ends)
overlaps freely.  That contention matters: the SOR edge-exchange and barrier
storms compete for the wire exactly as they did on the real segment.

``contended=False`` turns the medium into independent point-to-point links
(useful for isolating protocol costs in tests and ablations).

With a :class:`~repro.faults.inject.FaultInjector` attached, the
reliable layer (:meth:`Ethernet.send_reliable`) consults it once per
transmission attempt: dropped messages still occupy the wire but never
arrive, duplicates arrive twice (and are suppressed by the delivery
guard), delays postpone arrival.  Lost attempts are retransmitted on an
exponential-backoff timer; a sender that exhausts every attempt calls
its ``on_give_up`` hook — the kernel's cue for dead-node recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analyze import runtime as _analysis
from repro.core.costs import CostModel
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator


@dataclass
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    #: Total wire occupancy (transmission time), microseconds.
    busy_us: float = 0.0
    #: Total time messages spent queued behind other transmissions.
    queueing_us: float = 0.0
    #: Fault-injection outcomes (nonzero only with an injector attached).
    dropped: int = 0
    duplicated: int = 0
    retransmits: int = 0

    def utilization(self, elapsed_us: float) -> float:
        return self.busy_us / elapsed_us if elapsed_us > 0 else 0.0


class Ethernet:
    """Delivers messages after queueing + transmission + fixed latency."""

    def __init__(self, sim: Simulator, costs: CostModel,
                 contended: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 faults=None):
        self._sim = sim
        self._costs = costs
        self.contended = contended
        self._busy_until_ns = 0
        self.stats = NetworkStats()
        self._metrics = metrics
        #: Optional repro.faults.inject.FaultInjector consulted by the
        #: reliable layer, once per transmission attempt.
        self.faults = faults
        #: Messages currently queued or on the wire (event-granularity
        #: occupancy; sampled into the ``net_inflight`` gauge per send).
        self._inflight = 0
        #: Optional repro.sim.trace.Tracer: the reliable layer emits a
        #: structured ``send_give_up`` event (sender, dest, message kind)
        #: whenever a sender exhausts its retries, so crash triage is
        #: not left guessing from the bare ``send_give_ups`` counter.
        self.tracer = None

    def send(self, src: int, dst: int, nbytes: int,
             deliver: Callable[[], None]) -> None:
        """Transmit ``nbytes`` from ``src`` to ``dst``; call ``deliver`` at
        the delivery time.  ``src``/``dst`` are node ids (kept for stats and
        future topology models; the shared medium ignores them)."""
        self._transmit(src, dst, nbytes, deliver, 0.0)

    def send_reliable(self, src: int, dst: int, nbytes: int,
                      deliver: Callable[[], None],
                      on_give_up: Optional[Callable[[], None]] = None,
                      max_attempts: Optional[int] = None,
                      kind: str = "message") -> None:
        """Deliver exactly once despite injected faults.

        Without an injector this is exactly :meth:`send` (no extra
        events, no behavioral change).  With one, each attempt may be
        dropped, duplicated, or delayed; undelivered attempts are
        retransmitted after an exponentially backed-off timeout.  After
        ``max_attempts`` transmissions the sender gives up: it calls
        ``on_give_up`` (the kernel's dead-node recovery hook) or, with
        none installed, raises :class:`SimulationError` out of the
        simulation — an unreachable destination with no recovery path is
        a scenario bug, not a hang.
        """
        faults = self.faults
        if faults is None:
            self._transmit(src, dst, nbytes, deliver, 0.0)
            return
        attempts = max_attempts if max_attempts is not None \
            else faults.max_attempts
        done = [False]

        def delivered() -> None:
            if done[0]:
                return  # duplicate or late retransmission: suppressed
            done[0] = True
            deliver()

        def attempt(k: int) -> None:
            decision = faults.decide(src, dst, self._sim.now_us)
            if decision.drop:
                self.stats.dropped += 1
                self._transmit(src, dst, nbytes, None, 0.0)
            else:
                self._transmit(src, dst, nbytes, delivered,
                               decision.extra_delay_us)
                if decision.duplicate:
                    self.stats.duplicated += 1
                    self._transmit(src, dst, nbytes, delivered,
                                   decision.extra_delay_us
                                   + self._costs.net_latency_us)

            def check() -> None:
                if done[0]:
                    return
                if k >= attempts:
                    faults.count_give_up()
                    if self.tracer is not None:
                        self.tracer.emit(
                            self._sim.now_us, "send_give_up", src,
                            detail=f"{kind} to node {dst} undeliverable "
                                   f"after {k} attempts ({nbytes} B)")
                    if on_give_up is not None:
                        on_give_up()
                        return
                    raise SimulationError(
                        f"message {src} -> {dst} undeliverable after "
                        f"{k} attempts and no recovery handler")
                self.stats.retransmits += 1
                faults.count_retry()
                attempt(k + 1)

            self._sim.schedule_us(faults.rto_us(k), check)

        attempt(1)

    def _transmit(self, src: int, dst: int, nbytes: int,
                  deliver: Optional[Callable[[], None]],
                  extra_delay_us: float) -> None:
        """One wire transmission.  ``deliver=None`` models a message lost
        in flight: it occupies the medium but nothing arrives."""
        sim = self._sim
        costs = self._costs
        occupancy_us = nbytes * costs.per_byte_us
        occupancy_ns = round(occupancy_us * 1000)
        if self.contended:
            start_ns = max(sim.now_ns, self._busy_until_ns)
            self._busy_until_ns = start_ns + occupancy_ns
            queued_us = (start_ns - sim.now_ns) / 1000
            self.stats.queueing_us += queued_us
            end_ns = self._busy_until_ns
        else:
            start_ns = sim.now_ns
            queued_us = 0.0
            end_ns = start_ns + occupancy_ns
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.busy_us += occupancy_us
        if deliver is None:
            if self._metrics is not None:
                self._metrics.observe("net_queue_us", queued_us)
                self._metrics.observe("net_msg_bytes", nbytes)
            return
        delivery_ns = (end_ns + round(costs.net_latency_us * 1000)
                       + round(extra_delay_us * 1000))
        if self._metrics is not None:
            self._metrics.observe("net_queue_us", queued_us)
            self._metrics.observe("net_msg_bytes", nbytes)
            self._inflight += 1
            self._metrics.sample("net_inflight", self._inflight)

            def delivered() -> None:
                self._inflight -= 1
                deliver()

            self._schedule_delivery(delivery_ns, src, dst, delivered)
        else:
            self._schedule_delivery(delivery_ns, src, dst, deliver)

    def _schedule_delivery(self, delivery_ns: int, src: int, dst: int,
                           deliver: Callable[[], None]) -> None:
        """Hand the delivery to the engine — or, with an AmberCheck
        controller installed, to its delivery-order override, which
        turns the arrival order of same-time messages into a recorded,
        replayable choice point."""
        controller = _analysis.CONTROLLER
        if controller is None:
            self._sim.schedule_at_ns(delivery_ns, deliver)
        else:
            controller.schedule_delivery(self._sim, delivery_ns,
                                         src, dst, deliver)

    def uncontended_wire_us(self, nbytes: int) -> float:
        """Delivery time for one message on an idle wire (for predictions)."""
        return self._costs.wire_us(nbytes)
