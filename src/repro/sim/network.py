"""A shared-medium Ethernet model (10 Mbit/s by default, via the cost model).

The paper's eight Fireflies share one 10 Mbit/s Ethernet, so transmission
time — ``bytes * per_byte_us`` — serializes across the whole cluster, while
the fixed per-message latency (controller + protocol software at both ends)
overlaps freely.  That contention matters: the SOR edge-exchange and barrier
storms compete for the wire exactly as they did on the real segment.

``contended=False`` turns the medium into independent point-to-point links
(useful for isolating protocol costs in tests and ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.costs import CostModel
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator


@dataclass
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    #: Total wire occupancy (transmission time), microseconds.
    busy_us: float = 0.0
    #: Total time messages spent queued behind other transmissions.
    queueing_us: float = 0.0

    def utilization(self, elapsed_us: float) -> float:
        return self.busy_us / elapsed_us if elapsed_us > 0 else 0.0


class Ethernet:
    """Delivers messages after queueing + transmission + fixed latency."""

    def __init__(self, sim: Simulator, costs: CostModel,
                 contended: bool = True,
                 metrics: Optional[MetricsRegistry] = None):
        self._sim = sim
        self._costs = costs
        self.contended = contended
        self._busy_until_ns = 0
        self.stats = NetworkStats()
        self._metrics = metrics
        #: Messages currently queued or on the wire (event-granularity
        #: occupancy; sampled into the ``net_inflight`` gauge per send).
        self._inflight = 0

    def send(self, src: int, dst: int, nbytes: int,
             deliver: Callable[[], None]) -> None:
        """Transmit ``nbytes`` from ``src`` to ``dst``; call ``deliver`` at
        the delivery time.  ``src``/``dst`` are node ids (kept for stats and
        future topology models; the shared medium ignores them)."""
        sim = self._sim
        costs = self._costs
        occupancy_us = nbytes * costs.per_byte_us
        occupancy_ns = round(occupancy_us * 1000)
        if self.contended:
            start_ns = max(sim.now_ns, self._busy_until_ns)
            self._busy_until_ns = start_ns + occupancy_ns
            queued_us = (start_ns - sim.now_ns) / 1000
            self.stats.queueing_us += queued_us
            end_ns = self._busy_until_ns
        else:
            start_ns = sim.now_ns
            queued_us = 0.0
            end_ns = start_ns + occupancy_ns
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.busy_us += occupancy_us
        delivery_ns = end_ns + round(costs.net_latency_us * 1000)
        if self._metrics is not None:
            self._metrics.observe("net_queue_us", queued_us)
            self._metrics.observe("net_msg_bytes", nbytes)
            self._inflight += 1
            self._metrics.sample("net_inflight", self._inflight)

            def delivered() -> None:
                self._inflight -= 1
                deliver()

            sim.schedule_at_ns(delivery_ns, delivered)
        else:
            sim.schedule_at_ns(delivery_ns, deliver)

    def uncontended_wire_us(self, nbytes: int) -> float:
        """Delivery time for one message on an idle wire (for predictions)."""
        return self._costs.wire_us(nbytes)
