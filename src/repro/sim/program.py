"""Program harness: run a main operation on a simulated cluster.

Usage::

    from repro.sim import AmberProgram, ClusterConfig, New, Invoke, MoveTo

    def main(ctx):
        counter = yield New(Counter)
        yield MoveTo(counter, 1)
        total = yield Invoke(counter, "add", 5)
        return total

    result = AmberProgram(ClusterConfig(nodes=2, cpus_per_node=4)).run(main)
    print(result.value, result.elapsed_us, result.stats.as_dict())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.analyze import runtime as _analysis
from repro.core.costs import CostModel
from repro.perf import hotprof as _hotprof
from repro.errors import DeadlockError
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.kernel import AmberKernel
from repro.sim.objects import SimObject
from repro.sim.stats import ClusterStats
from repro.sim.thread import SimThread, ThreadState


class _MainObject(SimObject):
    """The object the program's main thread is bound to.  It anchors the
    main thread to its starting node exactly as a real Amber main object
    would: remote invocations return the thread here."""

    SIZE_BYTES = 256

    def __init__(self, fn, args):
        self._fn = fn
        self._args = args

    def run(self, ctx):
        result = self._fn(ctx, *self._args)
        if hasattr(result, "send") and hasattr(result, "throw"):
            result = yield from result
        return result


@dataclass
class ProgramResult:
    """Outcome of a simulated run."""

    value: Any
    #: Simulated time at which the final event completed, microseconds.
    elapsed_us: float
    stats: ClusterStats
    cluster: SimCluster
    #: Threads that never terminated (blocked forever after main exited).
    stranded: List[SimThread]

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6

    @property
    def metrics(self):
        """The run's :class:`repro.obs.metrics.MetricsRegistry`
        (latency histograms, lock wait/hold, network queueing)."""
        return self.cluster.metrics


class AmberProgram:
    """Builds a cluster and runs one program on it to completion."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 costs: Optional[CostModel] = None,
                 faults=None, recovery=None, sanitize: bool = False):
        self.config = config or ClusterConfig()
        self.costs = costs
        #: Optional repro.faults.plan.FaultPlan applied to the run.
        self.faults = faults
        #: Optional repro.recovery.config.RecoveryConfig enabling crash
        #: detection, checkpoint/promotion, and thread resurrection.
        self.recovery = recovery
        #: Observe the run with AmberSan (repro.analyze): happens-before
        #: race detection, immutable-write and residency checks, and the
        #: lock-order deadlock predictor.  Purely passive — simulated
        #: timestamps and results are unchanged.  Read the findings from
        #: ``result.cluster.sanitizer.report()``.
        self.sanitize = sanitize

    def run(self, main_fn, *args, main_node: int = 0,
            until_us: Optional[float] = None,
            tracer=None) -> ProgramResult:
        """Run ``main_fn(ctx, *args)`` as the main thread on ``main_node``.

        ``tracer`` (a :class:`repro.sim.trace.Tracer`) receives kernel
        events.  Raises the main thread's exception if it failed, and
        :class:`DeadlockError` if the simulation ran out of events with the
        main thread still alive.
        """
        cluster = SimCluster(self.config, self.costs, self.faults,
                             recovery=self.recovery)
        cluster.tracer = tracer
        cluster.network.tracer = tracer
        controller = _analysis.CONTROLLER
        if controller is not None:
            # AmberCheck drives this run: every node's ready queue
            # becomes a ControlledScheduler so dispatch picks are
            # recorded (and forceable) choice points.
            from repro.sim.scheduler import ControlledScheduler
            for node in cluster.nodes:
                node.set_scheduler(ControlledScheduler(controller,
                                                       node.id))
        kernel = AmberKernel(cluster)
        main_obj = kernel.create_object(_MainObject, (main_fn, args), {},
                                        main_node, None)
        main_thread = kernel.start_main(main_obj, "run", (), main_node)
        sanitizer = None
        if self.sanitize or _analysis.auto_enabled():
            sanitizer = _analysis.make_sanitizer()
            sanitizer.bind(cluster)
            _analysis.activate(sanitizer)
        # Hot-loop self-profiler (repro perf --profile): attached after
        # the sanitizer so its hook proxy wraps the active sanitizer,
        # detached before deactivation so the original is restored.
        profiler = _hotprof.current()
        if profiler is not None:
            profiler.attach(cluster)
        try:
            cluster.sim.run(until_us)
        finally:
            if profiler is not None:
                profiler.detach()
            if sanitizer is not None:
                _analysis.deactivate()
                sanitizer.unbind()
                _analysis.collect(sanitizer)
        if main_thread.state is not ThreadState.DONE:
            raise DeadlockError(_describe_stall(kernel, main_thread))
        if main_thread.exception is not None:
            raise main_thread.exception
        stranded = [thread for thread in kernel.threads
                    if thread.state is not ThreadState.DONE]
        return ProgramResult(main_thread.result, cluster.sim.now_us,
                             cluster.stats, cluster, stranded)


def run_program(main_fn, *args, nodes: int = 1, cpus_per_node: int = 4,
                costs: Optional[CostModel] = None,
                contended_network: bool = True,
                faults=None, recovery=None) -> ProgramResult:
    """One-call convenience wrapper around :class:`AmberProgram`."""
    config = ClusterConfig(nodes=nodes, cpus_per_node=cpus_per_node,
                           contended_network=contended_network)
    return AmberProgram(config, costs, faults,
                        recovery=recovery).run(main_fn, *args)


def _describe_stall(kernel: AmberKernel, main_thread: SimThread) -> str:
    from repro.analyze.lockorder import describe_wait_cycles

    lines = ["simulation stalled before the main thread finished:"]
    for thread in kernel.threads:
        if thread.state is ThreadState.DONE:
            continue
        frame = (f"{type(thread.stack[-1].obj).__name__}."
                 f"{thread.stack[-1].method}" if thread.stack else "-")
        lines.append(f"  {thread.name}: {thread.state.value} "
                     f"@node {thread.location}, in {frame}")
    cycle = describe_wait_cycles(kernel)
    if cycle:
        lines.extend(f"  {line}" for line in cycle)
    elif main_thread.state is ThreadState.BLOCKED:
        lines.append("  (likely deadlock: every runnable thread is "
                     "waiting, but no lock/join wait-for cycle was "
                     "found — suspect a lost wakeup)")
    return "\n".join(lines)
