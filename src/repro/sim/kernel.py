"""The simulated Amber kernel: scheduling, invocation, mobility.

This module implements the paper's runtime semantics on the discrete-event
substrate:

* **Invocation path** (sections 3.2, 3.4): every invocation charges the
  entry cost (frame push + residency check).  A resident target runs
  locally; a non-resident one traps, and the *thread migrates* to the
  object — marshal on the source CPU, wire time on the shared Ethernet,
  unmarshal + dispatch on the destination CPU.  Returns mirror this with a
  return-time check against the caller's object.
* **Locating** (section 3.3): migrating threads and control messages follow
  forwarding chains hop by hop; a node with an uninitialized descriptor
  routes to the object's home node (derived from the address).  On arrival
  the final location is cached along the visited path (path compression).
* **Moves** (section 3.5): a move first marks the descriptor non-resident,
  then briefly interrupts every other processor on the node so running
  threads make a context-switch-time residency check; bound threads migrate
  themselves when next scheduled, and suspended bound threads stay until
  rescheduled — both exactly the paper's stated policy (including the lost
  concurrency it admits to).  Because mutable objects are never copied
  while resident state diverges (there is a single authoritative instance),
  the multiprocessor races of section 3.5 affect *timing*, never state.
* **Immutables** (section 2.3): ``MoveTo`` on an immutable copies it;
  invoking a non-resident immutable fetches a local replica.

Timing discipline: a request's simulated cost elapses *before* its state
effects, so cross-CPU interleavings (e.g. two threads racing on a lock) are
resolved in simulated-time order deterministically.

One simplification is calibrated away rather than modeled: install work for
arriving objects is a pure delay at the destination instead of occupying a
destination CPU (moves are rare by the paper's own assumption 1 in §3.5);
thread arrivals *do* occupy the destination CPU via the dispatch surcharge.
A thread performing ``MoveTo``/``Locate`` holds its CPU for the duration of
the synchronous protocol, matching the kernel-mediated move of the paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analyze import runtime as _analysis
from repro.errors import (
    AmberError,
    AttachmentError,
    InvocationError,
    MobilityError,
    NodeFailure,
    ObjectNotFoundError,
)
from repro.recovery.checkpoint import (
    CheckpointManager,
    restore_state,
    snapshot_state,
)
from repro.recovery.detector import HeartbeatDetector
from repro.recovery.replay import ReplayEntry
from repro.sim import syscalls as sc
from repro.analyze.elide import runtime as _ert
from repro.sim.cluster import SimCluster
from repro.sim.engine import NS_PER_US
from repro.sim.node import Cpu, SimNode
from repro.sim.objects import SimObject, operation_of
from repro.sim.thread import Activation, SimThread, ThreadState

#: Safety bound on forwarding-chain chasing for one request.
MAX_CHASE_HOPS = 1000

#: With faults enabled: bounded patience with an unreachable home node.
#: Each probe re-runs a full reliable send (all retransmissions), spaced
#: by the capped RTO — graceful degradation while the home is down, a
#: clean ObjectNotFoundError once it is evidently never coming back.
MAX_HOME_PROBES = 16

#: At-most-once dedup: completed-invocation outcomes remembered per
#: object.  Bounds memory on long runs; an id evicted here could in
#: principle be replayed, but a replay only happens within one
#: crash-detection window of the completion — hundreds of entries deep
#: is far beyond any plausible in-flight set.
COMPLETION_LOG_LIMIT = 512


class InvocationContext:
    """Passed as the first argument to every operation body."""

    __slots__ = ("_kernel", "thread")

    def __init__(self, kernel: "AmberKernel", thread: SimThread):
        self._kernel = kernel
        self.thread = thread

    @property
    def node(self) -> int:
        """The node the thread is currently executing on."""
        return self.thread.location

    @property
    def now_us(self) -> float:
        return self._kernel.sim.now_us

    @property
    def cluster(self) -> SimCluster:
        return self._kernel.cluster

    @property
    def metrics(self):
        """The cluster's :class:`repro.obs.metrics.MetricsRegistry`."""
        return self._kernel.cluster.metrics

    @property
    def num_nodes(self) -> int:
        return len(self._kernel.cluster.nodes)


class AmberKernel:
    """One kernel drives the whole simulated cluster (the per-node kernels
    of the paper share no state except through messages; here the sharing
    is confined to the address-space server and statistics, which the paper
    also centralizes or replicates)."""

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster
        self.sim = cluster.sim
        self.costs = cluster.costs
        self.net = cluster.network
        self.metrics = cluster.metrics
        self._next_tid = 0
        self.threads: List[SimThread] = []
        cluster.kernel = self
        # --- crash recovery (opt-in via cluster.recovery) -------------
        self.recovery = getattr(cluster, "recovery", None)
        self.checkpoints: Optional[CheckpointManager] = None
        self.detector: Optional[HeartbeatDetector] = None
        #: node id -> simulated crash instant (detection latency basis).
        self._crash_times: Dict[int, float] = {}
        #: Nodes already confirmed dead and swept (idempotence guard).
        self._confirmed_dead: Set[int] = set()
        #: Objects confirmed unrecoverable (primary and backup both
        #: dead at confirmation time): requests fail fast.
        self._lost_objects: Set[int] = set()
        if self.recovery is not None and len(cluster.nodes) > 1:
            self.checkpoints = CheckpointManager(cluster, self.recovery)
            self.detector = HeartbeatDetector(self, self.recovery)
            self.detector.start()
            if self.recovery.checkpointing and \
                    self.recovery.checkpoint_interval_us > 0:
                self.sim.schedule_us(self.recovery.checkpoint_interval_us,
                                     self._checkpoint_sweep)
        if cluster.faults is not None:
            self._schedule_fault_events(cluster.faults)

    # ------------------------------------------------------------------
    # Object management
    # ------------------------------------------------------------------

    def create_object(self, cls: type, args: Tuple, kwargs: dict,
                      node_id: int, size_bytes: Optional[int]) -> SimObject:
        """Allocate, construct, and register an object on ``node_id``."""
        node = self.cluster.node(node_id)
        obj = cls(*args, **kwargs)
        if not isinstance(obj, SimObject):
            raise InvocationError(
                f"{cls.__name__} does not derive from SimObject")
        size = size_bytes if size_bytes is not None else type(obj).SIZE_BYTES
        vaddr = node.heap.allocate(size)
        obj._amber_init(vaddr, node_id, size)
        self.cluster.objects[vaddr] = obj
        node.descriptors.set_resident(vaddr)
        node.stats.objects_created += 1
        san = _analysis.ACTIVE
        if san is not None:
            san.on_create(obj)
        if self._checkpointing_on() and self.checkpoints.eligible(obj):
            # Baseline epoch at birth: even an object that is never
            # quiescent again (a barrier with perpetual waiters) has a
            # construction-time state to promote.
            self._ship_checkpoint(obj, node_id)
        return obj

    def delete_object(self, obj: SimObject, node_id: int) -> None:
        vaddr = obj.vaddr
        node = self.cluster.node(node_id)
        if not node.descriptors.is_resident(vaddr):
            raise MobilityError(
                f"cannot delete {obj!r}: not resident on node {node_id}")
        for other in self.cluster.nodes:
            other.descriptors.clear(vaddr)
        self.cluster.node(obj.home_node).heap.free(vaddr)
        self.cluster.attachments.drop(vaddr)
        self.cluster.objects.pop(vaddr, None)
        obj._location = None

    def new_thread(self, node_id: int, name: str = "",
                   priority: int = 0) -> SimThread:
        thread = SimThread(self._next_tid, name, priority)
        self._next_tid += 1
        node = self.cluster.node(node_id)
        vaddr = node.heap.allocate(SimThread.SIZE_BYTES)
        thread._amber_init(vaddr, node_id, SimThread.SIZE_BYTES)
        thread.location = node_id
        self.cluster.objects[vaddr] = thread
        node.descriptors.set_resident(vaddr)
        node.stats.objects_created += 1
        thread.attach_clock(self.sim)
        self.threads.append(thread)
        return thread

    def _trace(self, kind: str, node: int, thread: str = "",
               vaddr=None, detail: str = "",
               dur_us: float = 0.0) -> None:
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.emit(self.sim.now_us, kind, node, thread, vaddr, detail,
                        dur_us)

    def believed_location(self, node: SimNode, vaddr: int) -> int:
        """Where ``node`` should send a request for ``vaddr``: the
        forwarding hint if any, else the object's home node."""
        descriptor = node.descriptors.lookup(vaddr)
        if descriptor is not None:
            if descriptor.resident:
                return node.id
            return descriptor.forward_to
        home = self.cluster.home_node(vaddr)
        if home == node.id:
            raise ObjectNotFoundError(
                f"object {vaddr:#x} unknown at its home node {node.id}")
        return home

    # ------------------------------------------------------------------
    # Fault injection: node crash and restart
    # ------------------------------------------------------------------

    def _schedule_fault_events(self, plan) -> None:
        for crash in plan.crashes:
            self.cluster.node(crash.node)  # validates the node id
            self.sim.schedule_us(
                crash.at_us, lambda c=crash: self._crash_node(c.node))
            if crash.restart_us is not None:
                self.sim.schedule_us(
                    crash.restart_us,
                    lambda c=crash: self._restart_node(c.node))

    def _crash_node(self, node_id: int) -> None:
        """Fail-stop ``node_id``: its network interface goes silent (the
        injector drops its traffic) and no thread is dispatched here
        until restart.  Preemptible user compute is interrupted exactly
        as by the move protocol; a kernel protocol step already charging
        runs to completion — its outbound messages are then dropped and
        retried by the reliable layer."""
        node = self.cluster.node(node_id)
        if node.down:
            return
        node.down = True
        self._crash_times[node_id] = self.sim.now_us
        self.metrics.inc("crashes")
        self._trace("crash", node_id)
        for cpu in node.cpus:
            self._preempt_cpu(node, cpu)

    def _restart_node(self, node_id: int) -> None:
        """Bring a crashed node back.  Resident objects survive (the
        node's heap is its stable storage), but volatile location hints
        do not: every forwarding entry for an object *not homed here* is
        dropped, so the first post-restart request routes via the home
        node and re-caches a fresh chain (chain repair).  Entries for
        locally homed objects model the persistent home-node map of
        section 3.3 and are kept — the home must always know."""
        node = self.cluster.node(node_id)
        if not node.down:
            return
        node.down = False
        self._confirmed_dead.discard(node_id)
        stale = [vaddr for vaddr, descriptor in node.descriptors.items()
                 if not descriptor.resident
                 and self.cluster.home_node(vaddr) != node_id]
        for vaddr in stale:
            node.descriptors.clear(vaddr)
        self.metrics.inc("recoveries")
        if stale:
            self.metrics.inc("hints_repaired", len(stale))
        self._trace("restart", node_id, detail=f"{len(stale)} hints shed")
        self._try_dispatch(node)

    # ------------------------------------------------------------------
    # Crash recovery: checkpoints, promotion, resurrection
    # ------------------------------------------------------------------

    def _recovering(self) -> bool:
        """True when a failure detector is attached (recovery opt-in)."""
        return self.detector is not None

    def _checkpointing_on(self) -> bool:
        return self.checkpoints is not None and self.recovery.checkpointing

    def _bound_by_live_thread(self, vaddr: int,
                              exclude: Optional[SimThread] = None) -> bool:
        """True if a live thread's activation stack includes ``vaddr`` —
        its state may be mid-operation (torn), so never snapshot it."""
        for thread in self.threads:
            if thread is exclude or thread.done:
                continue
            if any(act.obj.vaddr == vaddr for act in thread.stack):
                return True
        return False

    def _checkpoint_sweep(self) -> None:
        """Periodic epoch sweep: ship a fresh snapshot of every resident
        quiescent mutable object to its backup — bounded staleness for
        state the write-through path never touches."""
        if not self._checkpointing_on():
            return
        if self.threads and self.threads[0].done:
            return  # program over: let the event queue drain
        for node in self.cluster.nodes:
            if node.down:
                continue
            for vaddr, descriptor in sorted(node.descriptors.items()):
                if not descriptor.resident:
                    continue
                obj = self.cluster.objects.get(vaddr)
                if obj is None or not self.checkpoints.eligible(obj):
                    continue
                self._ship_checkpoint(obj, node.id)
        self.sim.schedule_us(self.recovery.checkpoint_interval_us,
                             self._checkpoint_sweep)

    def _ship_checkpoint(self, obj: SimObject, primary: int,
                         carrier: Optional[SimThread] = None) -> None:
        """Snapshot ``obj`` and start a new epoch toward its backup.

        Without a ``carrier`` the epoch ships directly over the faulty
        reliable layer.  With one (write-through at invocation return)
        the epoch rides in the completing thread's luggage and is
        flushed from wherever the thread next lands — the checkpoint
        escapes the node if and only if the thread does, which is what
        makes rollback and replay agree (see repro.recovery.replay).
        """
        vaddr = obj.vaddr
        if vaddr in self._lost_objects:
            return
        if self._bound_by_live_thread(vaddr, exclude=carrier):
            return  # mid-operation state: wait for a quiescent point
        backup = self.checkpoints.backup_node(vaddr, primary)
        if backup == primary:
            return  # single-node cluster: nowhere safer to keep it
        epoch = self.checkpoints.next_epoch(vaddr)
        state = snapshot_state(obj)
        nbytes = self.costs.control_bytes + obj.size_bytes
        self.cluster.node(primary).descriptors.set_backup(
            vaddr, backup, epoch)
        self.metrics.inc("checkpoints_shipped")
        if carrier is not None:
            carrier.carried_checkpoints.append(
                (vaddr, epoch, state, backup, nbytes))
            return
        if self.cluster.node(backup).down:
            self.metrics.inc("checkpoints_lost")
            return
        self.net.send_reliable(
            primary, backup, nbytes,
            lambda: self.checkpoints.store(backup, vaddr, epoch, state),
            on_give_up=lambda: self.metrics.inc("checkpoints_lost"),
            kind="checkpoint")

    def _flush_carried(self, thread: SimThread, node_id: int) -> None:
        """The thread landed on a live node: flush the checkpoint epochs
        it carried away from their primaries."""
        carried, thread.carried_checkpoints = \
            thread.carried_checkpoints, []
        for vaddr, epoch, state, backup, nbytes in carried:
            if node_id == backup:
                self.checkpoints.store(backup, vaddr, epoch, state)
                continue
            if self.cluster.node(backup).down:
                self.metrics.inc("checkpoints_lost")
                continue
            self.net.send_reliable(
                node_id, backup, nbytes,
                lambda b=backup, v=vaddr, e=epoch, s=state:
                    self.checkpoints.store(b, v, e, s),
                on_give_up=lambda: self.metrics.inc("checkpoints_lost"),
                kind="checkpoint")

    def _log_departure(self, thread: SimThread, node_id: int) -> None:
        """Caller-side replay log: remember a migrating invocation as it
        departs, so a confirmed-dead callee can be survived by
        re-launching from here."""
        action = thread.on_arrival
        if action is None or action[0] != "invoke":
            return  # return-home / resume migrations carry no new work
        _, request, is_root = action
        if thread.resurrect_stack and \
                thread.resurrect_stack[-1].request is request:
            return  # re-departure of the same invocation (chase, retry)
        thread.invoke_seq += 1
        # The id's caller-node component anchors to the *outermost* live
        # entry's origin, not the physical departure node: a nested
        # invocation re-issued during replay departs from the promoted
        # object's new node, and the dedup key must still match the
        # completion logged under the original id.
        anchor = (thread.resurrect_stack[0].origin
                  if thread.resurrect_stack else node_id)
        thread.resurrect_stack.append(ReplayEntry(
            id=(anchor, thread.tid, thread.invoke_seq),
            origin=node_id,
            target=request.target.vaddr,
            request=request,
            payload=getattr(request, "arg_bytes", 0),
            depth=len(thread.stack),
            is_root=is_root,
            seq=thread.invoke_seq,
        ))

    def _record_completion(self, thread: SimThread, entry: ReplayEntry,
                           value: Any,
                           exc: Optional[BaseException]) -> None:
        """The migrated invocation behind ``entry`` just returned: log
        its outcome on the target (at-most-once dedup — the log rides
        inside the object's snapshots) and put the write-through epoch
        in the thread's luggage."""
        entry.completed = True
        obj = self.cluster.objects.get(entry.target)
        if obj is None:
            return
        log = getattr(obj, "_amber_completed", None)
        if log is None:
            log = {}
            obj._amber_completed = log
        log[entry.id] = (value, exc)
        while len(log) > COMPLETION_LOG_LIMIT:
            log.pop(next(iter(log)))
        if self._checkpointing_on() \
                and self.recovery.checkpoint_on_remote_invoke \
                and self.checkpoints.eligible(obj) \
                and thread.location is not None:
            self._ship_checkpoint(obj, thread.location, carrier=thread)

    def _deliver_logged(self, thread: SimThread, request) -> bool:
        """Receive-side at-most-once dedup: if this arrival's invocation
        already completed before the caller learned of it (the thread
        was resurrected mid-return), deliver the logged outcome instead
        of re-executing the side effects."""
        if not thread.resurrect_stack:
            return False
        entry = thread.resurrect_stack[-1]
        if entry.request is not request:
            return False
        obj = self.cluster.objects.get(entry.target)
        log = getattr(obj, "_amber_completed", None) \
            if obj is not None else None
        if log is None or entry.id not in log:
            return False
        value, exc = log[entry.id]
        entry.completed = True
        self.metrics.inc("invocations_suppressed")
        self._trace("invoke-suppressed", thread.location, thread.name,
                    entry.target, f"replay of {entry.id} already applied")
        if entry.is_root:
            self._thread_exit(thread, value, exc)
        else:
            self._charge(thread, self.costs.local_return_us,
                         lambda: self._complete_return(thread, value, exc))
        return True

    def _deliver_logged_local(self, thread: SimThread, request) -> bool:
        """Local leg of at-most-once dedup.  A replayed invocation whose
        target was promoted onto the caller's own node never migrates,
        so :meth:`_deliver_logged` cannot intercept it at arrival.
        Every *mutable resident* invocation therefore advances the
        sequence counter here (keeping a replay's sequence stream
        aligned with the original no matter where promotion moved the
        targets — immutable targets never advance it on either path),
        and a completion already logged under the regenerated id is
        delivered instead of re-executing the side effects."""
        thread.invoke_seq += 1
        obj = self.cluster.objects.get(request.target.vaddr)
        log = getattr(obj, "_amber_completed", None) \
            if obj is not None else None
        if not log:
            return False
        anchor = (thread.resurrect_stack[0].origin
                  if thread.resurrect_stack else thread.location)
        entry_id = (anchor, thread.tid, thread.invoke_seq)
        if entry_id not in log:
            return False
        value, exc = log[entry_id]
        self.metrics.inc("invocations_suppressed")
        self._trace("invoke-suppressed", thread.location, thread.name,
                    request.target.vaddr,
                    f"replay of {entry_id} already applied (local)")
        self._charge(thread, self.costs.local_return_us,
                     lambda: self._complete_return(thread, value, exc))
        return True

    def _settle_replay_entries(self, thread: SimThread) -> None:
        """The thread is back with its caller and the results are
        delivered: retire every answered replay entry and flush any
        checkpoint epochs still in the luggage."""
        while thread.resurrect_stack and \
                thread.resurrect_stack[-1].completed:
            thread.resurrect_stack.pop()
        if thread.carried_checkpoints and thread.location is not None:
            self._flush_carried(thread, thread.location)

    def _on_node_confirmed_dead(self, node_id: int) -> None:
        """The detector confirmed ``node_id`` dead: promote backups of
        its resident mutable objects, then resurrect (or fail) every
        thread that was on it or stuck migrating from it."""
        node = self.cluster.node(node_id)
        if not node.down or node_id in self._confirmed_dead:
            return  # restarted inside the window, or already swept
        self._confirmed_dead.add(node_id)
        promoted = 0
        if self.checkpoints is not None:
            for vaddr, descriptor in sorted(node.descriptors.items()):
                if not descriptor.resident:
                    continue
                obj = self.cluster.objects.get(vaddr)
                if obj is None or not self.checkpoints.eligible(obj):
                    continue
                if self._checkpointing_on() and \
                        self._promote_object(node, vaddr, obj):
                    promoted += 1
                else:
                    self._lost_objects.add(vaddr)
                    self.metrics.inc("objects_lost")
                    self._trace("object-lost", node_id, "", vaddr,
                                "no live checkpoint to promote")
        # Shed dead replica sources so immutable fetches never pick a
        # corpse (keep the last copy even if it is behind the crash).
        for obj in self.cluster.objects.values():
            replicas = getattr(obj, "_replica_nodes", None)
            if replicas and node_id in replicas and len(replicas) > 1:
                replicas.discard(node_id)
        victims = sorted(
            (thread for thread in self.threads if not thread.done and (
                thread.location == node_id
                or (thread.state is ThreadState.TRANSIT
                    and (thread.transit_hop == node_id
                         or (thread.transit_path
                             and thread.transit_path[-1] == node_id))))),
            key=lambda thread: thread.tid)
        for victim in victims:
            self._detach_victim(victim)
        plans = [(victim, self._usable_entry(victim))
                 for victim in victims]
        for victim, entry in plans:
            if entry is None:
                self._fail_thread(victim, node_id)
        # Promotion installs take install time at the backup; replays
        # launch once the promoted copies are actually usable.
        delay = self.costs.object_install_us * max(1, promoted)
        for victim, entry in plans:
            if entry is not None:
                self.sim.schedule_us(
                    delay,
                    lambda v=victim, e=entry:
                        self._relaunch_thread(v, e, node_id))
        if promoted or victims:
            self.metrics.observe("recovery_us", delay)

    def _promote_object(self, dead_node: SimNode, vaddr: int,
                        obj: SimObject) -> bool:
        """Promote the newest live checkpoint epoch of ``vaddr`` to be
        the authoritative copy; returns False when every epoch is
        behind a dead node (the object is lost)."""
        held = self.checkpoints.latest(vaddr)
        if held is None:
            return False
        backup_id, epoch, state = held
        restore_state(obj, state)
        backup = self.cluster.node(backup_id)
        backup.descriptors.set_resident(vaddr)
        backup.descriptors.set_backup(vaddr, None, epoch)
        dead_node.descriptors.set_forwarding(vaddr, backup_id)
        home = self.cluster.home_node(vaddr)
        if home != backup_id:
            self.cluster.node(home).descriptors.update_hint(vaddr,
                                                            backup_id)
        obj._location = backup_id
        backup.stats.objects_in += 1
        self.metrics.inc("objects_recovered")
        self._trace("promote", backup_id, "", vaddr,
                    f"epoch {epoch} promoted after node "
                    f"{dead_node.id} died")
        return True

    def _detach_victim(self, thread: SimThread) -> None:
        """Pull a victim out of every kernel structure that still
        references it, invalidating in-flight callbacks."""
        if thread.location is not None:
            node = self.cluster.nodes[thread.location]
            if thread.state is ThreadState.READY:
                node.scheduler.remove(thread)
            if thread.cpu is not None:
                cpu = node.cpus[thread.cpu]
                if cpu.thread is thread:
                    if cpu.run_event is not None:
                        cpu.run_event.cancel()
                    cpu.thread = None
                    cpu.run_event = None
                thread.cpu = None
        thread.run_token += 1
        thread.state = ThreadState.TRANSIT
        for other in self.threads:
            if thread in other.joiners:
                other.joiners.remove(thread)
        thread.send_value = None
        thread.send_exc = None
        thread.surcharge_us = 0.0
        thread.pending_compute_us = 0.0
        thread.slice_left_us = 0.0
        thread.wakeup_pending = False
        thread.pending_invoke_metric = None
        thread.home_probes = 0
        thread.carried_checkpoints = []
        thread.block_reason = ""

    def _usable_entry(self, thread: SimThread) -> Optional[ReplayEntry]:
        """Innermost replay entry whose origin is up and whose target
        still exists; unusable entries are discarded on the way."""
        while thread.resurrect_stack:
            entry = thread.resurrect_stack[-1]
            if self.cluster.node(entry.origin).down \
                    or entry.target in self._lost_objects \
                    or entry.target not in self.cluster.objects:
                thread.resurrect_stack.pop()
                continue
            return entry
        return None

    def _relaunch_thread(self, thread: SimThread, entry: ReplayEntry,
                         dead_id: int) -> None:
        """Re-launch a victim from ``entry``: truncate to the caller
        frames, reset the sequence counter so re-executed nested
        invocations regenerate identical ids, and migrate the thread
        from its origin toward the (possibly promoted) target."""
        if thread.done:
            return
        del thread.stack[entry.depth:]
        entry.completed = False
        thread.invoke_seq = entry.seq
        thread.on_arrival = ("invoke", entry.request, entry.is_root)
        thread.state = ThreadState.TRANSIT
        thread.transit_target = entry.target
        thread.transit_path = [entry.origin]
        thread.transit_start_us = self.sim.now_us
        thread.location = None
        self.metrics.inc("invocations_replayed")
        self._trace("invocation-replay", entry.origin, thread.name,
                    entry.target,
                    f"replaying {entry.id} after node {dead_id} died")
        origin = self.cluster.node(entry.origin)
        try:
            believed = self.believed_location(origin, entry.target)
        except ObjectNotFoundError:
            self._fail_thread(thread, dead_id)
            return
        self._send_thread(thread, entry.origin, believed, entry.payload)

    def _fail_thread(self, thread: SimThread, dead_id: int) -> None:
        """No recoverable invocation: terminate the thread with a typed
        NodeFailure instead of letting it hang, delivering the failure
        to every joiner."""
        failure = NodeFailure(
            f"thread {thread.name} lost with node {dead_id}: no "
            f"checkpointed state to replay its work against")
        thread.run_token += 1
        thread.state = ThreadState.DONE
        thread.result = None
        thread.exception = failure
        thread.location = dead_id
        thread.stack = []
        thread.resurrect_stack = []
        thread.carried_checkpoints = []
        thread.transit_target = None
        thread.transit_path = []
        thread.on_arrival = None
        self.metrics.inc("threads_lost")
        self._trace("thread-failed", dead_id, thread.name,
                    detail="unrecoverable: NodeFailure raised to joiners")
        joiners, thread.joiners = thread.joiners, []
        for joiner in joiners:
            if joiner.done:
                continue
            joiner.send_value = None
            joiner.send_exc = failure
            self._ready(joiner, joiner.location, self.costs.join_us)

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------

    def start_main(self, obj: SimObject, method: str, args: Tuple,
                   node_id: int) -> SimThread:
        """Bootstrap: create and start the program's main thread."""
        thread = self.new_thread(node_id, name="main")
        self._start_thread(thread, obj, method, args, charge_to=None)
        return thread

    def _start_thread(self, thread: SimThread, target: SimObject,
                      method: str, args: Tuple,
                      charge_to: Optional[SimThread]) -> None:
        thread.on_arrival = ("invoke",
                             sc.Invoke(target, method, *args), True)
        thread.state = ThreadState.READY
        self._ready(thread, thread.location, self.costs.dispatch_us)

    def _ready(self, thread: SimThread, node_id: int,
               surcharge_us: float) -> None:
        """Queue ``thread`` as runnable on ``node_id``."""
        thread.state = ThreadState.READY
        thread.location = node_id
        thread.cpu = None
        thread.surcharge_us += surcharge_us
        node = self.cluster.node(node_id)
        self._trace("ready", node_id, thread.name)
        node.scheduler.enqueue(thread)
        if self.cluster.tracer is not None:
            self.metrics.sample(f"ready_queue_n{node_id}",
                                len(node.scheduler))
        self._try_dispatch(node)

    def _try_dispatch(self, node: SimNode) -> None:
        if node.down:
            return
        while True:
            cpu = node.idle_cpu()
            if cpu is None or len(node.scheduler) == 0:
                return
            thread = node.scheduler.dequeue()
            if thread is None:
                return
            self._install_on_cpu(node, cpu, thread)

    def _install_on_cpu(self, node: SimNode, cpu: Cpu,
                        thread: SimThread) -> None:
        self._trace("run", node.id, thread.name)
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu.index
        thread.location = node.id
        thread.slice_left_us = self.costs.timeslice_us
        cpu.thread = thread
        surcharge = thread.surcharge_us
        thread.surcharge_us = 0.0
        self._charge(thread, surcharge,
                     lambda: self._after_switch_in(thread))

    def _release_cpu(self, thread: SimThread) -> None:
        """Take ``thread`` off its CPU and hand the CPU to the scheduler."""
        node = self.cluster.nodes[thread.location]
        cpu = node.cpus[thread.cpu]
        cpu.thread = None
        cpu.run_event = None
        thread.cpu = None
        self._try_dispatch(node)

    def _after_switch_in(self, thread: SimThread) -> None:
        """Runs whenever a thread (re)gains a CPU: consume any arrival
        action, then make the context-switch-time residency check of
        section 3.5 before letting user code continue."""
        node = self.cluster.nodes[thread.location]
        action = thread.on_arrival
        if action is not None and action[0] == "invoke":
            _, request, is_root = action
            vaddr = request.target.vaddr
            if node.descriptors.is_resident(vaddr):
                thread.on_arrival = None
                if self._recovering() and \
                        self._deliver_logged(thread, request):
                    return
                self._push_and_run(thread, request, is_root)
            else:
                self._trap_and_migrate(thread, vaddr,
                                       payload=request.arg_bytes)
            return
        if action is not None and action[0] == "deliver":
            _, value, exc = action
            top = thread.stack[-1]
            if node.descriptors.is_resident(top.obj.vaddr):
                thread.on_arrival = None
                self._observe_invoke_latency(thread)
                self._settle_replay_entries(thread)
                thread.send_value = value
                thread.send_exc = exc
                self._advance(thread)
            else:
                self._trap_and_migrate(thread, top.obj.vaddr)
            return
        # Plain resume: residency check against the current frame's object.
        if thread.stack:
            top = thread.stack[-1]
            if not node.descriptors.is_resident(top.obj.vaddr):
                self._trap_and_migrate(thread, top.obj.vaddr)
                return
        if thread.pending_compute_us > 0:
            self._run_pending_compute(thread)
        else:
            self._advance(thread)

    def _thread_exit(self, thread: SimThread, value: Any,
                     exc: Optional[BaseException]) -> None:
        def finish() -> None:
            self._trace("exit", thread.location, thread.name)
            self._settle_replay_entries(thread)
            thread.state = ThreadState.DONE
            thread.result = value
            thread.exception = exc
            self._release_cpu(thread)
            joiners, thread.joiners = thread.joiners, []
            san = _analysis.ACTIVE
            for joiner in joiners:
                if san is not None:
                    san.on_join(joiner, thread)
                joiner.send_value = value
                joiner.send_exc = exc
                self._ready(joiner, joiner.location, self.costs.join_us)

        self._charge(thread, self.costs.thread_exit_us, finish)

    # ------------------------------------------------------------------
    # CPU charging
    # ------------------------------------------------------------------

    def _charge(self, thread: SimThread, us: float, then,
                preemptible: bool = False) -> None:
        """Consume ``us`` of CPU on the thread's current CPU, then continue
        with ``then``.  The thread must be RUNNING."""
        # Direct indexing, not cluster.node(): thread.location is
        # kernel-maintained (only ever a validated node id), and this
        # runs once per charge — the single hottest lookup in a run.
        sim = self.sim
        node = self.cluster.nodes[thread.location]
        cpu = node.cpus[thread.cpu]
        cpu.charge_started_ns = sim.now_ns
        cpu.charge_us = us
        cpu.charge_preemptible = preemptible
        token = thread.run_token

        def fire() -> None:
            if thread.run_token != token:
                return  # stale: the thread was preempted mid-charge
            node.stats.cpu_busy_us += us
            cpu.run_event = None
            cpu.charge_preemptible = False
            then()

        # schedule_at_ns directly: charges are kernel-validated
        # non-negative, so the schedule_us guard is pure per-event
        # overhead on the single hottest scheduling site.
        cpu.run_event = sim.schedule_at_ns(
            sim.now_ns + round(us * NS_PER_US), fire)

    def _run_pending_compute(self, thread: SimThread) -> None:
        """Run (part of) an outstanding Compute, honoring the timeslice."""
        remaining = thread.pending_compute_us
        run = min(remaining, thread.slice_left_us)

        def done() -> None:
            # Duration event: timestamped at completion; the exporter
            # backdates the slice start by ``dur_us``.
            self._trace("compute", thread.location, thread.name,
                        dur_us=run)
            thread.pending_compute_us -= run
            thread.slice_left_us -= run
            if thread.pending_compute_us <= 1e-12:
                thread.pending_compute_us = 0.0
                if self._controller_preempts(thread):
                    return
                self._advance(thread)
                return
            node = self.cluster.nodes[thread.location]
            if len(node.scheduler) == 0:
                # Nobody waiting: take a fresh quantum and keep going.
                thread.slice_left_us = self.costs.timeslice_us
                self._run_pending_compute(thread)
            else:
                self._preempt_for_quantum(thread)

        self._charge(thread, run, done, preemptible=True)

    def _controller_preempts(self, thread: SimThread) -> bool:
        """AmberCheck hook: a compute segment just finished and other
        threads are runnable, so preempting here (instead of letting the
        thread run on into its next operation step) is a schedule
        exploration choice.  Without an installed
        :mod:`repro.analyze.check` controller the stock timeslice
        semantics apply unchanged and this is a single attribute load."""
        controller = _analysis.CONTROLLER
        if controller is None:
            return False
        node = self.cluster.nodes[thread.location]
        if len(node.scheduler) == 0:
            return False
        names = getattr(node.scheduler, "thread_names", None)
        queued = tuple(names()) if names is not None else ()
        chosen = controller.choose(
            "preempt", f"node{node.id}:{thread.name}",
            ("continue", "preempt"), queued=queued)
        if chosen == 0:
            return False
        self._preempt_for_quantum(thread)
        return True

    def _preempt_for_quantum(self, thread: SimThread) -> None:
        node = self.cluster.nodes[thread.location]
        node.stats.context_switches += 1
        thread.run_token += 1
        self._release_cpu(thread)
        self._ready(thread, node.id, self.costs.context_switch_us)

    def _preempt_cpu(self, node: SimNode, cpu: Cpu) -> None:
        """Move-protocol preemption of one running CPU (section 3.5): only
        a preemptible (user-compute) charge is actually interrupted; kernel
        protocol steps run to completion."""
        thread = cpu.thread
        if thread is None or not cpu.charge_preemptible:
            return
        if cpu.run_event is not None:
            cpu.run_event.cancel()
        elapsed_us = (self.sim.now_ns - cpu.charge_started_ns) / 1000
        node.stats.cpu_busy_us += elapsed_us
        thread.pending_compute_us = max(
            0.0, thread.pending_compute_us - elapsed_us)
        thread.run_token += 1
        node.stats.preemptions += 1
        node.stats.context_switches += 1
        if elapsed_us > 0:
            self._trace("compute", node.id, thread.name,
                        dur_us=elapsed_us)
        self._trace("preempt", node.id, thread.name)
        cpu.thread = None
        cpu.run_event = None
        thread.cpu = None
        self._ready(thread, node.id,
                    self.costs.context_switch_us
                    + self.costs.residency_check_us)

    # ------------------------------------------------------------------
    # Generator advancement and request dispatch
    # ------------------------------------------------------------------

    def _advance(self, thread: SimThread) -> None:
        """Advance the top activation's generator by one step."""
        activation = thread.stack[-1]
        gen = activation.gen
        exc = thread.send_exc
        value = thread.send_value
        thread.send_exc = None
        thread.send_value = None
        san = _analysis.ACTIVE
        if san is not None:
            san.step_begin(thread, activation.obj, activation.method)
        try:
            try:
                if exc is not None:
                    request = gen.throw(exc)
                else:
                    request = gen.send(value)
            finally:
                if san is not None:
                    san.step_end(thread, activation.obj)
        except StopIteration as stop:
            self._handle_return(thread, stop.value, None)
        except AmberError as error:
            self._handle_return(thread, None, error)
        except Exception as error:  # user code bug: propagate to caller
            self._handle_return(thread, None, error)
        else:
            self._handle_request(thread, request)

    def _handle_request(self, thread: SimThread, request: Any) -> None:
        try:
            handler = self._HANDLERS.get(type(request))
            if handler is None:
                raise InvocationError(
                    f"operation yielded a non-request value: {request!r}")
            handler(self, thread, request)
        except AmberError as error:
            # Deliver kernel-detected errors into the user generator so
            # programs can catch them.
            thread.send_exc = error
            self.sim.call_now(lambda: self._advance(thread))

    # --- Compute / Charge / Yield --------------------------------------

    def _handle_compute(self, thread: SimThread, request: sc.Compute) -> None:
        if request.us < 0:
            raise InvocationError(f"negative compute time: {request.us}")
        thread.pending_compute_us += float(request.us)
        self._run_pending_compute(thread)

    def _handle_charge(self, thread: SimThread, request: sc.Charge) -> None:
        if request.us < 0:
            raise InvocationError(f"negative charge: {request.us}")
        self._charge(thread, float(request.us),
                     lambda: self._advance(thread))

    def _handle_sleep(self, thread: SimThread, request: sc.Sleep) -> None:
        if request.us < 0:
            raise InvocationError(f"negative sleep time: {request.us}")
        node = self.cluster.nodes[thread.location]

        def block() -> None:
            thread.block_reason = "sleep"
            self._trace("block", node.id, thread.name, detail="sleep")
            thread.state = ThreadState.BLOCKED
            thread.run_token += 1
            token = thread.run_token
            self._release_cpu(thread)
            self.sim.schedule_us(request.us, lambda: wake(token))

        def wake(token: int) -> None:
            if thread.run_token != token:
                return  # resurrected or failed while asleep
            if thread.state is ThreadState.BLOCKED:
                self._ready(thread, thread.location,
                            self.costs.dispatch_us)

        self._charge(thread, self.costs.block_us, block)

    def _handle_yield(self, thread: SimThread, request: sc.Yield) -> None:
        node = self.cluster.nodes[thread.location]

        def then() -> None:
            if len(node.scheduler) == 0:
                thread.slice_left_us = self.costs.timeslice_us
                self._advance(thread)
            else:
                thread.run_token += 1
                node.stats.context_switches += 1
                self._release_cpu(thread)
                self._ready(thread, node.id, 0.0)

        self._charge(thread, self.costs.context_switch_us, then)

    # --- Invocation ------------------------------------------------------

    def _handle_invoke(self, thread: SimThread, request: sc.Invoke) -> None:
        self._validate_target(request.target)
        thread.invocations += 1
        thread.invoke_t0 = self.sim.now_us
        thread.invoke_remote = False
        self._charge(thread, self.costs.local_invoke_us,
                     lambda: self._invoke_entry(thread, request))

    def _invoke_entry(self, thread: SimThread, request: sc.Invoke) -> None:
        node = self.cluster.nodes[thread.location]
        vaddr = request.target.vaddr
        # AmberElide: proven-confined/immutable targets skip the
        # access-log update — its only consumers (affinity rebalancing,
        # flow evidence) never see elided runs, and a confined object's
        # log would be a single-node row anyway.
        skip = _ert.SKIP
        if not skip or type(request.target).__name__ not in skip:
            log = self.cluster.access_log.setdefault(vaddr, {})
            log[node.id] = log.get(node.id, 0) + 1
        if node.descriptors.is_resident(vaddr):
            node.stats.local_invocations += 1
            if not request.target.immutable and self._recovering() \
                    and self._deliver_logged_local(thread, request):
                return
            self._trace("invoke-local", node.id, thread.name, vaddr,
                        request.method)
            self._push_and_run(thread, request, is_root=False)
        elif request.target.immutable:
            self._fetch_replica(
                thread, request.target,
                lambda: self._push_and_run(thread, request, is_root=False))
        else:
            thread.remote_invocations += 1
            node.stats.remote_invocations += 1
            thread.invoke_remote = True
            self._trace("invoke-remote", node.id, thread.name, vaddr,
                        request.method)
            self._trap_and_migrate(thread, vaddr, payload=request.arg_bytes,
                                   on_arrival=("invoke", request, False))

    def _handle_fast_invoke(self, thread: SimThread,
                            request: sc.FastInvoke) -> None:
        """Section 3.6: a call that assumes co-residency.  The kernel
        charges only the inline-call cost, but verifies the assumption:
        the target must be in the invoking object's attachment group (or
        be the object itself)."""
        self._validate_target(request.target)
        if not thread.stack:
            raise InvocationError(
                "FastInvoke requires an enclosing operation")
        current = thread.stack[-1].obj
        target = request.target
        group = self.cluster.attachments.group(current.vaddr)
        if target.vaddr != current.vaddr and target.vaddr not in group:
            raise InvocationError(
                f"FastInvoke on {target!r}: co-residency with "
                f"{current!r} is not guaranteed (attach them first)")
        thread.invocations += 1
        thread.invoke_t0 = self.sim.now_us
        thread.invoke_remote = False

        def then() -> None:
            node = self.cluster.nodes[thread.location]
            node.stats.local_invocations += 1
            self._push_and_run(
                thread,
                sc.Invoke(target, request.method, *request.args,
                          **request.kwargs),
                is_root=False)

        self._charge(thread, self.costs.inline_call_us, then)

    def _push_and_run(self, thread: SimThread, request: sc.Invoke,
                      is_root: bool) -> None:
        target = request.target
        context = InvocationContext(self, thread)
        san = _analysis.ACTIVE
        try:
            fn = operation_of(target, request.method)
            if san is not None:
                # Atomic bodies (and generator construction) run as one
                # sanitizer step on the target object.
                san.step_begin(thread, target, request.method)
                try:
                    result = fn(context, *request.args,
                                **getattr(request, "kwargs", {}))
                finally:
                    san.step_end(thread, target)
            else:
                result = fn(context, *request.args,
                            **getattr(request, "kwargs", {}))
        except Exception as error:
            self._handle_return(thread, None, error, pop=False)
            return
        if hasattr(result, "send") and hasattr(result, "throw"):
            activation = Activation(target, request.method, result)
            activation.result_bytes = request.result_bytes
            activation.start_us = thread.invoke_t0
            activation.remote = thread.invoke_remote
            activation.root = is_root
            thread.stack.append(activation)
            thread.send_value = None
            self._advance(thread)
        else:
            # Atomic operation: completed instantly; its return still
            # pops the (implicit) frame and pays the return-check cost.
            # An elided sync op deposits its nominal SYNC_OP_US in the
            # thread's surcharge; folding it into this charge keeps
            # simulated elapsed identical to the slow path while saving
            # the separate Charge event.  (A RUNNING thread's surcharge
            # is otherwise always zero — it is consumed at switch-in.)
            surcharge = thread.surcharge_us
            if surcharge:
                thread.surcharge_us = 0.0
            if self._recovering() and thread.resurrect_stack:
                entry = thread.resurrect_stack[-1]
                if not entry.completed and entry.request is request:
                    self._record_completion(thread, entry, result, None)
            if not is_root:
                thread.pending_invoke_metric = (
                    "invoke_remote_us" if thread.invoke_remote
                    else "invoke_local_us", thread.invoke_t0)
            self._charge(thread, self.costs.local_return_us + surcharge,
                         lambda: self._complete_return(
                             thread, result, None,
                             result_bytes=request.result_bytes))

    def _handle_return(self, thread: SimThread, value: Any,
                       exc: Optional[BaseException],
                       pop: bool = True) -> None:
        """The top operation finished (normally or exceptionally)."""
        result_bytes = 0
        if pop and thread.stack:
            frame = thread.stack[-1]
            result_bytes = getattr(frame, "result_bytes", 0)
            if not frame.root:
                # Observed once the value is delivered to the caller, so
                # remote latencies include the migration back.
                thread.pending_invoke_metric = (
                    "invoke_remote_us" if frame.remote
                    else "invoke_local_us", frame.start_us)
            thread.stack.pop()
            if self._recovering() and thread.resurrect_stack:
                entry = thread.resurrect_stack[-1]
                if not entry.completed and \
                        len(thread.stack) <= entry.depth:
                    self._record_completion(thread, entry, value, exc)
        if not thread.stack:
            self._thread_exit(thread, value, exc)
            return
        self._charge(thread, self.costs.local_return_us,
                     lambda: self._complete_return(thread, value, exc,
                                                   result_bytes))

    def _complete_return(self, thread: SimThread, value: Any,
                         exc: Optional[BaseException],
                         result_bytes: int = 0) -> None:
        """Return-time residency check: the frame has been popped; make
        sure we are where the caller's object lives before continuing."""
        node = self.cluster.nodes[thread.location]
        top = thread.stack[-1]
        if node.descriptors.is_resident(top.obj.vaddr):
            self._observe_invoke_latency(thread)
            self._settle_replay_entries(thread)
            thread.send_value = value
            thread.send_exc = exc
            self._advance(thread)
        else:
            self._trap_and_migrate(thread, top.obj.vaddr,
                                   payload=result_bytes,
                                   on_arrival=("deliver", value, exc))

    def _observe_invoke_latency(self, thread: SimThread) -> None:
        """Record a completed invocation's end-to-end latency once its
        value reaches the caller (after any return-time migration)."""
        pending = thread.pending_invoke_metric
        if pending is not None:
            thread.pending_invoke_metric = None
            name, start_us = pending
            self.metrics.observe(name, self.sim.now_us - start_us)

    def _validate_target(self, target: Any) -> None:
        if not isinstance(target, SimObject):
            raise InvocationError(
                f"invocation target {target!r} is not an Amber object")
        if getattr(target, "_location", None) is None and \
                target.vaddr not in self.cluster.objects:
            raise ObjectNotFoundError(f"{target!r} has been deleted")

    # --- Thread requests --------------------------------------------------

    def _handle_new(self, thread: SimThread, request: sc.New) -> None:
        node_id = (thread.location if request.on_node is None
                   else request.on_node)

        def then() -> None:
            try:
                obj = self.create_object(request.cls, request.args,
                                         request.kwargs, node_id,
                                         request.size_bytes)
            except AmberError as error:
                thread.send_exc = error
            else:
                # AmberElide: mark a lock whose (creator, class) pair
                # the active artifact proves single-thread-reachable.
                owners = _ert.LOCK_OWNERS
                if owners and thread.stack:
                    creator = _ert.lock_owner_name(
                        type(thread.stack[-1].obj).__name__)
                    if (creator, request.cls.__name__) in owners:
                        obj._elide_ok = True
                thread.send_value = obj
            self._advance(thread)

        self._charge(thread, self.costs.object_create_us(), then)

    def _handle_delete(self, thread: SimThread, request: sc.Delete) -> None:
        self._validate_target(request.target)

        def then() -> None:
            try:
                self.delete_object(request.target, thread.location)
            except AmberError as error:
                thread.send_exc = error
            self._advance(thread)

        self._charge(thread, self.costs.descriptor_init_us, then)

    def _handle_new_thread(self, thread: SimThread,
                           request: sc.NewThread) -> None:
        self._validate_target(request.target)

        def then() -> None:
            child = self.new_thread(thread.location, request.name,
                                    request.priority)
            child.on_arrival = (
                "invoke",
                sc.Invoke(request.target, request.method, *request.args),
                True)
            thread.send_value = child
            self._advance(thread)

        self._charge(thread, self.costs.object_create_us(), then)

    def _handle_start(self, thread: SimThread, request: sc.Start) -> None:
        child = request.thread
        if not isinstance(child, SimThread) or \
                child.state is not ThreadState.NEW:
            raise InvocationError(
                f"Start requires an unstarted thread, got {child!r}")

        def then() -> None:
            san = _analysis.ACTIVE
            if san is not None:
                san.on_start(thread, child)
            self._ready(child, child.location, self.costs.dispatch_us)
            thread.send_value = child
            self._advance(thread)

        self._charge(thread, self.costs.thread_start_us, then)

    def _handle_fork(self, thread: SimThread, request: sc.Fork) -> None:
        self._validate_target(request.target)

        def started() -> None:
            child = self.new_thread(thread.location, request.name,
                                    request.priority)
            child.on_arrival = (
                "invoke",
                sc.Invoke(request.target, request.method, *request.args,
                          arg_bytes=request.arg_bytes),
                True)
            san = _analysis.ACTIVE
            if san is not None:
                san.on_start(thread, child)
            self._ready(child, child.location, self.costs.dispatch_us)
            thread.send_value = child
            self._advance(thread)

        self._charge(thread,
                     self.costs.object_create_us()
                     + self.costs.thread_start_us,
                     started)

    def _handle_join(self, thread: SimThread, request: sc.Join) -> None:
        target = request.thread
        if not isinstance(target, SimThread):
            raise InvocationError(f"Join target {target!r} is not a thread")
        if target is thread:
            raise InvocationError("a thread cannot join itself")
        if target.done:
            def then() -> None:
                san = _analysis.ACTIVE
                if san is not None:
                    san.on_join(thread, target)
                thread.send_value = target.result
                thread.send_exc = target.exception
                self._advance(thread)

            self._charge(thread, self.costs.join_us, then)
            return

        def block() -> None:
            if target.done:
                # The target exited while we were entering the wait.
                san = _analysis.ACTIVE
                if san is not None:
                    san.on_join(thread, target)
                thread.send_value = target.result
                thread.send_exc = target.exception
                self._advance(thread)
                return
            target.joiners.append(thread)
            thread.block_reason = "join"
            self._trace("block", thread.location, thread.name,
                        detail="join")
            thread.state = ThreadState.BLOCKED
            thread.run_token += 1
            self._release_cpu(thread)

        self._charge(thread, self.costs.block_us, block)

    def _handle_suspend(self, thread: SimThread,
                        request: sc.Suspend) -> None:
        def then() -> None:
            if thread.wakeup_pending:
                thread.wakeup_pending = False
                self._advance(thread)
                return
            thread.block_reason = request.reason
            self._trace("block", thread.location, thread.name,
                        detail=request.reason)
            thread.state = ThreadState.BLOCKED
            thread.run_token += 1
            self._release_cpu(thread)

        self._charge(thread, self.costs.block_us, then)

    def _handle_wakeup(self, thread: SimThread, request: sc.Wakeup) -> None:
        target = request.thread
        if not isinstance(target, SimThread):
            raise InvocationError(f"Wakeup target {target!r} is not a thread")

        def then() -> None:
            san = _analysis.ACTIVE
            if san is not None and not target.done:
                san.on_wakeup(thread, target)
            if target.state is ThreadState.BLOCKED:
                self._ready(target, target.location, self.costs.dispatch_us)
            elif not target.done:
                target.wakeup_pending = True
            self._advance(thread)

        self._charge(thread, self.costs.wakeup_us, then)

    # --- Mobility ----------------------------------------------------------

    def _handle_moveto(self, thread: SimThread, request: sc.MoveTo) -> None:
        self._validate_target(request.target)
        dest = request.node
        self.cluster.node(dest)  # validates the node id
        target = request.target
        t0 = self.sim.now_us
        if isinstance(target, SimThread):
            self._move_thread_object(thread, target, dest)
            return
        if target.immutable:
            self._replicate(
                thread, target, dest,
                lambda: self._finish_move(thread, "replicate_us", t0))
            return
        node = self.cluster.nodes[thread.location]
        if node.descriptors.is_resident(target.vaddr):
            self._move_group_local(
                thread, node, target.vaddr, dest,
                lambda: self._finish_move(thread, "move_us", t0))
        else:
            self._move_remote(thread, target.vaddr, dest, t0)

    def _finish_move(self, thread: SimThread, metric: str,
                     t0: float) -> None:
        self.metrics.observe(metric, self.sim.now_us - t0)
        self._resume_after_move(thread)

    def _resume_after_move(self, thread: SimThread) -> None:
        """After a move completes, the mover itself may now be standing on
        the wrong node (it was bound to the moved group)."""
        node = self.cluster.nodes[thread.location]
        if thread.stack and not node.descriptors.is_resident(
                thread.stack[-1].obj.vaddr):
            self._trap_and_migrate(thread, thread.stack[-1].obj.vaddr,
                                   on_arrival=("deliver", None, None))
        else:
            thread.send_value = None
            self._advance(thread)

    def _move_group_local(self, mover: Optional[SimThread], node: SimNode,
                          vaddr: int, dest: int, on_done) -> None:
        """Execute the move protocol with the object resident on ``node``.

        ``mover`` holds a CPU on ``node`` for the CPU-bound phases; a
        ``None`` mover (move request arriving from another node) charges
        the same costs as pure delays.
        """
        costs = self.costs
        cluster = self.cluster
        group: List[SimObject] = []
        if dest == node.id:
            self._after(mover, node, costs.move_setup_us, on_done)
            return

        def setup_done() -> None:
            nonlocal group
            if not node.descriptors.is_resident(vaddr):
                # Lost a race with a concurrent move: the object left
                # while we were setting up.  Chase it and run the
                # protocol where it actually lives.
                self._route_control(
                    node, vaddr,
                    lambda holder: self._move_group_local(
                        None, holder, vaddr, dest, on_done))
                return
            # 1. Mark every member non-resident, leaving forwarding
            #    addresses (before the copy, per section 3.5).  The
            #    group is read now, under the same event as the marking.
            group = [cluster.objects[member]
                     for member in cluster.attachments.group(vaddr)]
            for member in group:
                node.descriptors.set_forwarding(member.vaddr, dest)
                member._location = None
            # 2. Briefly interrupt every other processor so running
            #    threads make residency checks when rescheduled.
            for cpu in node.cpus:
                if mover is not None and cpu.index == mover.cpu:
                    continue
                self._preempt_cpu(node, cpu)
            preempt_cost = costs.preempt_us * max(0, node.ncpus - 1)
            marshal_cost = costs.object_marshal_us * len(group)
            self._after(mover, node, preempt_cost + marshal_cost, transmit)

        def transmit() -> None:
            total_bytes = sum(member.size_bytes for member in group)
            self.net.send_reliable(node.id, dest, total_bytes, arrived)

        def arrived() -> None:
            self.sim.schedule_us(costs.object_install_us * len(group),
                                 install)

        def install() -> None:
            dest_node = cluster.node(dest)
            for member in group:
                dest_node.descriptors.set_resident(member.vaddr)
                member._location = dest
            dest_node.stats.objects_in += len(group)
            node.stats.objects_out += len(group)
            cluster.stats.object_moves += 1
            self._trace("move", dest, "", vaddr,
                        f"group of {len(group)} from node {node.id}")
            self.net.send_reliable(dest, node.id, costs.control_bytes,
                                   acked)

        def acked() -> None:
            self._after(mover, node, costs.move_complete_us, on_done)

        self._after(mover, node, costs.move_setup_us, setup_done)

    def _after(self, mover: Optional[SimThread], node: SimNode,
               us: float, then) -> None:
        """Charge ``us`` to the mover's CPU if there is a local mover,
        otherwise let it elapse as kernel time at ``node``."""
        if mover is not None and mover.location == node.id and \
                mover.cpu is not None:
            self._charge(mover, us, then)
        else:
            node.stats.cpu_busy_us += us
            self.sim.schedule_us(us, then)

    def _move_remote(self, thread: SimThread, vaddr: int, dest: int,
                     t0: Optional[float] = None) -> None:
        """MoveTo on a non-resident object: route the request to wherever
        the object lives and run the protocol there."""
        origin = self.cluster.nodes[thread.location]
        if t0 is None:
            t0 = self.sim.now_us

        def found(holder: SimNode) -> None:
            self._move_group_local(
                None, holder, vaddr, dest,
                lambda: self.net.send_reliable(holder.id, origin.id,
                                               self.costs.control_bytes,
                                               resume))

        def resume() -> None:
            self._charge(thread, self.costs.move_complete_us,
                         lambda: self._finish_move(thread, "move_us", t0))

        self._charge(thread, self.costs.remote_trap_us,
                     lambda: self._route_control(origin, vaddr, found))

    def _move_thread_object(self, mover: SimThread, target: SimThread,
                            dest: int) -> None:
        """Moving a thread object relocates the thread itself.  Only
        unstarted, queued, or blocked threads may be moved explicitly;
        running threads move via the invocation mechanism."""
        if target is mover or target.state in (ThreadState.RUNNING,
                                               ThreadState.TRANSIT):
            raise MobilityError(
                f"cannot explicitly move {target!r} while it is "
                f"{target.state.value}; threads migrate via invocation")
        if target.done:
            raise MobilityError(f"cannot move finished thread {target!r}")
        costs = self.costs
        source = self.cluster.node(target.location)

        def depart() -> None:
            was_ready = target.state is ThreadState.READY
            if was_ready:
                source.scheduler.remove(target)
                target.state = ThreadState.TRANSIT
            source.descriptors.set_forwarding(target.vaddr, dest)
            source.stats.threads_out += 1
            self.cluster.stats.thread_migrations += 1
            target.migrations += 1

            def arrive() -> None:
                dest_node = self.cluster.node(dest)
                dest_node.descriptors.set_resident(target.vaddr)
                dest_node.stats.threads_in += 1
                target.location = dest
                target._location = dest
                if was_ready:
                    target.state = ThreadState.BLOCKED  # re-readied below
                    self._ready(target, dest, costs.thread_recv_cpu_us())
                # NEW threads stay NEW (Start will queue them here);
                # BLOCKED threads stay blocked and resume here when woken.
            self.net.send_reliable(source.id, dest,
                                   costs.thread_packet_bytes, arrive)
            mover.send_value = None
            self._advance(mover)

        self._charge(mover, costs.thread_marshal_us, depart)

    def _handle_locate(self, thread: SimThread, request: sc.Locate) -> None:
        self._validate_target(request.target)
        vaddr = request.target.vaddr
        node = self.cluster.nodes[thread.location]
        self.cluster.stats.locates += 1
        t0 = self.sim.now_us

        def local_check() -> None:
            if node.descriptors.is_resident(vaddr):
                self.metrics.observe("locate_us", self.sim.now_us - t0)
                thread.send_value = node.id
                self._advance(thread)
                return
            self._route_control(node, vaddr, found)

        def found(holder: SimNode) -> None:
            self.net.send_reliable(holder.id, node.id,
                                   self.costs.control_bytes,
                                   lambda: deliver(holder.id))

        def deliver(where: int) -> None:
            self.metrics.observe("locate_us", self.sim.now_us - t0)
            thread.send_value = where
            self._advance(thread)

        self._charge(thread, self.costs.local_invoke_us, local_check)

    def _handle_attach(self, thread: SimThread, request: sc.Attach) -> None:
        self._validate_target(request.target)
        self._validate_target(request.to)
        node = self.cluster.nodes[thread.location]
        a, b = request.target, request.to
        if a.immutable or b.immutable:
            raise AttachmentError(
                "immutable (replicated) objects cannot be attached")
        if not (node.descriptors.is_resident(a.vaddr)
                and node.descriptors.is_resident(b.vaddr)):
            raise AttachmentError(
                "Attach requires both objects resident on the current node "
                f"(node {node.id}): {a!r}, {b!r}")

        def then() -> None:
            try:
                self.cluster.attachments.attach(a.vaddr, b.vaddr)
            except AmberError as error:
                thread.send_exc = error
            self._advance(thread)

        self._charge(thread, self.costs.descriptor_init_us, then)

    def _handle_unattach(self, thread: SimThread,
                         request: sc.Unattach) -> None:
        self._validate_target(request.target)

        def then() -> None:
            try:
                self.cluster.attachments.unattach(request.target.vaddr)
            except AmberError as error:
                thread.send_exc = error
            self._advance(thread)

        self._charge(thread, self.costs.descriptor_init_us, then)

    def _handle_set_immutable(self, thread: SimThread,
                              request: sc.SetImmutable) -> None:
        self._validate_target(request.target)
        target = request.target

        def then() -> None:
            if isinstance(target, SimThread):
                thread.send_exc = MobilityError(
                    "threads cannot be marked immutable")
            elif self.cluster.attachments.is_attached(target.vaddr) or \
                    target.vaddr in self.cluster.attachments.members():
                thread.send_exc = MobilityError(
                    "detach objects before marking them immutable")
            else:
                target._immutable = True
                target._replica_nodes = {target._location}
            self._advance(thread)

        self._charge(thread, self.costs.descriptor_init_us, then)

    def _handle_refresh(self, thread: SimThread, request: sc.Refresh) -> None:
        self._validate_target(request.target)
        target = request.target
        node = self.cluster.nodes[thread.location]
        if not target.immutable:
            raise MobilityError(f"Refresh requires an immutable object, "
                                f"got {target!r}")
        if node.descriptors.is_resident(target.vaddr):
            self._charge(thread, self.costs.residency_check_us,
                         lambda: self._resume_none(thread))
            return
        self._fetch_replica(thread, target,
                            lambda: self._resume_none(thread))

    def _resume_none(self, thread: SimThread) -> None:
        thread.send_value = None
        self._advance(thread)

    def _replicate(self, thread: SimThread, target: SimObject, dest: int,
                   on_done) -> None:
        """Copy an immutable object to ``dest`` (MoveTo-on-immutable)."""
        costs = self.costs
        cluster = self.cluster
        dest_node = cluster.node(dest)
        if dest_node.descriptors.is_resident(target.vaddr):
            self._charge(thread, costs.residency_check_us, on_done)
            return
        source = min(target._replica_nodes)

        def request_sent() -> None:
            self.net.send_reliable(thread.location, source,
                                   costs.control_bytes, marshal)

        def marshal() -> None:
            self.sim.schedule_us(costs.object_marshal_us, transfer)

        def transfer() -> None:
            self.net.send_reliable(source, dest, target.size_bytes, install)

        def install() -> None:
            self.sim.schedule_us(costs.object_install_us, installed)

        def installed() -> None:
            dest_node.descriptors.set_resident(target.vaddr)
            target._replica_nodes.add(dest)
            dest_node.stats.replicas_installed += 1
            cluster.stats.replications += 1
            self._trace("replicate", dest, "", target.vaddr,
                        f"from node {source}")
            if dest == thread.location:
                # The replica landed right here: no acknowledgement needed.
                self._charge(thread, 0.0, on_done)
            else:
                self.net.send_reliable(dest, thread.location,
                                       costs.control_bytes,
                                       lambda: self._charge(thread, 0.0,
                                                            on_done))

        if source == thread.location:
            # We hold a replica: marshal here and ship it.
            self._charge(thread, costs.object_marshal_us, transfer)
        else:
            self._charge(thread, costs.remote_trap_us, request_sent)

    def _fetch_replica(self, thread: SimThread, target: SimObject,
                       on_done) -> None:
        """Install a local replica of an immutable object, then continue."""
        t0 = self.sim.now_us

        def done() -> None:
            self.metrics.observe("replicate_us", self.sim.now_us - t0)
            on_done()

        self._replicate(thread, target, thread.location, done)

    # --- Scheduling control -------------------------------------------------

    def _handle_set_scheduler(self, thread: SimThread,
                              request: sc.SetScheduler) -> None:
        node = self.cluster.node(request.node)

        def then() -> None:
            node.set_scheduler(request.scheduler)
            thread.send_value = None
            self._advance(thread)
            self._try_dispatch(node)

        self._charge(thread, self.costs.descriptor_init_us, then)

    def _handle_get_stats(self, thread: SimThread,
                          request: sc.GetStats) -> None:
        thread.send_value = self.cluster.stats
        self.sim.call_now(lambda: self._advance(thread))

    # ------------------------------------------------------------------
    # Thread migration (function shipping)
    # ------------------------------------------------------------------

    def _trap_and_migrate(self, thread: SimThread, target_vaddr: int,
                          payload: int = 0, on_arrival=None) -> None:
        """The residency check failed: trap to the kernel and move the
        thread toward the target object."""
        if on_arrival is not None:
            thread.on_arrival = on_arrival
        costs = self.costs
        node = self.cluster.nodes[thread.location]

        def depart() -> None:
            node.stats.threads_out += 1
            self.cluster.stats.thread_migrations += 1
            thread.migrations += 1
            thread.transit_start_us = self.sim.now_us
            self._trace("migrate-out", node.id, thread.name, target_vaddr)
            thread.state = ThreadState.TRANSIT
            thread.run_token += 1
            thread.transit_target = target_vaddr
            thread.transit_path = [node.id]
            if self._recovering():
                self._log_departure(thread, node.id)
            believed = self.believed_location(node, target_vaddr)
            self._release_cpu(thread)
            thread.location = None
            self._send_thread(thread, node.id, believed, payload)

        self._charge(thread, costs.thread_send_cpu_us(), depart)

    def _send_thread(self, thread: SimThread, src: int, dst: int,
                     payload: int) -> None:
        nbytes = self.costs.thread_packet_bytes + payload
        thread.transit_hop = dst
        token = thread.run_token

        def deliver() -> None:
            if thread.run_token != token or thread.done:
                return  # resurrected or failed while in flight
            self._thread_arrival(thread, dst, payload)

        def give_up() -> None:
            if thread.run_token != token or thread.done:
                return
            self._thread_send_failed(thread, src, dst, payload)

        self.net.send_reliable(src, dst, nbytes, deliver,
                               on_give_up=give_up, kind="thread")

    def _thread_send_failed(self, thread: SimThread, src: int, dst: int,
                            payload: int) -> None:
        """The reliable layer exhausted its retries migrating ``thread``
        to ``dst``: that hop is dead.  Shed the stale hint that led
        there and reroute via the object's home node — unless the dead
        node is where the home itself points (or *is* the home), in
        which case the object is behind the crash and all we can do is
        probe on a slow timer until it restarts or the budget runs out."""
        vaddr = thread.transit_target
        if self._recovering():
            if vaddr in self._lost_objects:
                self._fail_thread(thread, dst)
                return
            obj = self.cluster.objects.get(vaddr)
            where = getattr(obj, "_location", None)
            if (where is not None and where != dst
                    and not self.cluster.node(where).down
                    and self.cluster.node(where).descriptors
                        .is_resident(vaddr)):
                # The object escaped the crash (a promoted backup, or a
                # live holder): go straight there, not via a corpse.
                self.metrics.inc("home_fallbacks")
                self._trace("home-fallback", src, thread.name, vaddr,
                            f"node {dst} unreachable; live copy at "
                            f"node {where}")
                self._send_thread(thread, src, where, payload)
                return
        home = self.cluster.home_node(vaddr)
        source = self.cluster.node(src)
        if dst != home and src != home:
            descriptor = source.descriptors.lookup(vaddr)
            if (descriptor is not None and not descriptor.resident
                    and descriptor.forward_to == dst):
                source.descriptors.clear(vaddr)
                self.metrics.inc("hints_repaired")
            self.metrics.inc("home_fallbacks")
            self._trace("home-fallback", src, thread.name, vaddr,
                        f"node {dst} unreachable; rerouting via home {home}")
            self._send_thread(thread, src, home, payload)
            return
        thread.home_probes += 1
        self.metrics.inc("home_probes")
        if thread.home_probes > MAX_HOME_PROBES:
            if self._recovering():
                # Typed failure instead of an exception out of the event
                # loop: the object is behind a crash with no recoverable
                # copy, so the thread terminates and its joiners learn.
                self._fail_thread(thread, dst)
                return
            raise ObjectNotFoundError(
                f"thread {thread.name} cannot reach object {vaddr:#x}: "
                f"node {dst} stayed unreachable through "
                f"{MAX_HOME_PROBES} probes")
        self._trace("home-probe", src, thread.name, vaddr,
                    f"probe {thread.home_probes} of node {dst}")
        token = thread.run_token
        self.sim.schedule_us(
            self._probe_interval_us(),
            lambda: None if thread.run_token != token or thread.done
            else self._send_thread(thread, src, dst, payload))

    def _probe_interval_us(self) -> float:
        """Spacing between probes of an unreachable node: the retry
        layer's backoff cap, so probes are strictly slower than the
        in-protocol retransmissions that already failed."""
        plan = self.cluster.faults
        return plan.rto_cap_us if plan is not None else 1_000.0

    def _chain_repair_locate(self, origin_id: int, vaddr: int,
                             on_found, probes: int = 0) -> None:
        """Broadcast locate of last resort (the Emerald lineage's
        unreachable-object search).  A restart can shed a forwarding
        link whose upstream hints still point into the broken chain,
        leaving a cycle no amount of chasing escapes — e.g. the home's
        stale hint aims at the restarted node, which knows nothing and
        bounces requests back to the home.  When a chase detects such a
        cycle, ask every node directly whether the object is resident
        there and repair the chain from the answer.

        If no node holds the object (it may be in transit, or behind a
        crashed node that dropped the query), the broadcast is retried
        on the probe timer up to :data:`MAX_HOME_PROBES` times before
        the object is declared lost.  Queries go out in node-id order
        and replies are collected by counting, so the broadcast is
        deterministic."""
        if self.cluster.node(origin_id).descriptors.is_resident(vaddr):
            on_found(origin_id)  # arrived here while we were looping
            return
        self.metrics.inc("location_broadcasts")
        self._trace("locate-broadcast", origin_id, "", vaddr,
                    f"round {probes + 1}")
        peers = [node for node in self.cluster.nodes
                 if node.id != origin_id]
        outstanding = [len(peers)]
        found: List[int] = []

        def finish() -> None:
            if found:
                on_found(min(found))
                return
            if probes >= MAX_HOME_PROBES:
                raise ObjectNotFoundError(
                    f"object {vaddr:#x} not resident on any node after "
                    f"{MAX_HOME_PROBES} broadcast rounds: lost")
            self.metrics.inc("home_probes")
            self.sim.schedule_us(
                self._probe_interval_us(),
                lambda: self._chain_repair_locate(origin_id, vaddr,
                                                  on_found, probes + 1))

        def account() -> None:
            outstanding[0] -= 1
            if outstanding[0] == 0:
                finish()

        for peer in peers:
            def query(peer=peer) -> None:
                def check() -> None:
                    if peer.descriptors.is_resident(vaddr):
                        found.append(peer.id)
                    self.net.send_reliable(peer.id, origin_id,
                                           self.costs.control_bytes,
                                           account, on_give_up=account)

                self.net.send_reliable(origin_id, peer.id,
                                       self.costs.control_bytes, check,
                                       on_give_up=account)

            query()

    def _repair_hints(self, origin_id: int, vaddr: int,
                      where: int) -> None:
        """Point the origin's and the home's hints at the located
        holder so the repaired chain is immediately usable."""
        self.cluster.node(origin_id).descriptors.update_hint(vaddr, where)
        home = self.cluster.home_node(vaddr)
        self.cluster.node(home).descriptors.update_hint(vaddr, where)
        self.metrics.inc("hints_repaired")

    def _thread_arrival(self, thread: SimThread, node_id: int,
                        payload: int) -> None:
        node = self.cluster.node(node_id)
        if node.down and self._recovering():
            # Delivery raced the crash: landed on a corpse.  Bounce from
            # the last live hop as if the send had given up.
            src = thread.transit_path[-1] if thread.transit_path \
                else node_id
            self._thread_send_failed(thread, src, node_id, payload)
            return
        thread.home_probes = 0
        thread.transit_path.append(node_id)
        if thread.carried_checkpoints:
            self._flush_carried(thread, node_id)
        vaddr = thread.transit_target
        if len(thread.transit_path) > MAX_CHASE_HOPS:
            raise ObjectNotFoundError(
                f"thread {thread.name} chased object {vaddr:#x} for more "
                f"than {MAX_CHASE_HOPS} hops")
        if node.descriptors.is_resident(vaddr):
            # Found it: cache the location along the path we took.
            for visited in thread.transit_path[:-1]:
                self.cluster.node(visited).descriptors.update_hint(
                    vaddr, node_id)
            # The thread object itself now resides here.
            self._relocate_thread_object(thread, node_id)
            node.stats.threads_in += 1
            self._trace("migrate-in", node_id, thread.name, vaddr)
            san = _analysis.ACTIVE
            if san is not None:
                san.on_migrate(thread, node_id, self.sim.now_us)
            self.metrics.observe(
                "migration_us", self.sim.now_us - thread.transit_start_us)
            self.metrics.observe("forward_chain_hops",
                                 max(0, len(thread.transit_path) - 2))
            thread.transit_target = None
            thread.transit_path = []
            self._ready(thread, node_id, self.costs.thread_recv_cpu_us())
            return
        # Not here: follow the chain one more hop.
        node.stats.forward_hops += 1
        self.cluster.stats.forwarding_hops_followed += 1
        next_node = self.believed_location(node, vaddr)
        if thread.transit_path.count(next_node) >= 2:
            # We have been to next_node before and come back: the chain
            # is cyclic (a restart shed a link the remaining hints still
            # route through).  Chasing cannot terminate; locate the
            # object by broadcast and repair the chain.
            def repaired(where: int) -> None:
                self._repair_hints(node_id, vaddr, where)
                thread.transit_path = [node_id]
                self._send_thread(thread, node_id, where, payload)

            self.sim.schedule_us(
                self.costs.forward_hop_us,
                lambda: self._chain_repair_locate(node_id, vaddr, repaired))
            return
        self.sim.schedule_us(
            self.costs.forward_hop_us,
            lambda: self._send_thread(thread, node_id, next_node, payload))

    def _relocate_thread_object(self, thread: SimThread,
                                node_id: int) -> None:
        """Keep the thread object's descriptors consistent as it moves."""
        previous = thread._location
        if previous is not None and previous != node_id:
            self.cluster.node(previous).descriptors.set_forwarding(
                thread.vaddr, node_id)
        self.cluster.node(node_id).descriptors.set_resident(thread.vaddr)
        thread._location = node_id

    # ------------------------------------------------------------------
    # Control-message routing (locate / remote move requests)
    # ------------------------------------------------------------------

    def _route_control(self, origin, vaddr: int, on_found,
                       _path: Optional[List[int]] = None) -> None:
        """Send a control message chasing ``vaddr``; call ``on_found`` with
        the holder node.  Charges wire time per hop plus forwarding cost at
        intermediate nodes, and compresses the path when found."""
        path = _path if _path is not None else [origin.id]
        if len(path) > MAX_CHASE_HOPS:
            raise ObjectNotFoundError(
                f"control message chased {vaddr:#x} beyond hop limit")
        next_node = self.believed_location(origin, vaddr)
        if path.count(next_node) >= 2:
            # Cyclic chain (see _thread_arrival): broadcast-locate and
            # restart the chase at the repaired location.
            def repaired(where: int) -> None:
                self._repair_hints(origin.id, vaddr, where)
                self._route_control_hop(origin, vaddr, where, on_found,
                                        [origin.id], 0)

            self._chain_repair_locate(origin.id, vaddr, repaired)
            return
        self._route_control_hop(origin, vaddr, next_node, on_found, path, 0)

    def _route_control_hop(self, origin, vaddr: int, next_node: int,
                           on_found, path: List[int], probes: int) -> None:
        def delivered() -> None:
            node = self.cluster.node(next_node)
            path.append(next_node)
            if node.descriptors.is_resident(vaddr):
                for visited in path[:-1]:
                    self.cluster.node(visited).descriptors.update_hint(
                        vaddr, next_node)
                self.metrics.observe("forward_chain_hops",
                                     max(0, len(path) - 2))
                on_found(node)
                return
            node.stats.forward_hops += 1
            self.cluster.stats.forwarding_hops_followed += 1
            self.sim.schedule_us(
                self.costs.forward_hop_us,
                lambda: self._route_control(node, vaddr, on_found, path))

        def give_up() -> None:
            self._control_hop_failed(origin, vaddr, next_node, on_found,
                                     path, probes)

        self.net.send_reliable(origin.id, next_node,
                               self.costs.control_bytes, delivered,
                               on_give_up=give_up)

    def _control_hop_failed(self, origin, vaddr: int, dead: int,
                            on_found, path: List[int],
                            probes: int) -> None:
        """A control hop's destination is unreachable.  Mirror image of
        :meth:`_thread_send_failed`: shed the stale hint and reroute via
        the home node, or — when the object is behind the crash — probe
        the dead node on a slow timer until it restarts or the probe
        budget runs out."""
        home = self.cluster.home_node(vaddr)
        if dead != home and origin.id != home:
            descriptor = origin.descriptors.lookup(vaddr)
            if (descriptor is not None and not descriptor.resident
                    and descriptor.forward_to == dead):
                origin.descriptors.clear(vaddr)
                self.metrics.inc("hints_repaired")
            self.metrics.inc("home_fallbacks")
            self._trace("home-fallback", origin.id, "", vaddr,
                        f"node {dead} unreachable; rerouting via "
                        f"home {home}")
            self._route_control_hop(origin, vaddr, home, on_found, path, 0)
            return
        if probes >= MAX_HOME_PROBES:
            raise ObjectNotFoundError(
                f"control message cannot reach object {vaddr:#x}: node "
                f"{dead} stayed unreachable through "
                f"{MAX_HOME_PROBES} probes")
        self.metrics.inc("home_probes")
        self._trace("home-probe", origin.id, "", vaddr,
                    f"probe {probes + 1} of node {dead}")
        self.sim.schedule_us(
            self._probe_interval_us(),
            lambda: self._route_control_hop(origin, vaddr, dead, on_found,
                                            path, probes + 1))

    # ------------------------------------------------------------------

    _HANDLERS = {
        sc.Compute: _handle_compute,
        sc.Charge: _handle_charge,
        sc.Yield: _handle_yield,
        sc.Sleep: _handle_sleep,
        sc.Invoke: _handle_invoke,
        sc.FastInvoke: _handle_fast_invoke,
        sc.New: _handle_new,
        sc.Delete: _handle_delete,
        sc.NewThread: _handle_new_thread,
        sc.Start: _handle_start,
        sc.Fork: _handle_fork,
        sc.Join: _handle_join,
        sc.Suspend: _handle_suspend,
        sc.Wakeup: _handle_wakeup,
        sc.MoveTo: _handle_moveto,
        sc.Locate: _handle_locate,
        sc.Attach: _handle_attach,
        sc.Unattach: _handle_unattach,
        sc.SetImmutable: _handle_set_immutable,
        sc.Refresh: _handle_refresh,
        sc.SetScheduler: _handle_set_scheduler,
        sc.GetStats: _handle_get_stats,
    }
