"""Synchronization objects (paper section 2.2).

Amber supplies "relinquishing and non-relinquishing locks, barrier
synchronization, monitors and condition variables" as classes in the object
hierarchy.  Because they are ordinary objects, they are **mobile and can be
remotely invoked**: a thread acquiring a lock that lives on another node
simply migrates there, which is precisely the function-shipping behaviour
section 4.1 contrasts with a DSM system thrashing on a shared lock page.

All operations here are generator operations invoked via ``Invoke``:

    lock = yield New(Lock)
    yield Invoke(lock, "acquire")
    ...                                  # critical section
    yield Invoke(lock, "release")

A thread blocked inside ``acquire`` is suspended *at the lock's node*; if
the lock is moved meanwhile, the waiter migrates to the lock's new home the
next time it is scheduled (the context-switch-time residency check of
section 3.5).

**Sync elision (AmberElide).**  When a verified ``amberelide/1``
artifact proves a lock single-thread-reachable, the kernel marks the
instance ``_elide_ok`` at creation and ``acquire``/``release`` (and
``Monitor.enter``/``exit``) take an *atomic* fast path: the state
update runs inline with no Charge scheduler event, and the nominal
``SYNC_OP_US`` is folded into the thread's surcharge so the simulated
clock advances exactly as the slow path would — elision changes host
cost, never simulated semantics.  A marked lock that is nonetheless
observed held/contended bails to the slow path and counts it
(``lock_elide_bailout_total``); the soundness audit asserts that
counter stays zero.

Programmers extend these classes for custom concurrency control — see
``ReaderWriterLock`` below for an example built purely from the public
machinery, as the paper intends.
"""

from __future__ import annotations

from collections import deque
from typing import (TYPE_CHECKING, Any, Deque, Generator, List,
                    Optional, Union)

from repro.analyze import runtime as _analysis
from repro.errors import SynchronizationError
from repro.sim.objects import SimObject
from repro.sim.syscalls import Charge, Compute, Invoke, Suspend, Wakeup
from repro.sim.thread import SimThread

if TYPE_CHECKING:
    from repro.sim.kernel import InvocationContext

#: Nominal CPU cost of a lock/barrier bookkeeping step, microseconds.
SYNC_OP_US = 5.0
#: CPU burned per spin iteration of a non-relinquishing lock.
SPIN_STEP_US = 2.0

#: An operation body: a generator the kernel advances, or ``None`` from
#: an atomic (elided) completion.
_Op = Generator[Any, Any, None]
_MaybeOp = Union[_Op, None]


def _pick_waiter(waiters: "Deque[SimThread]", kind: str,
                 vaddr: int) -> SimThread:
    """Pick which waiter is handed the lock (or condvar signal) next.

    FIFO (``popleft``) by default; with an AmberCheck controller
    installed the hand-off order becomes a recorded, replayable choice
    point."""
    controller = _analysis.CONTROLLER
    if controller is None:
        return waiters.popleft()
    index = controller.choose(
        "handoff", f"{kind}:{vaddr:#x}",
        tuple(thread.name for thread in waiters))
    chosen = waiters[index]
    del waiters[index]
    return chosen


class Lock(SimObject):
    """A relinquishing (blocking) mutual-exclusion lock."""

    SIZE_BYTES = 64
    SANITIZE_FIELDS = False     # lock state IS the synchronization

    __slots__ = ("_held", "_owner", "_waiters", "acquisitions",
                 "contended_acquisitions", "_acquired_us", "_elide_ok")

    def __init__(self) -> None:
        self._held = False
        self._owner: Optional[SimThread] = None
        self._waiters: Deque[SimThread] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self._acquired_us = 0.0
        #: Set by the kernel at creation when the active AmberElide
        #: artifact proves this lock single-thread-reachable.
        self._elide_ok = False

    def acquire(self, ctx: "InvocationContext") -> _MaybeOp:
        if self._elide_ok:
            if not self._held:
                self._held = True
                self._owner = ctx.thread
                self._acquired_us = ctx.now_us
                self.acquisitions += 1
                san = _analysis.ACTIVE
                if san is not None:
                    san.on_acquire(self, ctx.thread)
                ctx.thread.surcharge_us += SYNC_OP_US
                ctx.metrics.inc("lock_elided_total")
                ctx.metrics.observe("lock_wait_us", 0.0)
                return None
            ctx.metrics.inc("lock_elide_bailout_total")
        return self._acquire_slow(ctx)

    def _acquire_slow(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        t0 = ctx.now_us
        contended = False
        while self._held:
            contended = True
            self._waiters.append(ctx.thread)
            yield Suspend("lock")
        self._held = True
        self._owner = ctx.thread
        self._acquired_us = ctx.now_us
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1
        san = _analysis.ACTIVE
        if san is not None:
            san.on_acquire(self, ctx.thread)
        ctx.metrics.observe("lock_wait_us", ctx.now_us - t0)

    def release(self, ctx: "InvocationContext") -> _MaybeOp:
        if self._elide_ok and not self._waiters:
            if not self._held or self._owner is not ctx.thread:
                raise SynchronizationError(
                    f"release of lock {self.vaddr:#x} by non-owner "
                    f"{ctx.thread.name}")
            ctx.metrics.observe("lock_hold_us",
                                ctx.now_us - self._acquired_us)
            san = _analysis.ACTIVE
            if san is not None:
                san.on_release(self, ctx.thread)
            self._held = False
            self._owner = None
            ctx.thread.surcharge_us += SYNC_OP_US
            ctx.metrics.inc("lock_elided_total")
            return None
        if self._elide_ok:
            ctx.metrics.inc("lock_elide_bailout_total")
        return self._release_slow(ctx)

    def _release_slow(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        if not self._held or self._owner is not ctx.thread:
            raise SynchronizationError(
                f"release of lock {self.vaddr:#x} by non-owner "
                f"{ctx.thread.name}")
        ctx.metrics.observe("lock_hold_us",
                            ctx.now_us - self._acquired_us)
        san = _analysis.ACTIVE
        if san is not None:
            san.on_release(self, ctx.thread)
        self._held = False
        self._owner = None
        if self._waiters:
            yield Wakeup(_pick_waiter(self._waiters, "lock", self.vaddr))

    def try_acquire(self, ctx: "InvocationContext") -> bool:
        """Non-blocking attempt; returns True on success.  Atomic."""
        if self._held:
            return False
        self._held = True
        self._owner = ctx.thread
        self._acquired_us = ctx.now_us
        self.acquisitions += 1
        san = _analysis.ACTIVE
        if san is not None:
            san.on_acquire(self, ctx.thread)
        return True

    @property
    def held(self) -> bool:
        return self._held


class SpinLock(SimObject):
    """A non-relinquishing lock: waiters burn CPU instead of blocking.

    The paper argues these are worthwhile *within* a multiprocessor node,
    where "hardware-based spinlocks ... reduce latency": no suspend/wakeup
    round trip, at the price of occupied processors.  The spin step is a
    preemptible compute so a uniprocessor node cannot livelock — the
    timeslice eventually lets the holder run.
    """

    SIZE_BYTES = 64
    SANITIZE_FIELDS = False

    __slots__ = ("_held", "_owner", "acquisitions", "spin_us",
                 "_acquired_us", "_elide_ok")

    def __init__(self) -> None:
        self._held = False
        self._owner: Optional[SimThread] = None
        self.acquisitions = 0
        self.spin_us = 0.0
        self._acquired_us = 0.0
        self._elide_ok = False

    def acquire(self, ctx: "InvocationContext") -> _MaybeOp:
        if self._elide_ok:
            if not self._held:
                self._held = True
                self._owner = ctx.thread
                self._acquired_us = ctx.now_us
                self.acquisitions += 1
                san = _analysis.ACTIVE
                if san is not None:
                    san.on_acquire(self, ctx.thread)
                ctx.thread.surcharge_us += SYNC_OP_US
                ctx.metrics.inc("lock_elided_total")
                ctx.metrics.observe("lock_wait_us", 0.0)
                return None
            ctx.metrics.inc("lock_elide_bailout_total")
        return self._acquire_slow(ctx)

    def _acquire_slow(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        t0 = ctx.now_us
        while self._held:
            self.spin_us += SPIN_STEP_US
            yield Compute(SPIN_STEP_US)
        self._held = True
        self._owner = ctx.thread
        self._acquired_us = ctx.now_us
        self.acquisitions += 1
        san = _analysis.ACTIVE
        if san is not None:
            san.on_acquire(self, ctx.thread)
        ctx.metrics.observe("lock_wait_us", ctx.now_us - t0)

    def release(self, ctx: "InvocationContext") -> _MaybeOp:
        if self._elide_ok:
            if not self._held or self._owner is not ctx.thread:
                raise SynchronizationError(
                    f"release of spinlock {self.vaddr:#x} by non-owner "
                    f"{ctx.thread.name}")
            ctx.metrics.observe("lock_hold_us",
                                ctx.now_us - self._acquired_us)
            san = _analysis.ACTIVE
            if san is not None:
                san.on_release(self, ctx.thread)
            self._held = False
            self._owner = None
            ctx.thread.surcharge_us += SYNC_OP_US
            ctx.metrics.inc("lock_elided_total")
            return None
        return self._release_slow(ctx)

    def _release_slow(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        if not self._held or self._owner is not ctx.thread:
            raise SynchronizationError(
                f"release of spinlock {self.vaddr:#x} by non-owner "
                f"{ctx.thread.name}")
        ctx.metrics.observe("lock_hold_us",
                            ctx.now_us - self._acquired_us)
        san = _analysis.ACTIVE
        if san is not None:
            san.on_release(self, ctx.thread)
        self._held = False
        self._owner = None

    @property
    def held(self) -> bool:
        return self._held


class Barrier(SimObject):
    """N-party barrier.  ``wait`` returns True for exactly one thread per
    cycle (the last to arrive), mirroring the convergence-master handoff in
    the SOR program."""

    SIZE_BYTES = 64
    SANITIZE_FIELDS = False

    __slots__ = ("parties", "_count", "_generation", "_waiting",
                 "cycles")

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise SynchronizationError(
                f"barrier needs >=1 party, got {parties}")
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._waiting: List[SimThread] = []
        self.cycles = 0

    def wait(self, ctx: "InvocationContext"
             ) -> Generator[Any, Any, bool]:
        yield Charge(SYNC_OP_US)
        t0 = ctx.now_us
        generation = self._generation
        self._count += 1
        if self._count == self.parties:
            self._count = 0
            self._generation += 1
            self.cycles += 1
            waiting, self._waiting = self._waiting, []
            san = _analysis.ACTIVE
            if san is not None:
                san.on_barrier(self, waiting + [ctx.thread])
            for thread in waiting:
                yield Wakeup(thread)
            ctx.metrics.observe("barrier_wait_us", 0.0)
            return True
        self._waiting.append(ctx.thread)
        while self._generation == generation:
            yield Suspend("barrier")
        ctx.metrics.observe("barrier_wait_us", ctx.now_us - t0)
        return False


class Monitor(SimObject):
    """A monitor lock with Mesa semantics, paired with :class:`CondVar`.

    Protect an object's state by making a Monitor (or Lock) a *member* of
    that object and attaching them, as section 3.6 recommends for
    co-residency.
    """

    SIZE_BYTES = 64
    SANITIZE_FIELDS = False

    __slots__ = ("_held", "_owner", "_waiters", "entries",
                 "_acquired_us", "_elide_ok")

    def __init__(self) -> None:
        self._held = False
        self._owner: Optional[SimThread] = None
        self._waiters: Deque[SimThread] = deque()
        self.entries = 0
        self._acquired_us = 0.0
        self._elide_ok = False

    def enter(self, ctx: "InvocationContext") -> _MaybeOp:
        if self._elide_ok:
            if not self._held:
                self._held = True
                self._owner = ctx.thread
                self._acquired_us = ctx.now_us
                self.entries += 1
                san = _analysis.ACTIVE
                if san is not None:
                    san.on_acquire(self, ctx.thread)
                ctx.thread.surcharge_us += SYNC_OP_US
                ctx.metrics.inc("lock_elided_total")
                ctx.metrics.observe("lock_wait_us", 0.0)
                return None
            ctx.metrics.inc("lock_elide_bailout_total")
        return self._enter_slow(ctx)

    def _enter_slow(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        t0 = ctx.now_us
        while self._held:
            self._waiters.append(ctx.thread)
            yield Suspend("monitor")
        self._held = True
        self._owner = ctx.thread
        self._acquired_us = ctx.now_us
        self.entries += 1
        san = _analysis.ACTIVE
        if san is not None:
            san.on_acquire(self, ctx.thread)
        ctx.metrics.observe("lock_wait_us", ctx.now_us - t0)

    def exit(self, ctx: "InvocationContext") -> _MaybeOp:
        if self._elide_ok and not self._waiters:
            if not self._held or self._owner is not ctx.thread:
                raise SynchronizationError(
                    f"exit of monitor {self.vaddr:#x} by non-owner "
                    f"{ctx.thread.name}")
            ctx.metrics.observe("lock_hold_us",
                                ctx.now_us - self._acquired_us)
            san = _analysis.ACTIVE
            if san is not None:
                san.on_release(self, ctx.thread)
            self._held = False
            self._owner = None
            ctx.thread.surcharge_us += SYNC_OP_US
            ctx.metrics.inc("lock_elided_total")
            return None
        if self._elide_ok:
            ctx.metrics.inc("lock_elide_bailout_total")
        return self._exit_slow(ctx)

    def _exit_slow(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        if not self._held or self._owner is not ctx.thread:
            raise SynchronizationError(
                f"exit of monitor {self.vaddr:#x} by non-owner "
                f"{ctx.thread.name}")
        ctx.metrics.observe("lock_hold_us",
                            ctx.now_us - self._acquired_us)
        san = _analysis.ACTIVE
        if san is not None:
            san.on_release(self, ctx.thread)
        self._held = False
        self._owner = None
        if self._waiters:
            yield Wakeup(_pick_waiter(self._waiters, "monitor",
                                      self.vaddr))

    def holds(self, thread: SimThread) -> bool:
        return self._held and self._owner is thread


class CondVar(SimObject):
    """Condition variable bound to a :class:`Monitor` (Mesa semantics:
    ``wait`` reacquires the monitor before returning, so conditions must be
    re-checked in a loop).  Create it on the monitor's node and ``Attach``
    it so they stay co-located."""

    SIZE_BYTES = 64
    SANITIZE_FIELDS = False

    __slots__ = ("monitor", "_waiting")

    def __init__(self, monitor: Monitor) -> None:
        self.monitor = monitor
        self._waiting: Deque[SimThread] = deque()

    def wait(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        if not self.monitor.holds(ctx.thread):
            raise SynchronizationError(
                "CondVar.wait without holding the monitor")
        self._waiting.append(ctx.thread)
        yield Invoke(self.monitor, "exit")
        yield Suspend("condvar")
        yield Invoke(self.monitor, "enter")

    def signal(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        if self._waiting:
            yield Wakeup(_pick_waiter(self._waiting, "condvar",
                                      self.vaddr))

    def broadcast(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        waiting, self._waiting = list(self._waiting), deque()
        for thread in waiting:
            yield Wakeup(thread)


class ReaderWriterLock(SimObject):
    """Many-readers / one-writer lock, built from the primitives above the
    way the paper expects applications to extend the hierarchy."""

    SIZE_BYTES = 64
    SANITIZE_FIELDS = False

    __slots__ = ("_readers", "_writer", "_waiters")

    def __init__(self) -> None:
        self._readers = 0
        self._writer: Optional[SimThread] = None
        self._waiters: Deque[SimThread] = deque()

    def acquire_read(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        while self._writer is not None:
            self._waiters.append(ctx.thread)
            yield Suspend("rwlock-read")
        self._readers += 1
        san = _analysis.ACTIVE
        if san is not None:
            san.on_acquire(self, ctx.thread, order=False)

    def release_read(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        if self._readers <= 0:
            raise SynchronizationError("release_read without readers")
        san = _analysis.ACTIVE
        if san is not None:
            san.on_release(self, ctx.thread, order=False)
        self._readers -= 1
        if self._readers == 0:
            for thread in self._drain():
                yield Wakeup(thread)

    def acquire_write(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        while self._writer is not None or self._readers > 0:
            self._waiters.append(ctx.thread)
            yield Suspend("rwlock-write")
        self._writer = ctx.thread
        san = _analysis.ACTIVE
        if san is not None:
            san.on_acquire(self, ctx.thread)

    def release_write(self, ctx: "InvocationContext") -> _Op:
        yield Charge(SYNC_OP_US)
        if self._writer is not ctx.thread:
            raise SynchronizationError("release_write by non-writer")
        san = _analysis.ACTIVE
        if san is not None:
            san.on_release(self, ctx.thread)
        self._writer = None
        for thread in self._drain():
            yield Wakeup(thread)

    def _drain(self) -> List[SimThread]:
        waiting, self._waiters = list(self._waiters), deque()
        return waiting
