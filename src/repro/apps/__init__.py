"""Application workloads built on the Amber reproduction.

``repro.apps.sor`` is the paper's evaluation application: Red/Black
Successive Over-Relaxation solving Laplace's equation on a plate (section
6) — a sequential baseline, the Amber version with the thread structure of
Figure 1, and an Ivy-style DSM port used by the section 4 ablations.
"""
