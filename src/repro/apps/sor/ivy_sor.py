"""Red/Black SOR on the Ivy-style page-based DSM (section 4 comparison).

This is the program a competent Ivy user would write: the grid lives in
the shared virtual address space row-major; work is partitioned by *rows*
(matching the layout, as section 6 notes a page-DSM programmer must);
each process updates its own rows and reads one ghost row from each
neighbor per phase; iterations synchronize at an RPC barrier (the paper
notes recent Ivy uses RPC for synchronization variables).

The communication behaviour the paper predicts falls out:

* fetching a neighbor's edge row costs one page fault *per page the row
  spans* (a 842-column float32 row spans four 1 KiB pages), versus
  Amber's single invocation carrying the whole edge;
* rows are not page-aligned, so neighbors' boundary rows share pages —
  write-write false sharing that ping-pongs those pages every phase
  (section 4.2's artificial sharing).

Numerics are not recomputed here (the Amber implementation already pins
them bitwise to the sequential solver); this port reproduces the *memory
and communication* behaviour, which is what the comparison measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.sor.grid import (
    BLACK,
    RED,
    VALUE_BYTES,
    SorProblem,
    count_color_points,
)
from repro.apps.sor.sequential import (
    DEFAULT_POINT_UPDATE_US,
    sequential_time_us,
)
from repro.core.costs import CostModel
from repro.dsm.machine import IvyCluster, IvyStats
from repro.dsm.ops import Compute, Read, RpcBarrier, Write

#: Shared-memory base address of the grid.
GRID_BASE = 0


@dataclass
class IvySorResult:
    problem: SorProblem
    nodes: int
    cpus_per_node: int
    processes: int
    iterations_run: int
    elapsed_us: float
    sequential_us: float
    stats: IvyStats
    network_messages: int
    network_bytes: int

    @property
    def speedup(self) -> float:
        return self.sequential_us / self.elapsed_us

    @property
    def label(self) -> str:
        return f"{self.nodes}Nx{self.cpus_per_node}P"


def _row_addr(problem: SorProblem, row: int) -> int:
    return GRID_BASE + row * (problem.cols + 2) * VALUE_BYTES


def _row_bytes(problem: SorProblem) -> int:
    return (problem.cols + 2) * VALUE_BYTES


def _sor_process(cluster: IvyCluster, problem: SorProblem,
                 row_lo: int, row_hi: int, per_point_us: float,
                 parties: int):
    """One SOR process owning interior rows [row_lo, row_hi) (0-based
    interior coordinates; array rows are offset by the boundary row)."""
    nrows = row_hi - row_lo
    row_bytes = _row_bytes(problem)
    # Array rows: interior row r is array row r + 1.
    my_first = _row_addr(problem, row_lo + 1)
    ghost_above = _row_addr(problem, row_lo)       # neighbor/boundary row
    ghost_below = _row_addr(problem, row_hi + 1)
    for _ in range(problem.iterations):
        for color in (BLACK, RED):
            # Ghost rows from the neighbors (or fixed boundary rows).
            yield Read(ghost_above, row_bytes)
            yield Read(ghost_below, row_bytes)
            # Ownership of my rows (first touch faults; steady state only
            # re-faults pages a neighbor's reads downgraded).
            yield Write(my_first, nrows * row_bytes)
            points = count_color_points(nrows, problem.cols, color,
                                        row0=row_lo, col0=0)
            yield Compute(points * per_point_us)
        yield RpcBarrier(0, parties)


def run_ivy_sor(problem: SorProblem,
                nodes: int = 1,
                cpus_per_node: int = 4,
                processes: Optional[int] = None,
                per_point_us: float = DEFAULT_POINT_UPDATE_US,
                costs: Optional[CostModel] = None,
                contended_network: bool = True,
                manager_mode: str = "fixed") -> IvySorResult:
    """Run SOR on the DSM.  One process per CPU by default, pinned in
    contiguous blocks (explicit placement, as Ivy requires).
    ``manager_mode`` selects Li & Hudak's ownership algorithm
    (fixed / centralized / dynamic)."""
    nprocs = processes if processes is not None else nodes * cpus_per_node
    cluster = IvyCluster(nodes, cpus_per_node, costs, contended_network,
                         manager_mode=manager_mode)
    for p in range(nprocs):
        row_lo = problem.rows * p // nprocs
        row_hi = problem.rows * (p + 1) // nprocs
        node = p * nodes // nprocs
        cluster.spawn(node, _sor_process, problem, row_lo, row_hi,
                      per_point_us, nprocs, name=f"sor{p}")
    cluster.run()
    return IvySorResult(
        problem=problem,
        nodes=nodes,
        cpus_per_node=cpus_per_node,
        processes=nprocs,
        iterations_run=problem.iterations,
        elapsed_us=cluster.elapsed_us,
        sequential_us=sequential_time_us(problem, problem.iterations,
                                         per_point_us),
        stats=cluster.stats,
        network_messages=cluster.network.stats.messages,
        network_bytes=cluster.network.stats.bytes,
    )
