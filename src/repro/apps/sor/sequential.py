"""The sequential SOR baseline.

The paper measures every speedup "relative to a sequential C++
implementation used as the baseline case" — a plain program with no Amber
overheads.  Its simulated running time is therefore purely the compute
cost: ``iterations x points x per_point_us`` (convergence checks excluded,
exactly as a tight sequential loop has no cross-node bookkeeping).

The numerics are run for real so parallel implementations can be checked
for bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.sor.grid import SorProblem, make_grid, sor_iterate

#: Default CPU cost of one point update, microseconds.  Calibrated for a
#: CVAX-class processor (a handful of F-floating operations plus loop
#: overhead); together with the Table 1 communication costs this reproduces
#: the compute/communication ratio behind Figures 2 and 3.
DEFAULT_POINT_UPDATE_US = 40.0


@dataclass
class SequentialSorResult:
    problem: SorProblem
    grid: np.ndarray
    iterations_run: int
    final_delta: float
    #: Simulated sequential running time, microseconds.
    elapsed_us: float


def sequential_time_us(problem: SorProblem, iterations: int,
                       per_point_us: float = DEFAULT_POINT_UPDATE_US) -> float:
    """The baseline's simulated time for ``iterations`` full sweeps."""
    return float(iterations) * problem.points * per_point_us


def run_sequential_sor(problem: SorProblem,
                       per_point_us: float = DEFAULT_POINT_UPDATE_US
                       ) -> SequentialSorResult:
    """Run the baseline: real numerics, analytic simulated time."""
    grid = make_grid(problem)
    delta = float("inf")
    iterations_run = 0
    for _ in range(problem.iterations):
        delta = sor_iterate(grid, problem.omega)
        iterations_run += 1
        if problem.tolerance > 0 and delta < problem.tolerance:
            break
    return SequentialSorResult(
        problem=problem,
        grid=grid,
        iterations_run=iterations_run,
        final_delta=delta,
        elapsed_us=sequential_time_us(problem, iterations_run, per_point_us),
    )
