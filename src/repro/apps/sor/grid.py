"""Numerical kernels shared by every SOR implementation.

The grid is a ``(rows+2, cols+2)`` float32 array: the outer ring holds the
fixed boundary temperatures, the inner ``rows x cols`` block is the
computed interior ("the steady-state temperature over the interior of a
square plate given the temperatures around the plate's boundary").  Points
are checkerboard-colored by the parity of their *global* interior
coordinates, so any partitioning of the grid updates exactly the same
points in each phase.

float32 mirrors the 4-byte VAX F-floating values of the original, and sets
the edge-exchange payload sizes used by the simulated runs.

Because same-color points never read each other, a color sweep gives
bitwise-identical results no matter how it is partitioned — the tests pin
the parallel implementations to the sequential one exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: The specific problem measured in Figure 2: "a grid size of 122 by 842".
PAPER_ROWS = 122
PAPER_COLS = 842

BLACK = 0
RED = 1

#: Default over-relaxation factor (typical for SOR on Laplace problems).
DEFAULT_OMEGA = 1.5

#: Bytes per grid value (VAX F-floating / numpy float32).
VALUE_BYTES = 4


@dataclass(frozen=True)
class SorProblem:
    """A problem instance: dimensions, boundary condition, SOR parameters.

    ``iterations`` fixes the sweep count (the paper measures fixed-size
    runs); set ``tolerance`` > 0 to let convergence stop the run early.
    """

    rows: int = PAPER_ROWS
    cols: int = PAPER_COLS
    omega: float = DEFAULT_OMEGA
    iterations: int = 30
    tolerance: float = 0.0
    #: Boundary temperatures: (top, bottom, left, right).
    boundary: Tuple[float, float, float, float] = (100.0, 0.0, 0.0, 0.0)

    @property
    def points(self) -> int:
        """Interior points — the paper's problem-size axis (Figure 3)."""
        return self.rows * self.cols

    def scaled(self, rows: int, cols: int) -> "SorProblem":
        """The same problem at a different grid size (Figure 3 sweeps)."""
        return SorProblem(rows, cols, self.omega, self.iterations,
                          self.tolerance, self.boundary)


def make_grid(problem: SorProblem) -> np.ndarray:
    """Build the initial ``(rows+2, cols+2)`` grid with boundary set."""
    grid = np.zeros((problem.rows + 2, problem.cols + 2), dtype=np.float32)
    top, bottom, left, right = problem.boundary
    grid[0, :] = top
    grid[-1, :] = bottom
    grid[:, 0] = left
    grid[:, -1] = right
    # Corners belong to both edges; top/bottom take precedence (arbitrary
    # but fixed, and identical across implementations).
    grid[0, 0] = grid[0, -1] = top
    grid[-1, 0] = grid[-1, -1] = bottom
    return grid


def color_mask(rows: int, cols: int, color: int,
               row0: int = 0, col0: int = 0) -> np.ndarray:
    """Boolean mask of the points of ``color`` within a ``rows x cols``
    block whose top-left interior point has global coordinates
    ``(row0, col0)``."""
    r = np.arange(rows).reshape(-1, 1) + row0
    c = np.arange(cols).reshape(1, -1) + col0
    return ((r + c) % 2) == color


def count_color_points(rows: int, cols: int, color: int,
                       row0: int = 0, col0: int = 0) -> int:
    """Number of points of ``color`` in the block — the per-phase compute
    cost driver, computed without materializing a mask."""
    total = rows * cols
    # Points where (r + c) % 2 == 0 in the block.
    evens = 0
    for r in range(2):
        rows_r = (rows - r + 1) // 2          # rows with parity r (local)
        parity = (row0 + r + col0) % 2        # parity of first col there
        cols_even = (cols + 1) // 2 if parity == 0 else cols // 2
        evens += rows_r * cols_even
    return evens if color == BLACK else total - evens


def sweep_color(grid: np.ndarray, omega: float, color: int,
                row0: int = 1, row1: int = None,
                col0: int = 1, col1: int = None,
                global_row0: int = 0, global_col0: int = 0) -> float:
    """Update the points of ``color`` in ``grid[row0:row1, col0:col1]``
    in place; return the maximum absolute change.

    ``row0``/``col0`` etc. are *array* indices (1 = first interior line).
    ``global_row0``/``global_col0`` are the global interior coordinates of
    array position (1, 1), so parities line up across partitions.
    """
    if row1 is None:
        row1 = grid.shape[0] - 1
    if col1 is None:
        col1 = grid.shape[1] - 1
    if row1 <= row0 or col1 <= col0:
        return 0.0
    block = grid[row0:row1, col0:col1]
    mask = color_mask(row1 - row0, col1 - col0, color,
                      global_row0 + row0 - 1, global_col0 + col0 - 1)
    neighbors = (grid[row0 - 1:row1 - 1, col0:col1]
                 + grid[row0 + 1:row1 + 1, col0:col1]
                 + grid[row0:row1, col0 - 1:col1 - 1]
                 + grid[row0:row1, col0 + 1:col1 + 1])
    updated = block + np.float32(omega) * (
        np.float32(0.25) * neighbors - block)
    delta = np.abs(updated - block, dtype=np.float32)
    block[mask] = updated[mask]
    masked = delta[mask]
    return float(masked.max()) if masked.size else 0.0


def sor_iterate(grid: np.ndarray, omega: float) -> float:
    """One full Red/Black iteration over the whole grid (black phase then
    red phase); returns the maximum change across both phases."""
    delta_black = sweep_color(grid, omega, BLACK)
    delta_red = sweep_color(grid, omega, RED)
    return max(delta_black, delta_red)


def residual(grid: np.ndarray) -> float:
    """Max |Laplace residual| over the interior — an implementation-
    independent quality measure used by tests."""
    interior = grid[1:-1, 1:-1]
    neighbors = (grid[:-2, 1:-1] + grid[2:, 1:-1]
                 + grid[1:-1, :-2] + grid[1:-1, 2:])
    return float(np.abs(0.25 * neighbors - interior).max())
