"""Red/Black SOR on the live multiprocess runtime.

The same decomposition as :mod:`amber_sor` — one section object per
vertical stripe, placed round-robin over the nodes — but running on real
OS processes: edge columns travel as pickled numpy arrays inside
``put_edge`` invocations, and iterations synchronize through a
:class:`~repro.runtime.sync.Barrier` object.

Because every worker drives its whole iteration loop from inside one
``run_iterations`` operation *on its section's node*, the computation is
genuinely distributed: each stripe is updated by the process that owns
it, and only boundary columns cross process borders.

This implementation validates *semantics* (the result is bitwise
identical to the sequential solver); timing claims belong to the
simulator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.apps.sor.grid import (
    BLACK,
    RED,
    SorProblem,
    make_grid,
    sweep_color,
)
from repro.runtime.cluster import Cluster
from repro.runtime.objects import AmberObject
from repro.runtime.sync import Barrier


class LiveSorSection(AmberObject):
    """One vertical stripe: cells, ghost columns, and the iteration loop."""

    def __init__(self, index: int, problem: SorProblem, col0: int,
                 ncols: int):
        self.index = index
        self.problem = problem
        self.col0 = col0
        self.ncols = ncols
        full = make_grid(problem)
        self.cells = full[:, col0:col0 + ncols + 2].copy()
        self.left = None          # neighbor handles (set by configure)
        self.right = None
        self.barrier = None
        self._edges_in = {}       # (iteration, color, side) -> values

    def configure(self, left, right, barrier):
        self.left = left
        self.right = right
        self.barrier = barrier

    def put_edge(self, side: str, color: int, iteration: int, values):
        """A neighbor's boundary column arrives (runs on *my* node)."""
        self._edges_in[(iteration, color, side)] = values

    def _await_edges(self, iteration: int, color: int) -> None:
        """Install ghost columns once both neighbors' values arrived.

        The per-iteration barrier guarantees arrival ordering across
        iterations; within an iteration we spin briefly (values are sent
        before the barrier, so this is one reschedule at most).
        """
        import time
        rows = self.problem.rows
        deadline = time.monotonic() + 30
        for side, ghost_col, neighbor in (("left", 0, self.left),
                                          ("right", self.ncols + 1,
                                           self.right)):
            if neighbor is None:
                continue
            key = (iteration, color, side)
            while key not in self._edges_in:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"section {self.index}: edge {key} never arrived")
                time.sleep(0.001)
            self.cells[1:rows + 1, ghost_col] = self._edges_in.pop(key)

    def run_iterations(self) -> Tuple[int, float]:
        """The whole solver loop for this stripe; runs as one Amber
        thread on this section's node."""
        problem = self.problem
        rows = problem.rows
        delta = float("inf")
        for iteration in range(problem.iterations):
            delta = 0.0
            for color in (BLACK, RED):
                phase_delta = sweep_color(
                    self.cells, problem.omega, color,
                    row0=1, row1=rows + 1,
                    col0=1, col1=self.ncols + 1,
                    global_row0=0, global_col0=self.col0)
                delta = max(delta, phase_delta)
                # Ship my fresh boundary columns to the neighbors.
                if self.left is not None:
                    self.left.put_edge("right", color, iteration,
                                       self.cells[1:rows + 1, 1].copy())
                if self.right is not None:
                    self.right.put_edge(
                        "left", color, iteration,
                        self.cells[1:rows + 1, self.ncols].copy())
                # The next phase reads this color's ghosts.
                self._await_edges(iteration, color)
            self.barrier.wait(timeout=60)
        return problem.iterations, float(delta)

    def snapshot(self):
        return self.cells[:, 1:self.ncols + 1].copy()


def run_live_sor(problem: SorProblem, nodes: int = 2,
                 sections: Optional[int] = None,
                 cluster: Optional[Cluster] = None) -> np.ndarray:
    """Solve ``problem`` on a live cluster; returns the assembled grid.

    Pass an existing ``cluster`` to reuse one (tests); otherwise one is
    spawned and torn down around the run.
    """
    nsections = sections if sections is not None else max(2, nodes)
    owns_cluster = cluster is None
    if owns_cluster:
        cluster = Cluster(nodes=nodes)
    try:
        barrier = cluster.create(Barrier, nsections, node=0)
        handles = []
        for s in range(nsections):
            col_lo = problem.cols * s // nsections
            col_hi = problem.cols * (s + 1) // nsections
            handles.append(cluster.create(
                LiveSorSection, s, problem, col_lo, col_hi - col_lo,
                node=s * nodes // nsections))
        for s, handle in enumerate(handles):
            left = handles[s - 1] if s > 0 else None
            right = handles[s + 1] if s < nsections - 1 else None
            handle.configure(left, right, barrier)
        threads = [cluster.fork(handle, "run_iterations")
                   for handle in handles]
        for thread in threads:
            thread.join(timeout=120)
        grid = make_grid(problem)
        for s, handle in enumerate(handles):
            col_lo = problem.cols * s // nsections
            slab = handle.snapshot()
            grid[:, col_lo + 1:col_lo + 1 + slab.shape[1]] = slab
        return grid
    finally:
        if owns_cluster:
            cluster.shutdown()
