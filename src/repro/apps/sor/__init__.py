"""Red/Black SOR: the paper's evaluation application (section 6).

The problem: steady-state temperature over the interior of a square plate
with fixed boundary temperatures (Laplace's equation), solved by Red/Black
Successive Over-Relaxation.  Checkerboard-colored points are updated in two
phases per iteration; same-color points are independent, so each phase
parallelizes freely.

Three implementations share the numpy kernels in :mod:`grid`:

* :mod:`sequential` — the plain single-stream baseline the paper's speedups
  are measured against;
* :mod:`amber_sor` — the Amber program of Figure 1: one section object per
  stripe of the grid, worker threads per section, edge-exchange threads
  overlapping communication with computation, and a convergence master;
* :mod:`ivy_sor` — the same decomposition on the page-based DSM baseline
  (for the section 4 comparison; see :mod:`repro.dsm`).
"""

from repro.apps.sor.amber_sor import AmberSorResult, run_amber_sor
from repro.apps.sor.grid import (
    PAPER_COLS,
    PAPER_ROWS,
    SorProblem,
    make_grid,
    sor_iterate,
    sweep_color,
)
from repro.apps.sor.sequential import SequentialSorResult, run_sequential_sor

__all__ = [
    "AmberSorResult",
    "PAPER_COLS",
    "PAPER_ROWS",
    "SequentialSorResult",
    "SorProblem",
    "make_grid",
    "run_amber_sor",
    "run_sequential_sor",
    "sor_iterate",
    "sweep_color",
]
