"""The Amber Red/Black SOR program (section 6, Figure 1).

The grid is split into vertical stripes, one *section object* per stripe,
distributed across the nodes.  Every thread that touches a section's data
executes operations *on that section object*, so the kernel clusters them
onto the section's node — the paper's recipe for exploiting the
shared-memory hardware within a node.

Per section (Figure 1):

* a **coordinator** drives the iteration phases (it also updates the
  stripe's boundary columns so their values can be shipped early);
* **worker threads** update the stripe's interior points in parallel;
* **edge threads** (one per neighboring section) carry a whole boundary
  column to the neighbor in a single remote invocation
  (``put_edge``) — "the values for an entire edge of a section [are]
  transferred in a single invocation";
* a **convergence thread** reports the iteration's maximum change to a
  single master object; the master releases everyone once all sections
  have reported — the per-iteration barrier.

With ``overlap=True`` (the paper's preferred structure) the edge threads
ship a phase's boundary values *while* the workers update the interior:
"The exchange of values for edge points of one color is overlapped with
the computation for points of the other color."  With ``overlap=False``
the coordinator completes each phase's exchange before proceeding, which
reproduces the slower of the two 8Nx4P points in Figure 2.

Numerics are real (numpy, float32) and bitwise-identical to the
sequential baseline; simulated time is charged per point update.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.sor.grid import (
    BLACK,
    RED,
    VALUE_BYTES,
    SorProblem,
    count_color_points,
    make_grid,
    sweep_color,
)
from repro.apps.sor.sequential import (
    DEFAULT_POINT_UPDATE_US,
    sequential_time_us,
)
from repro.core.costs import CostModel
from repro.placement.policies import PlacementPolicy
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.stats import ClusterStats
from repro.sim.syscalls import (
    Charge,
    Compute,
    Fork,
    Invoke,
    Join,
    New,
    Suspend,
    Wakeup,
)

LEFT = 0
RIGHT = 1

#: Bookkeeping cost of one coordination step (enqueue/flag update), us.
COORD_OP_US = 5.0


def default_sections(nodes: int) -> int:
    """The paper's sectioning rule: eight sections, "except for the
    experiments involving three and six nodes, which were run with
    partitionings of six section objects"."""
    if nodes in (3, 6):
        return 6
    if nodes > 8:
        return nodes
    return 8


def _wake_all(waiters: List) -> object:
    """Generator yielding a Wakeup for every queued waiter."""
    while waiters:
        yield Wakeup(waiters.pop())


class SorMaster(SimObject):
    """Aggregates per-iteration deltas; the per-iteration barrier.

    Convergence threads invoke ``report`` (remotely, for sections on other
    nodes); the last reporter of an iteration computes the verdict and
    wakes the rest.
    """

    SIZE_BYTES = 512

    def __init__(self, nsections: int, tolerance: float):
        self._nsections = nsections
        self._tolerance = tolerance
        self._deltas: Dict[int, List[float]] = {}
        self._verdicts: Dict[int, bool] = {}
        self._waiting: Dict[int, List] = {}
        self.iterations_seen = 0

    def report(self, ctx, section: int, iteration: int, delta: float):
        """Record ``delta``; block until all sections reported; return
        True if the computation should continue (not yet converged)."""
        yield Charge(COORD_OP_US)
        deltas = self._deltas.setdefault(iteration, [])
        deltas.append(delta)
        if len(deltas) == self._nsections:
            converged = (self._tolerance > 0
                         and max(deltas) < self._tolerance)
            self._verdicts[iteration] = not converged
            self.iterations_seen = max(self.iterations_seen, iteration + 1)
            yield from _wake_all(self._waiting.get(iteration, []))
        else:
            while iteration not in self._verdicts:
                self._waiting.setdefault(iteration, []).append(ctx.thread)
                yield Suspend("sor-master")
        return self._verdicts[iteration]


class SorSection(SimObject):
    """One vertical stripe of the grid and all its coordination state."""

    def __init__(self, index: int, nsections: int, problem: SorProblem,
                 col0: int, ncols: int, workers: int,
                 per_point_us: float, overlap: bool):
        self.index = index
        self.nsections = nsections
        self.problem = problem
        self.col0 = col0            # global interior column of array col 1
        self.ncols = ncols
        self.workers = workers
        self.per_point_us = per_point_us
        self.overlap = overlap

        rows = problem.rows
        full = make_grid(problem)
        # Slab: all rows, my columns plus one ghost/boundary column each
        # side (array col 0 and ncols+1).
        self.cells = full[:, col0:col0 + ncols + 2].copy()

        self.master: Optional[SorMaster] = None
        self.neighbors: List[Optional["SorSection"]] = [None, None]

        # --- coordination state (mutated only at yield boundaries) -----
        self._stop = False
        self._phase_seq = 0
        self._phase_color = BLACK
        self._phase_cols: Tuple[int, int] = (1, 1)   # array col range
        self._workers_done = 0
        self._phase_delta = 0.0
        self._worker_wait: List = []
        self._coord_wait: List = []
        self._send_queue: List[deque] = [deque(), deque()]
        self._edger_wait: List = [[], []]
        self._sends_in_flight = 0
        self._edges_in: Dict[Tuple[int, int, int], bool] = {}
        self._pending_report: Optional[Tuple[int, float]] = None
        self._converger_wait: List = []
        self._verdicts: Dict[int, bool] = {}

        # --- results ------------------------------------------------------
        self.iterations_run = 0
        self.final_delta = float("inf")

    # -- setup ----------------------------------------------------------

    def configure(self, ctx, master, left, right):
        """Wire the section to its master and neighbors (invoked so the
        main thread never pokes at a remote object's internals)."""
        yield Charge(COORD_OP_US)
        self.master = master
        self.neighbors = [left, right]

    # -- numerics helpers ------------------------------------------------

    def _row_slice(self, widx: int) -> Tuple[int, int]:
        rows = self.problem.rows
        lo = rows * widx // self.workers
        hi = rows * (widx + 1) // self.workers
        return lo, hi

    def _sweep(self, color: int, row_lo: int, row_hi: int,
               col_lo: int, col_hi: int) -> float:
        """Update color points of interior rows [row_lo, row_hi) x array
        columns [col_lo, col_hi); returns the max change."""
        return sweep_color(
            self.cells, self.problem.omega, color,
            row0=1 + row_lo, row1=1 + row_hi,
            col0=col_lo, col1=col_hi,
            global_row0=0, global_col0=self.col0)

    def _points(self, color: int, row_lo: int, row_hi: int,
                col_lo: int, col_hi: int) -> int:
        if row_hi <= row_lo or col_hi <= col_lo:
            return 0
        return count_color_points(
            row_hi - row_lo, col_hi - col_lo, color,
            row0=row_lo, col0=self.col0 + col_lo - 1)

    # -- the threads of Figure 1 ----------------------------------------

    def run(self, ctx):
        """The coordinator: drives phases, edges, and convergence."""
        problem = self.problem
        boundary_cols = ([1] if self.ncols == 1
                         else [1, self.ncols])
        interior = (2, self.ncols) if self.ncols > 2 else (1, 1)
        for iteration in range(problem.iterations):
            iter_delta = 0.0
            for color in (BLACK, RED):
                self._phase_delta = 0.0
                if self.overlap:
                    # 1. Boundary columns first, so their values can be
                    #    shipped while the interior is computed.
                    for col in boundary_cols:
                        pts = self._points(color, 0, problem.rows,
                                           col, col + 1)
                        yield Compute(pts * self.per_point_us)
                        delta = self._sweep(color, 0, problem.rows,
                                            col, col + 1)
                        self._phase_delta = max(self._phase_delta, delta)
                    # 2. Launch the edge exchange.
                    yield from self._request_sends(iteration, color)
                    # 3. Interior in parallel with the exchange.
                    yield from self._run_workers(ctx, color, *interior)
                else:
                    # Everything computed first, then the exchange,
                    # serially (the slower 8Nx4P point of Figure 2).
                    yield from self._run_workers(ctx, color, 1,
                                                 self.ncols + 1)
                    yield from self._request_sends(iteration, color)
                    while self._sends_in_flight > 0:
                        self._coord_wait.append(ctx.thread)
                        yield Suspend("sor-sends")
                # 4. The next phase reads this color's ghost values:
                #    wait for the neighbors' edges to arrive.
                yield from self._await_edges(ctx, iteration, color)
                iter_delta = max(iter_delta, self._phase_delta)
            # Iteration barrier: report the delta, learn the verdict.
            self._pending_report = (iteration, iter_delta)
            yield from _wake_all(self._converger_wait)
            while iteration not in self._verdicts:
                self._coord_wait.append(ctx.thread)
                yield Suspend("sor-verdict")
            self.iterations_run = iteration + 1
            self.final_delta = iter_delta
            if not self._verdicts[iteration]:
                break
        self._stop = True
        yield from _wake_all(self._worker_wait)
        yield from _wake_all(self._edger_wait[LEFT])
        yield from _wake_all(self._edger_wait[RIGHT])
        yield from _wake_all(self._converger_wait)
        return (self.iterations_run, self.final_delta)

    def _run_workers(self, ctx, color: int, col_lo: int, col_hi: int):
        self._workers_done = 0
        self._phase_color = color
        self._phase_cols = (col_lo, col_hi)
        self._phase_seq += 1
        yield from _wake_all(self._worker_wait)
        while self._workers_done < self.workers:
            self._coord_wait.append(ctx.thread)
            yield Suspend("sor-workers")

    def _request_sends(self, iteration: int, color: int):
        for side in (LEFT, RIGHT):
            if self.neighbors[side] is not None:
                self._send_queue[side].append((iteration, color))
                self._sends_in_flight += 1
                yield from _wake_all(self._edger_wait[side])
        yield Charge(COORD_OP_US)

    def _await_edges(self, ctx, iteration: int, color: int):
        for side in (LEFT, RIGHT):
            if self.neighbors[side] is None:
                continue
            while (iteration, color, side) not in self._edges_in:
                self._coord_wait.append(ctx.thread)
                yield Suspend("sor-edges")

    def worker(self, ctx, widx: int):
        """One interior-update worker; splits the stripe by rows."""
        seen_seq = 0
        row_lo, row_hi = self._row_slice(widx)
        while True:
            while self._phase_seq == seen_seq and not self._stop:
                self._worker_wait.append(ctx.thread)
                yield Suspend("sor-phase")
            if self._stop:
                return
            seen_seq = self._phase_seq
            color = self._phase_color
            col_lo, col_hi = self._phase_cols
            pts = self._points(color, row_lo, row_hi, col_lo, col_hi)
            yield Compute(pts * self.per_point_us)
            delta = self._sweep(color, row_lo, row_hi, col_lo, col_hi)
            self._phase_delta = max(self._phase_delta, delta)
            self._workers_done += 1
            if self._workers_done == self.workers:
                yield from _wake_all(self._coord_wait)

    def edger(self, ctx, side: int):
        """One edge-exchange thread: ships a boundary column to the
        neighbor in a single (usually remote) invocation."""
        neighbor = self.neighbors[side]
        edge_col = 1 if side == LEFT else self.ncols
        rows = self.problem.rows
        while True:
            while not self._send_queue[side] and not self._stop:
                self._edger_wait[side].append(ctx.thread)
                yield Suspend("sor-edger")
            if self._stop and not self._send_queue[side]:
                return
            iteration, color = self._send_queue[side].popleft()
            values = self.cells[1:rows + 1, edge_col].copy()
            yield Invoke(neighbor, "put_edge",
                         1 - side, color, iteration, values,
                         arg_bytes=rows * VALUE_BYTES)
            self._sends_in_flight -= 1
            if self._sends_in_flight == 0:
                yield from _wake_all(self._coord_wait)

    def put_edge(self, ctx, side: int, color: int, iteration: int,
                 values: np.ndarray):
        """Install a neighbor's boundary column into my ghost column.
        Runs on *this* section's node (the sender's thread migrated
        here) — the single network transaction of section 4.2."""
        yield Charge(COORD_OP_US)
        rows = self.problem.rows
        ghost_col = 0 if side == LEFT else self.ncols + 1
        self.cells[1:rows + 1, ghost_col] = values
        self._edges_in[(iteration, color, side)] = True
        yield from _wake_all(self._coord_wait)

    def converger(self, ctx):
        """Reports iteration deltas to the master (the barrier)."""
        while True:
            while self._pending_report is None and not self._stop:
                self._converger_wait.append(ctx.thread)
                yield Suspend("sor-converge")
            if self._stop:
                return
            iteration, delta = self._pending_report
            self._pending_report = None
            verdict = yield Invoke(self.master, "report",
                                   self.index, iteration, delta)
            self._verdicts[iteration] = verdict
            yield from _wake_all(self._coord_wait)

    def snapshot(self, ctx):
        """Copy out my stripe's interior columns (tests/verification)."""
        yield Charge(COORD_OP_US)
        return self.cells[:, 1:self.ncols + 1].copy()


@dataclass
class AmberSorResult:
    problem: SorProblem
    nodes: int
    cpus_per_node: int
    sections: int
    workers_per_section: int
    overlap: bool
    per_point_us: float
    iterations_run: int
    final_delta: float
    #: Simulated time from program start to the join of the last
    #: coordinator (excludes optional grid collection).
    elapsed_us: float
    #: Simulated sequential-baseline time for the same iteration count.
    sequential_us: float
    stats: ClusterStats
    grid: Optional[np.ndarray] = None
    #: The simulated cluster, for structural introspection (Figure 1).
    cluster: object = None

    @property
    def speedup(self) -> float:
        return self.sequential_us / self.elapsed_us

    @property
    def label(self) -> str:
        return f"{self.nodes}Nx{self.cpus_per_node}P"


def run_amber_sor(problem: SorProblem,
                  nodes: int = 1,
                  cpus_per_node: int = 4,
                  sections: Optional[int] = None,
                  workers_per_section: Optional[int] = None,
                  overlap: bool = True,
                  per_point_us: float = DEFAULT_POINT_UPDATE_US,
                  costs: Optional[CostModel] = None,
                  contended_network: bool = True,
                  collect_grid: bool = False,
                  tracer=None,
                  faults=None,
                  placement: Optional[PlacementPolicy] = None
                  ) -> AmberSorResult:
    """Run the Amber SOR program on a simulated cluster.

    The defaults reproduce the paper's experimental setup: sections per
    :func:`default_sections`, sections distributed in contiguous blocks
    over the nodes, one worker thread per CPU share of a section.
    ``placement`` overrides creation-time placement per class; the
    default policy passes the program's block layout through unchanged.
    """
    nsections = sections if sections is not None else default_sections(nodes)
    total_cpus = nodes * cpus_per_node
    workers = (workers_per_section if workers_per_section is not None
               else max(1, total_cpus // nsections))
    place = placement if placement is not None else PlacementPolicy()

    def node_of(section_index: int) -> int:
        return section_index * nodes // nsections

    def main(ctx):
        master = yield New(SorMaster, nsections, problem.tolerance,
                           on_node=place.node_for("SorMaster", 0, None,
                                                  count=1))
        section_objs = []
        for s in range(nsections):
            col_lo = problem.cols * s // nsections
            col_hi = problem.cols * (s + 1) // nsections
            ncols = col_hi - col_lo
            slab_bytes = (problem.rows + 2) * (ncols + 2) * VALUE_BYTES
            section = yield New(
                SorSection, s, nsections, problem, col_lo, ncols,
                workers, per_point_us, overlap,
                size_bytes=slab_bytes,
                on_node=place.node_for("SorSection", s, node_of(s),
                                       count=nsections))
            section_objs.append(section)
        for s, section in enumerate(section_objs):
            left = section_objs[s - 1] if s > 0 else None
            right = section_objs[s + 1] if s < nsections - 1 else None
            yield Invoke(section, "configure", master, left, right)
        threads = []
        coordinators = []
        for s, section in enumerate(section_objs):
            for w in range(workers):
                threads.append((yield Fork(section, "worker", w,
                                           name=f"w{s}.{w}")))
            if s > 0:
                threads.append((yield Fork(section, "edger", LEFT,
                                           name=f"e{s}.L")))
            if s < nsections - 1:
                threads.append((yield Fork(section, "edger", RIGHT,
                                           name=f"e{s}.R")))
            threads.append((yield Fork(section, "converger",
                                       name=f"c{s}")))
            coordinators.append((yield Fork(section, "run",
                                            name=f"coord{s}")))
        outcomes = []
        for coordinator in coordinators:
            outcomes.append((yield Join(coordinator)))
        finish_us = ctx.now_us
        for thread in threads:
            yield Join(thread)
        grid = None
        if collect_grid:
            grid = make_grid(problem)
            for s, section in enumerate(section_objs):
                col_lo = problem.cols * s // nsections
                slab = yield Invoke(section, "snapshot")
                grid[:, col_lo + 1:col_lo + 1 + slab.shape[1]] = slab
        return outcomes, finish_us, grid

    config = ClusterConfig(nodes=nodes, cpus_per_node=cpus_per_node,
                           contended_network=contended_network)
    result = AmberProgram(config, costs, faults).run(main, tracer=tracer)
    outcomes, finish_us, grid = result.value
    iterations_run = max(outcome[0] for outcome in outcomes)
    final_delta = max(outcome[1] for outcome in outcomes)
    return AmberSorResult(
        problem=problem,
        nodes=nodes,
        cpus_per_node=cpus_per_node,
        sections=nsections,
        workers_per_section=workers,
        overlap=overlap,
        per_point_us=per_point_us,
        iterations_run=iterations_run,
        final_delta=final_delta,
        elapsed_us=finish_us,
        sequential_us=sequential_time_us(problem, iterations_run,
                                         per_point_us),
        stats=result.stats,
        grid=grid,
        cluster=result.cluster,
    )
