"""The N-Queens work pool on the live multiprocess runtime.

The same decomposition as :mod:`repro.apps.queens` (simulated), rebuilt
with live objects: a :class:`LiveWorkPool` on one node, worker objects
on every node pulling batches through function-shipped invocations.
Counting is real, so the total must match the known solution counts —
which is exactly what makes this workload the chaos suite's
*exactly-once* probe: a double-executed ``report`` (duplicate delivery)
inflates the totals, a lost one (drop without recovery) deflates them.
Either discrepancy fails the ``repro chaos`` verdict (docs/CHAOS.md).
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

from repro.apps.queens import count_completions, seed_prefixes
from repro.runtime.cluster import Cluster
from repro.runtime.objects import AmberObject, current_node


class LiveWorkPool(AmberObject):
    """Shared batch queue plus the solution accumulator."""

    def __init__(self, prefixes):
        self._lock = threading.Lock()
        self._work = list(prefixes)
        self.solutions = 0
        self.units_done = 0

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def take(self, batch=2):
        with self._lock:
            units, self._work = (self._work[:batch],
                                 self._work[batch:])
            return units

    def report(self, solutions, units):
        with self._lock:
            self.solutions += solutions
            self.units_done += units

    def summary(self):
        with self._lock:
            return self.solutions, self.units_done


class LiveWorker(AmberObject):
    """One worker: pulls batches from the pool until it drains."""

    def __init__(self, n, pool):
        self.n = n
        self.pool = pool

    def run(self, batch=2):
        solved = 0
        nodes_seen = set()
        while True:
            prefixes = self.pool.take(batch)
            if not prefixes:
                return solved, sorted(nodes_seen)
            nodes_seen.add(current_node())
            total = 0
            for prefix in prefixes:
                solutions, _ = count_completions(self.n, prefix)
                total += solutions
            self.pool.report(total, len(prefixes))
            solved += len(prefixes)


def run_live_queens(n: int, nodes: int = 2, pool_node: int = 0,
                    batch: int = 2, prefix_rows: int = 2,
                    cluster: Optional[Cluster] = None
                    ) -> Tuple[int, int, int]:
    """Count the ``n``-Queens solutions on a live cluster.

    Returns ``(solutions, units_done, total_units)``.  Pass an existing
    ``cluster`` to reuse one (tests, chaos scenarios); otherwise one is
    spawned and torn down around the run.
    """
    prefixes = seed_prefixes(n, prefix_rows)
    owns_cluster = cluster is None
    if owns_cluster:
        cluster = Cluster(nodes=nodes)
    try:
        pool = cluster.create(LiveWorkPool, prefixes, node=pool_node)
        workers = [cluster.create(LiveWorker, n, pool, node=node)
                   for node in range(nodes)]
        threads = [cluster.fork(worker, "run", batch)
                   for worker in workers]
        for thread in threads:
            thread.join(timeout=120)
        solutions, units = pool.summary()
        return solutions, units, len(prefixes)
    finally:
        if owns_cluster:
            cluster.shutdown()
