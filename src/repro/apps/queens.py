"""Parallel N-Queens over a distributed work pool.

The paper's SOR study covers regular, static parallelism.  Its
introduction promises more: "a dynamic program structure that can express
and benefit from locality".  This application exercises the dynamic side
of the model on the simulator — an irregular tree search whose work units
have wildly uneven costs, load-balanced through a shared pool object:

* a **WorkPool** object (one node) seeded with every partial placement of
  the first ``split_depth`` queens;
* one **worker thread per CPU**, anchored to a per-node Worker object;
  each loops: take a prefix from the pool (a remote invocation for most
  workers — function shipping again), count all completions beneath it
  locally, report the tally back;
* counting is real (a bitmask DFS); simulated time is charged per search
  node visited, so load imbalance and pool contention behave like the
  real thing.

The pool is the kind of mutable, hot object the paper's model handles
well: it stays put, and the *threads* come to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.costs import CostModel
from repro.placement.policies import PlacementPolicy
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.stats import ClusterStats
from repro.sim.syscalls import Charge, Compute, Fork, Invoke, Join, New

#: Simulated CPU cost per search-tree node visited, microseconds
#: (CVAX-class: bound checks, mask updates, call overhead).
DEFAULT_NODE_COST_US = 20.0

#: Known solution counts for verification.
KNOWN_SOLUTIONS = {1: 1, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352,
                   10: 724, 11: 2680, 12: 14200}


def count_completions(n: int, columns: Tuple[int, ...]
                      ) -> Tuple[int, int]:
    """Count solutions extending ``columns`` (queens already placed in
    rows 0..len(columns)-1); returns (solutions, nodes_visited)."""
    full = (1 << n) - 1
    cols = diag1 = diag2 = 0
    for row, col in enumerate(columns):
        bit = 1 << col
        if cols & bit or diag1 & (bit << row) or \
                diag2 & (bit << (n - 1 - row)):
            return 0, 0   # prefix already conflicts
        cols |= bit
        diag1 |= bit << row
        diag2 |= bit << (n - 1 - row)

    def search(row: int, cols: int, d1: int, d2: int) -> Tuple[int, int]:
        if row == n:
            return 1, 0
        solutions = 0
        visited = 0
        free = full & ~(cols | (d1 >> row) | (d2 >> (n - 1 - row)))
        while free:
            bit = free & -free
            free ^= bit
            visited += 1
            sub_solutions, sub_visited = search(
                row + 1, cols | bit, d1 | (bit << row),
                d2 | (bit << (n - 1 - row)))
            solutions += sub_solutions
            visited += sub_visited
        return solutions, visited

    return search(len(columns), cols, diag1, diag2)


def seed_prefixes(n: int, split_depth: int) -> List[Tuple[int, ...]]:
    """All non-conflicting placements of the first ``split_depth``
    queens — the work units."""
    prefixes: List[Tuple[int, ...]] = [()]
    for _ in range(split_depth):
        extended = []
        for prefix in prefixes:
            for col in range(n):
                candidate = prefix + (col,)
                if not _conflicts(n, candidate):
                    extended.append(candidate)
        prefixes = extended
    return prefixes


def _conflicts(n: int, columns: Tuple[int, ...]) -> bool:
    for i, a in enumerate(columns):
        for j in range(i + 1, len(columns)):
            b = columns[j]
            if a == b or abs(a - b) == j - i:
                return True
    return False


class WorkPool(SimObject):
    """The shared pool: take work, report results.  Deliberately simple —
    all synchronization is the object-model guarantee that operations on
    it execute on its node."""

    SIZE_BYTES = 2048

    def __init__(self, prefixes: List[Tuple[int, ...]]):
        self._work = list(reversed(prefixes))
        self.total_units = len(prefixes)
        self.solutions = 0
        self.nodes_visited = 0
        self.units_done = 0

    def take(self, ctx, batch=1):
        """Hand out up to ``batch`` work units (empty list = done).
        Batching trades pool traffic against load-balance granularity."""
        yield Charge(5.0)
        units = []
        while self._work and len(units) < batch:
            units.append(self._work.pop())
        return units

    def report(self, ctx, solutions, visited, units=1):
        yield Charge(5.0)
        self.solutions += solutions
        self.nodes_visited += visited
        self.units_done += units

    def summary(self, ctx):
        yield Charge(2.0)
        return (self.solutions, self.nodes_visited, self.units_done)


class QueensWorker(SimObject):
    """Per-node anchor for worker threads: take/solve/report until the
    pool runs dry."""

    def __init__(self, n: int, pool: WorkPool, node_cost_us: float):
        self.n = n
        self.pool = pool
        self.node_cost_us = node_cost_us
        self.units_solved = 0

    def run(self, ctx, batch=1):
        solved = 0   # this thread's tally (the anchor object is shared
        while True:  # by every worker thread on its node)
            prefixes = yield Invoke(self.pool, "take", batch)
            if not prefixes:
                return solved
            total_solutions = total_visited = 0
            for prefix in prefixes:
                solutions, visited = count_completions(self.n, prefix)
                total_solutions += solutions
                total_visited += visited
            # Charge the search cost *before* reporting: the numbers are
            # available to Python instantly, but the simulated CPU paid
            # for every node visited.
            yield Compute(total_visited * self.node_cost_us)
            yield Invoke(self.pool, "report", total_solutions,
                         total_visited, len(prefixes))
            solved += len(prefixes)
            self.units_solved += len(prefixes)


@dataclass
class QueensResult:
    n: int
    nodes: int
    cpus_per_node: int
    split_depth: int
    batch: int
    solutions: int
    nodes_visited: int
    work_units: int
    elapsed_us: float
    sequential_us: float
    stats: ClusterStats
    per_worker_units: List[int]
    #: The simulated cluster, for metrics/trace introspection.
    cluster: object = None

    @property
    def speedup(self) -> float:
        return self.sequential_us / self.elapsed_us

    @property
    def load_imbalance(self) -> float:
        """max/mean units per worker — 1.0 is perfectly even."""
        if not self.per_worker_units:
            return 1.0
        mean = sum(self.per_worker_units) / len(self.per_worker_units)
        return max(self.per_worker_units) / mean if mean else 1.0


def run_amber_queens(n: int = 10,
                     nodes: int = 2,
                     cpus_per_node: int = 4,
                     split_depth: int = 2,
                     batch: int = 1,
                     node_cost_us: float = DEFAULT_NODE_COST_US,
                     costs: Optional[CostModel] = None,
                     tracer=None,
                     faults=None,
                     placement: Optional[PlacementPolicy] = None
                     ) -> QueensResult:
    """Count N-Queens solutions on a simulated Amber cluster.

    ``placement`` overrides creation-time placement per class; the
    default policy passes the program's own choices through unchanged.
    """
    prefixes = seed_prefixes(n, split_depth)
    place = placement if placement is not None else PlacementPolicy()

    def main(ctx):
        pool = yield New(WorkPool, prefixes,
                         on_node=place.node_for("WorkPool", 0, None,
                                                count=1))
        workers = []
        for node in range(nodes):
            anchor = yield New(QueensWorker, n, pool, node_cost_us,
                               on_node=place.node_for(
                                   "QueensWorker", node, node,
                                   count=nodes))
            for _ in range(cpus_per_node):
                workers.append((yield Fork(anchor, "run", batch)))
        per_worker = []
        for worker in workers:
            per_worker.append((yield Join(worker)))
        solutions, visited, done = yield Invoke(pool, "summary")
        return solutions, visited, done, per_worker

    config = ClusterConfig(nodes=nodes, cpus_per_node=cpus_per_node)
    result = AmberProgram(config, costs, faults).run(main, tracer=tracer)
    solutions, visited, done, per_worker = result.value
    return QueensResult(
        n=n, nodes=nodes, cpus_per_node=cpus_per_node,
        split_depth=split_depth, batch=batch, solutions=solutions,
        nodes_visited=visited, work_units=done,
        elapsed_us=result.elapsed_us,
        sequential_us=visited * node_cost_us,
        stats=result.stats,
        per_worker_units=per_worker,
        cluster=result.cluster,
    )
