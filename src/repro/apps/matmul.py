"""Distributed block matrix multiply: replication in a numeric workload.

``C = A @ B`` with A's row-blocks spread across the nodes, one worker
thread per row-block.  Every worker needs *all* of B, which makes B the
interesting object:

* **mutable B** — each worker pulls B's column blocks by value through
  remote invocations (``result_bytes`` models the transfer), paying a
  thread round trip plus the data wire time per block, per worker;
* **immutable B** (``SetImmutable``) — the first touch from each node
  installs a local replica; every later read is local.  This is section
  2.3's replication story with real arithmetic behind it.

The numerics are real (float32 blocks, verified against ``A @ B``);
simulated compute is charged per multiply-accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.sor.grid import VALUE_BYTES
from repro.core.costs import CostModel
from repro.placement.policies import PlacementPolicy
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.stats import ClusterStats
from repro.sim.syscalls import (
    Charge,
    Compute,
    Fork,
    Invoke,
    Join,
    New,
    SetImmutable,
)

#: Simulated cost of one multiply-accumulate, microseconds (CVAX-class
#: F-floating multiply + add + addressing).
DEFAULT_MAC_US = 3.0


class MatrixB(SimObject):
    """The shared right-hand matrix, stored whole on one node (or
    replicated everywhere once marked immutable)."""

    def __init__(self, values: np.ndarray):
        self.values = np.ascontiguousarray(values, dtype=np.float32)

    def shape(self, ctx):
        yield Charge(1.0)
        return self.values.shape

    def get_columns(self, ctx, col_lo, col_hi):
        yield Charge(2.0)
        return self.values[:, col_lo:col_hi].copy()


class RowBlockWorker(SimObject):
    """Owns one horizontal stripe of A and computes that stripe of C."""

    def __init__(self, a_block: np.ndarray, b: MatrixB,
                 col_block: int, mac_us: float):
        self.a_block = np.ascontiguousarray(a_block, dtype=np.float32)
        self.b = b
        self.col_block = col_block
        self.mac_us = mac_us
        self.result: Optional[np.ndarray] = None

    def multiply(self, ctx, rounds=1):
        """Compute the stripe ``rounds`` times (iterative algorithms
        re-read B every sweep; replication pays off on the reuse)."""
        rows, inner = self.a_block.shape
        _, cols = yield Invoke(self.b, "shape")
        out = np.zeros((rows, cols), dtype=np.float32)
        for _ in range(rounds):
            for col_lo in range(0, cols, self.col_block):
                col_hi = min(cols, col_lo + self.col_block)
                block_bytes = inner * (col_hi - col_lo) * VALUE_BYTES
                b_cols = yield Invoke(self.b, "get_columns", col_lo,
                                      col_hi, result_bytes=block_bytes)
                macs = rows * inner * (col_hi - col_lo)
                yield Compute(macs * self.mac_us)
                out[:, col_lo:col_hi] = self.a_block @ b_cols
        self.result = out
        return rows * cols

    def collect(self, ctx):
        yield Charge(2.0)
        return self.result


@dataclass
class MatmulResult:
    m: int
    k: int
    n: int
    nodes: int
    replicate_b: bool
    elapsed_us: float
    sequential_us: float
    stats: ClusterStats
    network_bytes: int
    product: np.ndarray
    #: The simulated cluster, for metrics/trace introspection.
    cluster: object = None

    @property
    def speedup(self) -> float:
        return self.sequential_us / self.elapsed_us


def run_matmul(m: int = 96, k: int = 96, n: int = 96,
               nodes: int = 4, cpus_per_node: int = 2,
               replicate_b: bool = True,
               rounds: int = 1,
               col_block: Optional[int] = None,
               mac_us: float = DEFAULT_MAC_US,
               costs: Optional[CostModel] = None,
               seed: int = 7,
               tracer=None,
               placement: Optional[PlacementPolicy] = None
               ) -> MatmulResult:
    """Multiply random ``m x k`` by ``k x n`` on a simulated cluster, one
    row-block (and one worker thread) per node.

    ``placement`` overrides creation-time placement and replication per
    class; the default policy passes the program's own choices
    (including ``replicate_b``) through unchanged."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k), dtype=np.float32)
    b_values = rng.standard_normal((k, n), dtype=np.float32)
    block = col_block if col_block is not None else max(8, n // 4)
    place = placement if placement is not None else PlacementPolicy()

    def main(ctx):
        b = yield New(MatrixB, b_values,
                      size_bytes=k * n * VALUE_BYTES,
                      on_node=place.node_for("MatrixB", 0, None,
                                             count=1))
        if place.replicate("MatrixB", replicate_b):
            yield SetImmutable(b)
        workers = []
        for node in range(nodes):
            row_lo = m * node // nodes
            row_hi = m * (node + 1) // nodes
            workers.append((yield New(
                RowBlockWorker, a[row_lo:row_hi], b, block, mac_us,
                on_node=place.node_for("RowBlockWorker", node, node,
                                       count=nodes),
                size_bytes=(row_hi - row_lo) * k * VALUE_BYTES)))
        threads = []
        for worker in workers:
            threads.append((yield Fork(worker, "multiply", rounds)))
        for thread in threads:
            yield Join(thread)
        t_done = ctx.now_us
        blocks = []
        for worker in workers:
            blocks.append((yield Invoke(worker, "collect")))
        return t_done, blocks

    config = ClusterConfig(nodes=nodes, cpus_per_node=cpus_per_node)
    result = AmberProgram(config, costs).run(main, tracer=tracer)
    t_done, blocks = result.value
    product = np.vstack(blocks)
    return MatmulResult(
        m=m, k=k, n=n, nodes=nodes, replicate_b=replicate_b,
        elapsed_us=t_done,
        sequential_us=m * k * n * mac_us * rounds,
        stats=result.stats,
        network_bytes=result.cluster.network.stats.bytes,
        product=product,
        cluster=result.cluster,
    )
