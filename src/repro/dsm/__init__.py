"""An Ivy-style page-based distributed shared virtual memory (section 4).

The paper argues for object-granularity coherence (function shipping) over
page-granularity coherence (data shipping, i.e. Li's Ivy) but never
measures Ivy.  This package makes the comparison measurable: a page-based
DSM with Li & Hudak's fixed-distributed-manager write-invalidate protocol,
running on the same simulated cluster (same CPUs, same shared Ethernet,
same cost model) as the Amber backend.

Processes are pinned to nodes (Ivy distributes work by explicit process
placement) and express their work as generators yielding
:mod:`repro.dsm.ops` requests: ``Compute``, ``Read``/``Write`` over byte
ranges of the shared address space (faulting and transferring whole pages),
``TestAndSet``/``Store``/``Load`` for flag- and lock-in-memory algorithms
(the page-thrashing pattern of section 4.1), and ``RpcLock``/``RpcBarrier``
for the "recent versions of Ivy ... accessing shared lock variables with
remote procedure calls" escape hatch the paper mentions.
"""

from repro.dsm.machine import IvyCluster, IvyProcess, IvyStats, run_ivy
from repro.dsm.ops import (
    Compute,
    Load,
    Read,
    RpcBarrier,
    RpcLockAcquire,
    RpcLockRelease,
    Store,
    TestAndSet,
    Write,
)
from repro.dsm.pages import PageAccess

__all__ = [
    "Compute",
    "IvyCluster",
    "IvyProcess",
    "IvyStats",
    "Load",
    "PageAccess",
    "Read",
    "RpcBarrier",
    "RpcLockAcquire",
    "RpcLockRelease",
    "Store",
    "TestAndSet",
    "Write",
    "run_ivy",
]
