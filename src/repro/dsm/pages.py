"""Page tables and ownership records for the DSM baseline.

Coherence unit: the fixed-size page (1 KiB by default, from the cost
model).  Each page has a *manager* chosen statically by page number (Li &
Hudak's fixed distributed manager); the manager serializes ownership
transactions for its pages and tracks the owner and the copyset.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Set


class PageAccess(enum.Enum):
    NONE = 0
    READ = 1
    WRITE = 2


class PageTable:
    """One node's view of its page access rights."""

    def __init__(self, node: int):
        self.node = node
        self._access: Dict[int, PageAccess] = {}

    def access(self, page: int) -> PageAccess:
        return self._access.get(page, PageAccess.NONE)

    def set_access(self, page: int, access: PageAccess) -> None:
        if access is PageAccess.NONE:
            self._access.pop(page, None)
        else:
            self._access[page] = access

    def pages_held(self) -> int:
        return len(self._access)


@dataclass
class OwnershipRecord:
    """Manager-side state for one page."""

    owner: int
    copyset: Set[int] = field(default_factory=set)
    #: A fault transaction is in flight; later requests queue here.
    busy: bool = False
    queue: Deque = field(default_factory=deque)


class ManagerTable:
    """Ownership records for the pages a node manages."""

    def __init__(self, node: int, initial_owner: int = 0):
        self.node = node
        self._records: Dict[int, OwnershipRecord] = {}
        self._initial_owner = initial_owner

    def record(self, page: int) -> OwnershipRecord:
        if page not in self._records:
            # Untouched pages start owned (zero-filled) by the configured
            # initial owner with an empty copyset.
            self._records[page] = OwnershipRecord(
                owner=self._initial_owner,
                copyset={self._initial_owner})
        return self._records[page]


def page_of(addr: int, page_bytes: int) -> int:
    return addr // page_bytes


def pages_of_range(addr: int, nbytes: int, page_bytes: int) -> range:
    if nbytes <= 0:
        nbytes = 1
    first = addr // page_bytes
    last = (addr + nbytes - 1) // page_bytes
    return range(first, last + 1)
