"""Requests Ivy processes yield to the DSM machine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Compute:
    """Consume CPU for ``us`` microseconds."""

    us: float


@dataclass(frozen=True)
class Read:
    """Ensure read access to ``[addr, addr + nbytes)``; every page in the
    range not held in READ or WRITE state faults and is copied here."""

    addr: int
    nbytes: int = 1


@dataclass(frozen=True)
class Write:
    """Ensure write access (ownership) of the range; pages not held in
    WRITE state fault, invalidating every other copy."""

    addr: int
    nbytes: int = 1


@dataclass(frozen=True)
class Load:
    """Read access plus the Python value stored at ``addr`` (for flags and
    in-memory locks)."""

    addr: int


@dataclass(frozen=True)
class Store:
    """Write access plus storing a Python value at ``addr``."""

    addr: int
    value: object


@dataclass(frozen=True)
class TestAndSet:
    """Atomic test-and-set on the word at ``addr`` (requires ownership of
    its page, exactly like a real TAS through a DSM).  Returns the
    previous value — the building block of the lock that makes a
    data-shipping system thrash (section 4.1)."""

    #: Not a pytest class, despite the name.
    __test__ = False

    addr: int


@dataclass(frozen=True)
class RpcLockAcquire:
    """Acquire lock ``lock_id`` by RPC to its server node — the
    deviation from pure data shipping that "recent versions of Ivy" use
    for lock variables (section 4.1)."""

    lock_id: int
    server: int = 0


@dataclass(frozen=True)
class RpcLockRelease:
    lock_id: int
    server: int = 0


@dataclass(frozen=True)
class RpcBarrier:
    """Meet at a centralized RPC barrier of ``parties`` processes."""

    barrier_id: int
    parties: int
    server: int = 0
