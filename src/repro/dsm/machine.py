"""The DSM machine: processes, page-fault protocol, RPC sync services.

This is a deliberately smaller kernel than the Amber one: processes are
pinned to their nodes (data ships to computation, never the reverse), so
there is no migration machinery — the entire inter-node traffic is page
transfers, invalidations, and the optional RPC lock/barrier services.

Three of Li & Hudak's ownership-management algorithms are implemented
(``manager_mode``): a single *centralized* manager, the default *fixed*
distributed managers (pages striped across nodes), and the *dynamic*
distributed manager, where requests chase per-node probOwner hints to the
owner itself — structurally the same locating algorithm as Amber's
forwarding addresses, path compression included.

Protocol (write-invalidate; shown for a separate manager):

* read fault: requester -> manager -> owner; the owner downgrades to READ
  and ships the page; the requester confirms to the manager, which adds it
  to the copyset.
* write fault: requester -> manager; the manager invalidates every copy
  except the requester's, has the owner ship the page (skipped if the
  requester already holds a READ copy), and transfers ownership.
* The manager serializes transactions per page; concurrent faults queue.

All delays come from the shared :class:`~repro.core.costs.CostModel` and
the same contended Ethernet the Amber backend uses, so head-to-head
comparisons are apples to apples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.costs import CostModel
from repro.dsm import ops
from repro.dsm.pages import (
    ManagerTable,
    OwnershipRecord,
    PageAccess,
    PageTable,
    pages_of_range,
)
from repro.errors import DeadlockError, InvocationError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import Ethernet

#: CPU cost of a satisfied (non-faulting) access check and of the Python
#: value effects of Load/Store/TestAndSet.
LOCAL_ACCESS_US = 1.0


@dataclass
class IvyStats:
    read_faults: int = 0
    write_faults: int = 0
    page_transfers: int = 0
    invalidations: int = 0
    lock_rpcs: int = 0
    barrier_rounds: int = 0
    #: Dynamic-manager mode: requests forwarded along probOwner chains.
    owner_forwards: int = 0
    #: page -> number of times it was transferred (ping-pong detector).
    transfers_by_page: Dict[int, int] = field(default_factory=dict)

    @property
    def total_faults(self) -> int:
        return self.read_faults + self.write_faults

    def hottest_page(self) -> Tuple[Optional[int], int]:
        if not self.transfers_by_page:
            return None, 0
        page = max(self.transfers_by_page,
                   key=lambda p: self.transfers_by_page[p])
        return page, self.transfers_by_page[page]


class IvyProcess:
    """One pinned process: a generator plus scheduling state."""

    _states = ("new", "ready", "running", "blocked", "done")

    def __init__(self, pid: int, node: int, name: str = ""):
        self.pid = pid
        self.node = node
        self.name = name or f"proc-{pid}"
        self.state = "new"
        self.gen = None
        self.cpu: Optional[int] = None
        self.send_value: Any = None
        self.send_exc: Optional[BaseException] = None
        self.result: Any = None
        self.exception: Optional[BaseException] = None

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<IvyProcess {self.name} @node {self.node} {self.state}>"


class _IvyNode:
    def __init__(self, node_id: int, ncpus: int):
        self.id = node_id
        self.ncpus = ncpus
        self.cpu_busy: List[Optional[IvyProcess]] = [None] * ncpus
        self.run_queue: Deque[IvyProcess] = deque()
        self.pages = PageTable(node_id)
        self.manager = ManagerTable(node_id)
        #: Dynamic-manager state: believed owner per page (probOwner).
        self.prob_owner: Dict[int, int] = {}
        #: Dynamic-manager state: records for the pages this node OWNS.
        self.owned: Dict[int, OwnershipRecord] = {}
        self.cpu_busy_us = 0.0


class IvyCluster:
    """A cluster of multiprocessor nodes sharing one paged address space."""

    #: Supported ownership-management algorithms (Li & Hudak):
    #: "fixed"       — fixed distributed manager, pages striped by number;
    #: "centralized" — one manager (node 0) for every page;
    #: "dynamic"     — no managers: requests chase probOwner hints to the
    #:                 owner itself, the DSM twin of Amber's forwarding
    #:                 addresses.
    MANAGER_MODES = ("fixed", "centralized", "dynamic")

    def __init__(self, nodes: int, cpus_per_node: int,
                 costs: Optional[CostModel] = None,
                 contended_network: bool = True,
                 manager_mode: str = "fixed"):
        if nodes < 1 or cpus_per_node < 1:
            raise SimulationError("cluster needs >=1 node and >=1 CPU")
        if manager_mode not in self.MANAGER_MODES:
            raise SimulationError(
                f"unknown manager_mode {manager_mode!r}; "
                f"choose from {self.MANAGER_MODES}")
        self.manager_mode = manager_mode
        self.costs = costs or CostModel.firefly()
        self.sim = Simulator()
        self.network = Ethernet(self.sim, self.costs,
                                contended=contended_network)
        self.nodes = [_IvyNode(i, cpus_per_node) for i in range(nodes)]
        self.memory: Dict[int, Any] = {}   # python values at addresses
        self.stats = IvyStats()
        self.processes: List[IvyProcess] = []
        self._locks: Dict[int, Dict[str, Any]] = {}
        self._barriers: Dict[int, Dict[str, Any]] = {}
        self._next_pid = 0

    # -- topology helpers ------------------------------------------------

    def manager_of(self, page: int) -> int:
        """The page's manager: striped ("fixed") or node 0
        ("centralized").  Unused in "dynamic" mode."""
        if self.manager_mode == "centralized":
            return 0
        return page % len(self.nodes)

    def node(self, node_id: int) -> _IvyNode:
        return self.nodes[node_id]

    # -- process management ------------------------------------------------

    def spawn(self, node: int, fn: Callable, *args, name: str = ""
              ) -> IvyProcess:
        """Create a process on ``node`` running ``fn(cluster, *args)``
        (a generator function yielding :mod:`repro.dsm.ops` requests)."""
        proc = IvyProcess(self._next_pid, node, name)
        self._next_pid += 1
        proc.gen = fn(self, *args)
        if not hasattr(proc.gen, "send"):
            raise InvocationError(f"{fn!r} is not a generator function")
        self.processes.append(proc)
        self._ready(proc)
        return proc

    def run(self) -> None:
        """Drain the simulation; raises if any process failed or stalled."""
        self.sim.run()
        for proc in self.processes:
            if proc.exception is not None:
                raise proc.exception
        stalled = [p for p in self.processes if p.state != "done"]
        if stalled:
            raise DeadlockError(
                "DSM simulation stalled with live processes: "
                + ", ".join(f"{p.name}({p.state})" for p in stalled))

    @property
    def elapsed_us(self) -> float:
        return self.sim.now_us

    # -- scheduling --------------------------------------------------------

    def _ready(self, proc: IvyProcess) -> None:
        proc.state = "ready"
        node = self.nodes[proc.node]
        node.run_queue.append(proc)
        self._try_dispatch(node)

    def _try_dispatch(self, node: _IvyNode) -> None:
        """Hand idle CPUs to queued processes.  The queue holds both fresh
        generator resumptions and mid-fault continuations."""
        while node.run_queue:
            try:
                cpu = node.cpu_busy.index(None)
            except ValueError:
                return
            entry = node.run_queue.popleft()
            if isinstance(entry, _Continuation):
                proc = entry.proc
                proc.state = "running"
                proc.cpu = cpu
                node.cpu_busy[cpu] = proc
                self.sim.call_now(entry.fn)
            else:
                entry.state = "running"
                entry.cpu = cpu
                node.cpu_busy[cpu] = entry
                self.sim.call_now(lambda p=entry: self._advance(p))

    def _release_cpu(self, proc: IvyProcess) -> None:
        node = self.nodes[proc.node]
        node.cpu_busy[proc.cpu] = None
        proc.cpu = None
        self._try_dispatch(node)

    def _block(self, proc: IvyProcess) -> None:
        proc.state = "blocked"
        self._release_cpu(proc)

    def _charge(self, proc: IvyProcess, us: float, then) -> None:
        node = self.nodes[proc.node]

        def fire() -> None:
            node.cpu_busy_us += us
            then()

        self.sim.schedule_us(us, fire)

    # -- generator driving ---------------------------------------------------

    def _advance(self, proc: IvyProcess) -> None:
        exc, value = proc.send_exc, proc.send_value
        proc.send_exc = None
        proc.send_value = None
        try:
            if exc is not None:
                request = proc.gen.throw(exc)
            else:
                request = proc.gen.send(value)
        except StopIteration as stop:
            proc.state = "done"
            proc.result = stop.value
            self._release_cpu(proc)
            return
        except Exception as error:
            proc.state = "done"
            proc.exception = error
            self._release_cpu(proc)
            return
        self._handle(proc, request)

    def _resume(self, proc: IvyProcess, value: Any = None) -> None:
        """Unblock a process after a fault or RPC completes."""
        proc.send_value = value
        self._ready(proc)

    def _continue(self, proc: IvyProcess, value: Any = None) -> None:
        """Keep running on the same CPU."""
        proc.send_value = value
        self._advance(proc)

    # -- request handlers --------------------------------------------------

    def _handle(self, proc: IvyProcess, request: Any) -> None:
        if isinstance(request, ops.Compute):
            self._charge(proc, max(0.0, request.us),
                         lambda: self._continue(proc))
        elif isinstance(request, ops.Read):
            pages = list(pages_of_range(request.addr, request.nbytes,
                                        self.costs.page_bytes))
            self._ensure(proc, pages, PageAccess.READ,
                         lambda: self._continue(proc))
        elif isinstance(request, ops.Write):
            pages = list(pages_of_range(request.addr, request.nbytes,
                                        self.costs.page_bytes))
            self._ensure(proc, pages, PageAccess.WRITE,
                         lambda: self._continue(proc))
        elif isinstance(request, ops.Load):
            pages = [request.addr // self.costs.page_bytes]
            self._ensure(proc, pages, PageAccess.READ,
                         lambda: self._continue(
                             proc, self.memory.get(request.addr)))
        elif isinstance(request, ops.Store):
            pages = [request.addr // self.costs.page_bytes]

            def store() -> None:
                self.memory[request.addr] = request.value
                self._continue(proc)

            self._ensure(proc, pages, PageAccess.WRITE, store)
        elif isinstance(request, ops.TestAndSet):
            pages = [request.addr // self.costs.page_bytes]

            def tas() -> None:
                previous = bool(self.memory.get(request.addr))
                self.memory[request.addr] = True
                self._continue(proc, previous)

            self._ensure(proc, pages, PageAccess.WRITE, tas)
        elif isinstance(request, ops.RpcLockAcquire):
            self._rpc_lock_acquire(proc, request)
        elif isinstance(request, ops.RpcLockRelease):
            self._rpc_lock_release(proc, request)
        elif isinstance(request, ops.RpcBarrier):
            self._rpc_barrier(proc, request)
        else:
            proc.send_exc = InvocationError(
                f"process yielded a non-request value: {request!r}")
            self.sim.call_now(lambda: self._advance(proc))

    # -- page access / fault protocol -------------------------------------

    def _ensure(self, proc: IvyProcess, pages: List[int],
                want: PageAccess, then) -> None:
        """Acquire ``want`` access to every page in order, then continue."""
        table = self.nodes[proc.node].pages

        def step(index: int) -> None:
            while index < len(pages):
                access = table.access(pages[index])
                satisfied = (access is PageAccess.WRITE
                             or (want is PageAccess.READ
                                 and access is PageAccess.READ))
                if satisfied:
                    index += 1
                    continue
                self._fault(proc, pages[index], want,
                            lambda i=index: step(i + 1))
                return
            self._charge(proc, LOCAL_ACCESS_US, then)

        step(0)

    def _fault(self, proc: IvyProcess, page: int, want: PageAccess,
               resume_step) -> None:
        """Handle one page fault: trap, talk to the manager, block until
        the page (and for writes, ownership) arrives."""
        costs = self.costs
        if want is PageAccess.WRITE:
            self.stats.write_faults += 1
        else:
            self.stats.read_faults += 1

        def trapped() -> None:
            self._block(proc)
            if self.manager_mode == "dynamic":
                self._chase_owner(proc.node, page,
                                  (proc, want, resume_again), trace=())
            else:
                self._to_manager(page, (proc, want, resume_again))

        def resume_again() -> None:
            # Re-runs the _ensure step on the faulting process's node;
            # the process regains a CPU first.
            proc.send_value = None
            proc.state = "ready"
            node = self.nodes[proc.node]
            node.run_queue.append(_Continuation(proc, resume_step))
            self._try_dispatch(node)

        self._charge(proc, costs.page_fault_us, trapped)

    # -- dynamic distributed manager (Li & Hudak's probOwner scheme) ----

    MAX_CHASE = 64

    def _owner_record(self, node_id: int, page: int
                      ) -> Optional[OwnershipRecord]:
        """The ownership record if ``node_id`` owns ``page``.  All pages
        start owned by node 0 (zero-filled), created lazily."""
        node = self.nodes[node_id]
        if page in node.owned:
            return node.owned[page]
        if node_id == 0 and not any(page in other.owned
                                    for other in self.nodes):
            record = OwnershipRecord(owner=0, copyset={0})
            node.owned[page] = record
            return record
        return None

    def _prob_owner(self, node_id: int, page: int) -> int:
        return self.nodes[node_id].prob_owner.get(page, 0)

    def _chase_owner(self, at_node: int, page: int, request,
                     trace: Tuple[int, ...]) -> None:
        """Deliver a fault request to the page's owner by following
        probOwner hints — the DSM twin of Amber's forwarding-address
        chase (section 3.3)."""
        if len(trace) > self.MAX_CHASE:
            proc, _, _ = request
            proc.send_exc = SimulationError(
                f"page {page}: probOwner chase exceeded {self.MAX_CHASE}")
            self._ready(proc)
            return
        record = self._owner_record(at_node, page)
        if record is not None:
            # Found the owner: serialize, then run the transaction here.
            self._send_prob_hints(trace, page, at_node)
            if record.busy:
                record.queue.append(request)
                return
            record.busy = True
            self._owner_transaction(at_node, page, record, request)
            return
        target = self._prob_owner(at_node, page)
        if target == at_node:
            # Stale self-hint: fall back to the initial owner.
            target = 0
        self.stats.owner_forwards += 1

        def delivered() -> None:
            self.sim.schedule_us(
                self.costs.manager_us,
                lambda: self._chase_owner(target, page, request,
                                          trace + (at_node,)))

        self.network.send(at_node, target, self.costs.control_bytes,
                          delivered)

    def _send_prob_hints(self, trace: Tuple[int, ...], page: int,
                         owner: int) -> None:
        """Point every node along the chase path at the owner (path
        compression; advisory, so no acknowledgements)."""
        for visited in trace:
            if visited != owner:
                self.nodes[visited].prob_owner[page] = owner

    def _owner_transaction(self, owner: int, page: int,
                           record: OwnershipRecord, request) -> None:
        """The owner services the fault itself (no separate manager)."""
        proc, want, resume = request
        costs = self.costs
        requester = proc.node

        def finish() -> None:
            record.busy = False
            resume()
            self._drain_record(record, page)

        if want is PageAccess.READ:
            if requester == owner:
                self.nodes[owner].pages.set_access(page, PageAccess.READ)
                record.copyset.add(owner)
                self.sim.schedule_us(costs.manager_us, finish)
                return

            def ship() -> None:
                self.nodes[owner].pages.set_access(page, PageAccess.READ)
                self._count_transfer(page)
                self.network.send(owner, requester, costs.page_bytes,
                                  install)

            def install() -> None:
                def installed() -> None:
                    self.nodes[requester].pages.set_access(
                        page, PageAccess.READ)
                    record.copyset.add(requester)
                    self.nodes[requester].prob_owner[page] = owner
                    # Confirm to the owner (it is the manager here).
                    self.network.send(requester, owner,
                                      costs.control_bytes, finish)
                self.sim.schedule_us(costs.page_install_us, installed)

            self.sim.schedule_us(costs.page_pack_us, ship)
            return

        # Write fault: invalidate every copy, ship the page if needed,
        # and hand the record itself to the requester.
        has_copy = (self.nodes[requester].pages.access(page)
                    is not PageAccess.NONE) or requester == owner
        to_invalidate = {n for n in record.copyset | {owner}
                         if n != requester}
        pending = {"acks": len(to_invalidate), "page": not has_copy}

        def maybe_done() -> None:
            if pending["acks"] == 0 and not pending["page"]:
                self.nodes[requester].pages.set_access(page,
                                                       PageAccess.WRITE)
                # Ownership (and the record) moves to the requester.
                del self.nodes[owner].owned[page]
                record.owner = requester
                record.copyset = {requester}
                self.nodes[requester].owned[page] = record
                self.nodes[owner].prob_owner[page] = requester
                finish()

        for target in sorted(to_invalidate):
            def invalidate(t=target) -> None:
                def zap() -> None:
                    self.nodes[t].pages.set_access(page, PageAccess.NONE)
                    self.stats.invalidations += 1
                    self.nodes[t].prob_owner[page] = requester

                    def acked() -> None:
                        pending["acks"] -= 1
                        maybe_done()
                    if t == owner:
                        acked()
                    else:
                        self.network.send(t, owner, costs.control_bytes,
                                          acked)
                self.sim.schedule_us(costs.invalidate_us, zap)

            if target == owner:
                invalidate()
            else:
                self.network.send(owner, target, costs.control_bytes,
                                  lambda t=target: invalidate(t))

        if pending["page"]:
            def ship() -> None:
                self._count_transfer(page)
                self.network.send(owner, requester, costs.page_bytes,
                                  install)

            def install() -> None:
                def installed() -> None:
                    pending["page"] = False
                    maybe_done()
                self.sim.schedule_us(costs.page_install_us, installed)

            self.sim.schedule_us(costs.page_pack_us, ship)
        else:
            maybe_done()

    def _drain_record(self, record: OwnershipRecord, page: int) -> None:
        """After a transaction, run the next queued request *wherever the
        record now lives* — a write fault moves the record (queue and
        all) to the new owner, exactly as Li forwards pending requests."""
        if record.queue and not record.busy:
            request = record.queue.popleft()
            record.busy = True
            self._owner_transaction(record.owner, page, record, request)

    def _to_manager(self, page: int, request) -> None:
        manager_node = self.manager_of(page)
        requester = request[0].node

        def arrived() -> None:
            self._manager_enqueue(page, request)

        if manager_node == requester:
            self.sim.schedule_us(self.costs.manager_us, arrived)
        else:
            self.network.send(requester, manager_node,
                              self.costs.control_bytes, arrived)

    def _manager_enqueue(self, page: int, request) -> None:
        record = self.nodes[self.manager_of(page)].manager.record(page)
        if record.busy:
            record.queue.append(request)
            return
        record.busy = True
        self._transaction(page, record, request)

    def _transaction(self, page: int, record: OwnershipRecord,
                     request) -> None:
        proc, want, resume = request
        costs = self.costs
        manager_node = self.manager_of(page)
        requester = proc.node

        def finish() -> None:
            record.busy = False
            resume()
            if record.queue:
                next_request = record.queue.popleft()
                record.busy = True
                self._transaction(page, record, next_request)

        if want is PageAccess.READ:
            owner = record.owner
            if owner == requester:
                # First touch of a page we nominally own (zero-filled):
                # grant read access without any transfer.
                self.nodes[requester].pages.set_access(page,
                                                       PageAccess.READ)
                record.copyset.add(requester)
                self.sim.schedule_us(costs.manager_us, finish)
                return

            def at_owner() -> None:
                self.nodes[owner].pages.set_access(page, PageAccess.READ)
                self.sim.schedule_us(costs.page_pack_us, ship)

            def ship() -> None:
                self._count_transfer(page)
                self.network.send(owner, requester, costs.page_bytes,
                                  install)

            def install() -> None:
                def installed() -> None:
                    self.nodes[requester].pages.set_access(
                        page, PageAccess.READ)
                    record.copyset.add(requester)
                    # Confirmation back to the manager.
                    if requester == manager_node:
                        finish()
                    else:
                        self.network.send(requester, manager_node,
                                          costs.control_bytes, finish)
                self.sim.schedule_us(costs.page_install_us, installed)

            self._forward(manager_node, owner, at_owner)
        else:
            self._write_transaction(page, record, proc, finish)

    def _write_transaction(self, page: int, record: OwnershipRecord,
                           proc: IvyProcess, finish) -> None:
        costs = self.costs
        manager_node = self.manager_of(page)
        requester = proc.node
        owner = record.owner
        has_copy = (self.nodes[requester].pages.access(page)
                    is not PageAccess.NONE) or owner == requester
        to_invalidate = {n for n in record.copyset | {owner}
                         if n != requester}
        pending = {"acks": len(to_invalidate), "page": not has_copy}

        def maybe_done() -> None:
            if pending["acks"] == 0 and not pending["page"]:
                self.nodes[requester].pages.set_access(
                    page, PageAccess.WRITE)
                record.owner = requester
                record.copyset = {requester}
                finish()

        # Invalidations fan out in parallel.
        for target in sorted(to_invalidate):
            def invalidate(t=target) -> None:
                def zap() -> None:
                    self.nodes[t].pages.set_access(page, PageAccess.NONE)
                    self.stats.invalidations += 1

                    def acked() -> None:
                        pending["acks"] -= 1
                        maybe_done()
                    if t == manager_node:
                        acked()
                    else:
                        self.network.send(t, manager_node,
                                          costs.control_bytes, acked)
                self.sim.schedule_us(costs.invalidate_us, zap)

            if target == manager_node:
                invalidate()
            else:
                self.network.send(manager_node, target,
                                  costs.control_bytes,
                                  lambda t=target: invalidate(t))

        # Page transfer from the old owner, if the requester lacks a copy.
        if pending["page"]:
            def at_owner() -> None:
                self.sim.schedule_us(costs.page_pack_us, ship)

            def ship() -> None:
                self._count_transfer(page)
                self.network.send(owner, requester, costs.page_bytes,
                                  install)

            def install() -> None:
                def installed() -> None:
                    pending["page"] = False
                    maybe_done()
                self.sim.schedule_us(costs.page_install_us, installed)

            self._forward(manager_node, owner, at_owner)
        else:
            maybe_done()

    def _forward(self, src: int, dst: int, then) -> None:
        if src == dst:
            self.sim.schedule_us(self.costs.manager_us, then)
        else:
            self.network.send(src, dst, self.costs.control_bytes, then)

    def _count_transfer(self, page: int) -> None:
        self.stats.page_transfers += 1
        self.stats.transfers_by_page[page] = \
            self.stats.transfers_by_page.get(page, 0) + 1

    # -- RPC lock / barrier services ----------------------------------------

    def _rpc_lock_acquire(self, proc: IvyProcess,
                          request: ops.RpcLockAcquire) -> None:
        costs = self.costs
        lock = self._locks.setdefault(
            request.lock_id, {"held": False, "queue": deque()})
        self.stats.lock_rpcs += 1

        def at_server() -> None:
            if lock["held"]:
                lock["queue"].append(proc)
            else:
                lock["held"] = True
                grant()

        def grant() -> None:
            if request.server == proc.node:
                self._resume(proc)
            else:
                self.network.send(request.server, proc.node,
                                  costs.control_bytes,
                                  lambda: self._resume(proc))

        def request_sent() -> None:
            self.sim.schedule_us(costs.manager_us, at_server)

        self._block(proc)
        if request.server == proc.node:
            request_sent()
        else:
            self.network.send(proc.node, request.server,
                              costs.control_bytes, request_sent)

    def _rpc_lock_release(self, proc: IvyProcess,
                          request: ops.RpcLockRelease) -> None:
        costs = self.costs
        lock = self._locks.setdefault(
            request.lock_id, {"held": False, "queue": deque()})
        self.stats.lock_rpcs += 1

        def at_server() -> None:
            if lock["queue"]:
                waiter = lock["queue"].popleft()
                if request.server == waiter.node:
                    self._resume(waiter)
                else:
                    self.network.send(request.server, waiter.node,
                                      costs.control_bytes,
                                      lambda w=waiter: self._resume(w))
            else:
                lock["held"] = False

        def sent() -> None:
            self.sim.schedule_us(costs.manager_us, at_server)
            # The releaser does not wait for an acknowledgement.
            self._resume(proc)

        self._block(proc)
        if request.server == proc.node:
            sent()
        else:
            self.network.send(proc.node, request.server,
                              costs.control_bytes, sent)

    def _rpc_barrier(self, proc: IvyProcess,
                     request: ops.RpcBarrier) -> None:
        costs = self.costs
        barrier = self._barriers.setdefault(
            request.barrier_id, {"count": 0, "waiting": []})

        def at_server() -> None:
            barrier["count"] += 1
            barrier["waiting"].append(proc)
            if barrier["count"] == request.parties:
                self.stats.barrier_rounds += 1
                waiting = barrier["waiting"]
                barrier["count"] = 0
                barrier["waiting"] = []
                for waiter in waiting:
                    if waiter.node == request.server:
                        self._resume(waiter)
                    else:
                        self.network.send(
                            request.server, waiter.node,
                            costs.control_bytes,
                            lambda w=waiter: self._resume(w))

        self._block(proc)
        if proc.node == request.server:
            self.sim.schedule_us(costs.manager_us, at_server)
        else:
            self.network.send(proc.node, request.server,
                              costs.control_bytes,
                              lambda: self.sim.schedule_us(
                                  costs.manager_us, at_server))


class _Continuation:
    """A blocked process resuming mid-_ensure: queued like a process but
    resumes into a stored continuation instead of the generator."""

    __slots__ = ("proc", "fn")

    def __init__(self, proc: IvyProcess, fn):
        self.proc = proc
        self.fn = fn


def run_ivy(workload: Callable[[IvyCluster], List[IvyProcess]],
            nodes: int, cpus_per_node: int,
            costs: Optional[CostModel] = None,
            contended_network: bool = True) -> IvyCluster:
    """Build a cluster, let ``workload`` spawn its processes, run to
    completion, and return the cluster (time + stats inside)."""
    cluster = IvyCluster(nodes, cpus_per_node, costs, contended_network)
    workload(cluster)
    cluster.run()
    return cluster
