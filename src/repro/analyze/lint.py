"""Static AST lint for Amber concurrency idioms (``repro lint``).

Nine rules, covering the mistakes the simulator's sanitizer only
catches once a run trips over them:

==========  ============================================================
AMB101      lock/monitor acquired but not released on some path
AMB102      ``CondVar.wait`` called without holding a monitor/lock
AMB103      thread forked but never joined in the same function
AMB104      ``MoveTo`` of an object previously ``Attach``-ed to another
AMB105      blocking operation while holding a ``SpinLock``
AMB106      ``Barrier`` participant count can never match the number of
            threads forked in the same function
AMB107      the same thread handle joined twice
AMB108      ``Invoke``/``FastInvoke`` made while holding a ``SpinLock``
            (the spin burns a CPU for the whole remote round-trip)
AMB109      field written after the object was sealed with
            ``SetImmutable`` on a statically-reachable path
==========  ============================================================

Whole-program locality diagnostics (AMB201-AMB205) live in
:mod:`repro.analyze.flow.diagnostics` and share this module's finding
type and noqa machinery.

Both the simulator idiom (``yield Invoke(lock, "acquire")``) and the
live-runtime idiom (``lock.acquire()``) are recognized.  Suppress a
finding by putting ``# repro: noqa`` (all rules) or
``# repro: noqa[AMB101]`` on the offending line.

The path analysis is deliberately conservative: branches fork the
tracked held-set, a leak is only reported when a lock is held on
*every* live path at an exit (so ``if lock: acquire ... if lock:
release`` stays quiet), and loop bodies are explored zero-or-once.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

RULES: Dict[str, str] = {
    "AMB101": "lock acquired but not released on some path",
    "AMB102": "CondVar.wait outside its monitor",
    "AMB103": "thread forked/started but never joined",
    "AMB104": "MoveTo of an object Attach-ed to another",
    "AMB105": "blocking operation while holding a SpinLock",
    "AMB106": "Barrier parties never matches forked threads in scope",
    "AMB107": "thread handle joined twice",
    "AMB108": "Invoke while holding a SpinLock",
    "AMB109": "field written after SetImmutable sealed the object",
}

#: acquire-like method -> its release-like partner.
_PAIRS: Dict[str, str] = {
    "acquire": "release",
    "enter": "exit",
    "acquire_read": "release_read",
    "acquire_write": "release_write",
}
_RELEASES: Dict[str, str] = {v: k for k, v in _PAIRS.items()}

#: Call names that create a thread (sim syscall or live runtime).
_FORK_NAMES = {"Fork", "Start", "NewThread"}
_FORK_METHODS = {"fork", "start_thread"}
#: Call names that block the calling thread.
_BLOCK_NAMES = {"Join", "Suspend", "Sleep"}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")

#: Cap on tracked path states per program point (beyond it, states are
#: merged pairwise — analysis stays sound for must-held checks).
_MAX_STATES = 32


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class _SyncCall:
    """One recognized synchronization-ish call inside a statement."""

    key: str            # normalized receiver expression
    method: str
    line: int
    blocking: bool
    #: True for a generic ``Invoke``/``FastInvoke`` (a potentially
    #: remote data invocation, not a recognized sync operation).
    remote: bool = False


_CTX_RE = re.compile(r",?\s*ctx=(Load|Store|Del)\(\)")


def _expr_key(node: ast.AST) -> str:
    """Stable identity for a receiver expression (``lock``,
    ``self.lock``, ``locks[0]`` ...), load/store agnostic."""
    return _CTX_RE.sub("", ast.dump(node))


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _call_method(call: ast.Call) -> Optional[Tuple[ast.AST, str]]:
    if isinstance(call.func, ast.Attribute):
        return call.func.value, call.func.attr
    return None


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _Types:
    """Best-effort local type inference: which expressions name a
    CondVar or a SpinLock?  Sources: ``x = CondVar(...)``,
    ``x = yield New(CondVar, ...)``, and ``x: CondVar`` annotations
    (parameters included)."""

    def __init__(self) -> None:
        self.by_key: Dict[str, str] = {}

    def learn_function(self, fn: ast.AST) -> None:
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                name = self._annotation_name(arg.annotation)
                if name:
                    self.by_key[_expr_key(
                        ast.Name(id=arg.arg, ctx=ast.Load()))] = name
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                cls = self._constructed_class(node.value)
                if cls:
                    self.by_key[_expr_key(node.targets[0])] = cls
            elif isinstance(node, ast.AnnAssign):
                name = self._annotation_name(node.annotation)
                if name:
                    self.by_key[_expr_key(node.target)] = name

    @staticmethod
    def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
        if isinstance(annotation, ast.Name) and annotation.id in (
                "CondVar", "SpinLock"):
            return annotation.id
        return None

    @staticmethod
    def _constructed_class(value: ast.AST) -> Optional[str]:
        # x = CondVar(...)
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in ("CondVar", "SpinLock"):
                return name
            # x = yield New(CondVar, ...) arrives as Yield below.
        if isinstance(value, ast.Yield) and isinstance(
                value.value, ast.Call):
            call = value.value
            if _call_name(call) == "New" and call.args:
                first = call.args[0]
                if isinstance(first, ast.Name) and first.id in (
                        "CondVar", "SpinLock"):
                    return first.id
        return None

    def of(self, key: str) -> Optional[str]:
        return self.by_key.get(key)


def _sync_calls(stmt: ast.stmt, types: _Types) -> List[_SyncCall]:
    """All recognized sync/blocking calls in a statement, in source
    order (compound statements contribute only their own headers)."""
    calls: List[_SyncCall] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                _classify(child)
            visit(child)

    def _classify(call: ast.Call) -> None:
        name = _call_name(call)
        if name in ("Invoke", "FastInvoke") and len(call.args) >= 2:
            method = _const_str(call.args[1])
            if method is None:
                return
            if method in _PAIRS or method in _RELEASES or method in (
                    "wait", "join"):
                _add(call.args[0], method, call.lineno)
            else:
                calls.append(_SyncCall(_expr_key(call.args[0]), method,
                                       call.lineno, False, remote=True))
            return
        if name in _BLOCK_NAMES:
            calls.append(_SyncCall("", name, call.lineno, True))
            return
        attr = _call_method(call)
        if attr is not None:
            target, method = attr
            _add(target, method, call.lineno)

    def _add(target: ast.AST, method: str, line: int) -> None:
        if method in _PAIRS or method in _RELEASES or method in (
                "wait", "join"):
            blocking = method in _PAIRS or method in ("wait", "join")
            calls.append(_SyncCall(_expr_key(target), method, line,
                                   blocking))

    # Only look at the statement's own expressions, not nested blocks.
    if isinstance(stmt, (ast.If, ast.While)):
        visit(stmt.test)
    elif isinstance(stmt, ast.For):
        visit(stmt.iter)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        pass
    elif isinstance(stmt, ast.With):
        for item in stmt.items:
            visit(item.context_expr)
    elif isinstance(stmt, ast.Try):
        pass
    else:
        visit(stmt)
    return calls


class _FunctionLinter:
    """Path-sensitive held-set walk over one function body."""

    def __init__(self, fn: ast.AST, path: str, types: _Types) -> None:
        self.fn = fn
        self.path = path
        self.types = types
        self.findings: List[LintFinding] = []
        self._seen: Set[Tuple[str, int]] = set()
        #: held key -> (line, pretty receiver) of its first acquisition.
        self.acquire_sites: Dict[str, Tuple[int, str]] = {}

    # -- reporting ------------------------------------------------------

    def report(self, rule: str, line: int, message: str) -> None:
        if (rule, line) in self._seen:
            return
        self._seen.add((rule, line))
        self.findings.append(LintFinding(self.path, line, rule, message))

    # -- the walk -------------------------------------------------------

    def run(self) -> List[LintFinding]:
        body = list(getattr(self.fn, "body", []))
        final_states = self._walk(body, {frozenset()})
        self._check_exit(final_states,
                         getattr(self.fn, "end_lineno", 0) or 0,
                         "at function exit")
        self._scan_forks(body)
        self._scan_moves(body)
        self._scan_barriers(body)
        self._scan_joins(body)
        self._scan_immutables(body)
        return self.findings

    def _walk(self, stmts: List[ast.stmt],
              states: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
        live = set(states)
        for stmt in stmts:
            if not live:
                break
            nxt: Set[FrozenSet[str]] = set()
            for state in live:
                nxt |= self._step(stmt, state, live)
            live = self._limit(nxt)
        return live

    @staticmethod
    def _limit(states: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
        if len(states) <= _MAX_STATES:
            return states
        merged: FrozenSet[str] = frozenset()
        for state in states:
            merged |= state
        return {merged}

    def _step(self, stmt: ast.stmt, state: FrozenSet[str],
              siblings: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
        if isinstance(stmt, ast.If):
            state = self._apply_calls(stmt, state, siblings)
            return (self._walk(stmt.body, {state})
                    | self._walk(stmt.orelse, {state}))
        if isinstance(stmt, (ast.While, ast.For)):
            state = self._apply_calls(stmt, state, siblings)
            once = self._walk(stmt.body, {state})
            return once | {state} | self._walk(stmt.orelse, once | {state})
        if isinstance(stmt, ast.Try):
            outcomes = self._walk(stmt.body, {state})
            for handler in stmt.handlers:
                outcomes |= self._walk(handler.body, outcomes | {state})
            outcomes = self._walk(stmt.orelse, outcomes)
            if stmt.finalbody:
                outcomes = self._walk(stmt.finalbody, outcomes)
            return outcomes
        if isinstance(stmt, ast.With):
            state = self._apply_calls(stmt, state, siblings)
            return self._walk(stmt.body, {state})
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return {state}
        if isinstance(stmt, ast.Return):
            state = self._apply_calls(stmt, state, siblings)
            self._check_exit({state}, stmt.lineno,
                             f"before the return at line {stmt.lineno}",
                             siblings)
            return set()
        if isinstance(stmt, ast.Raise):
            # Raising with a lock held is the caller's cleanup problem;
            # AMB101 stays quiet here to avoid noise on error paths.
            return set()
        return {self._apply_calls(stmt, state, siblings)}

    def _apply_calls(self, stmt: ast.stmt, state: FrozenSet[str],
                     siblings: Set[FrozenSet[str]]) -> FrozenSet[str]:
        held = set(state)
        for call in _sync_calls(stmt, self.types):
            if call.method in _PAIRS and call.key:
                self._check_spin_block(call, held)
                held.add(call.key)
                self.acquire_sites.setdefault(
                    call.key, (call.line, _pretty_key(call.key)))
            elif call.method in _RELEASES and call.key:
                held.discard(call.key)
            elif call.method == "wait":
                self._check_wait(call, held, siblings)
                self._check_spin_block(call, held)
            elif call.remote:
                self._check_spin_invoke(call, held)
            elif call.blocking:
                self._check_spin_block(call, held)
        return frozenset(held)

    # -- rule bodies ----------------------------------------------------

    def _check_exit(self, states: Set[FrozenSet[str]], line: int,
                    where: str,
                    siblings: Optional[Set[FrozenSet[str]]] = None
                    ) -> None:
        """AMB101: a key held on *every* live path at an exit leaked.

        At an explicit ``return``, a key counts as leaked only if every
        sibling path (states live at the same program point) also holds
        it — an acquire and its release guarded by the same condition
        stay quiet."""
        if not states:
            return
        must = None
        for state in states:
            must = state if must is None else (must & state)
        if siblings:
            for state in siblings:
                must &= state
        for key in sorted(must or ()):
            site_line, pretty = self.acquire_sites.get(key, (line, key))
            self.report("AMB101", site_line,
                        f"'{pretty}' acquired here is still held "
                        f"{where}")

    def _check_wait(self, call: _SyncCall, held: Set[str],
                    siblings: Set[FrozenSet[str]]) -> None:
        """AMB102: waiting on a CondVar without any lock/monitor held."""
        if self.types.of(call.key) != "CondVar":
            return
        if held:
            return
        if any(len(state) for state in siblings):
            # Some sibling path holds a lock; only flag when *no*
            # path holds anything.
            return
        self.report("AMB102", call.line,
                    f"CondVar.wait on '{_pretty_key(call.key)}' "
                    f"without holding its monitor")

    def _check_spin_block(self, call: _SyncCall, held: Set[str]) -> None:
        """AMB105: blocking while a SpinLock is held burns a CPU for
        the whole wait."""
        if not call.blocking:
            return
        spins = [key for key in held
                 if self.types.of(key) == "SpinLock" and
                 key != call.key]
        if not spins:
            return
        self.report("AMB105", call.line,
                    f"blocking call '{call.method}' while holding "
                    f"SpinLock '{_pretty_key(sorted(spins)[0])}'")

    def _check_spin_invoke(self, call: _SyncCall,
                           held: Set[str]) -> None:
        """AMB108: a data invocation while a SpinLock is held.  The
        invocation may ship the thread across the network; every other
        CPU contending for the lock spins for the whole round-trip."""
        spins = [key for key in held
                 if self.types.of(key) == "SpinLock" and
                 key != call.key]
        if not spins:
            return
        self.report("AMB108", call.line,
                    f"Invoke('{call.method}') while holding SpinLock "
                    f"'{_pretty_key(sorted(spins)[0])}'; contenders "
                    f"spin for the whole remote round-trip")

    def _scan_forks(self, body: List[ast.stmt]) -> None:
        """AMB103: forked threads with no join anywhere in the
        function."""
        fork_line: Optional[int] = None
        fork_what = ""
        joined = False
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            attr = _call_method(node)
            if name in _FORK_NAMES or (
                    attr is not None and attr[1] in _FORK_METHODS):
                if fork_line is None:
                    fork_line = node.lineno
                    fork_what = name or attr[1]
            if name == "Join" or (attr is not None and
                                  attr[1] == "join"):
                joined = True
            if name in ("Invoke", "FastInvoke") and len(node.args) >= 2:
                if _const_str(node.args[1]) == "join":
                    joined = True
        if fork_line is not None and not joined:
            self.report("AMB103", fork_line,
                        f"thread created by '{fork_what}' is never "
                        f"joined in this function")

    def _scan_moves(self, body: List[ast.stmt]) -> None:
        """AMB104: moving an attached member breaks co-residency (the
        attachment silently drags it back, or worse, was the point)."""
        attached: Dict[str, int] = {}
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "Attach" and len(node.args) >= 2:
                attached.setdefault(_expr_key(node.args[0]), node.lineno)
            elif name == "MoveTo" and node.args:
                key = _expr_key(node.args[0])
                if key in attached and node.lineno > attached[key]:
                    self.report(
                        "AMB104", node.lineno,
                        f"MoveTo of '{_pretty_key(key)}', which was "
                        f"Attach-ed at line {attached[key]}; move the "
                        f"attachment owner instead")

    def _scan_barriers(self, body: List[ast.stmt]) -> None:
        """AMB106: a Barrier built with a constant party count that can
        never be satisfied by the threads forked in this function.

        Only fires when every fork site is statically countable (loop
        trip counts resolvable, no forks under conditionals) and at
        least one thread is forked; the count may match either the
        forked threads alone or forked threads plus the forking thread
        itself (the common SOR master-participates idiom)."""
        barriers: List[Tuple[int, int]] = []
        for node in _walk_own(body):
            if isinstance(node, ast.Call):
                parties = _barrier_parties(node)
                if parties is not None:
                    barriers.append((node.lineno, parties))
        if not barriers:
            return
        forks = _count_forks(body)
        if not forks:       # zero forked or not statically countable
            return
        for line, parties in barriers:
            if parties not in (forks, forks + 1):
                self.report(
                    "AMB106", line,
                    f"Barrier({parties}) can never be satisfied: "
                    f"{forks} thread(s) forked in this function "
                    f"(expected {forks}, or {forks + 1} when the "
                    f"forking thread participates)")

    def _scan_immutables(self, body: List[ast.stmt]) -> None:
        """AMB109: a field written after the object was sealed with
        ``SetImmutable`` on a statically-reachable path — the write
        traps at run time if the object is resident, or silently
        diverges replicas if it already replicated.

        Same conservative position tracking as AMB104: a write counts
        as "after" the seal when its line follows the seal's line
        within the function (both the sim syscall ``SetImmutable(x)``
        and the live-runtime ``cluster.set_immutable(x)`` seal)."""
        sealed: Dict[str, int] = {}
        writes: List[Tuple[str, int, str]] = []
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                attr = _call_method(node)
                if name == "SetImmutable" and node.args:
                    sealed.setdefault(_expr_key(node.args[0]),
                                      node.lineno)
                elif (attr is not None and attr[1] == "set_immutable"
                        and node.args):
                    sealed.setdefault(_expr_key(node.args[0]),
                                      node.lineno)
                continue
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                elts = (target.elts if isinstance(
                    target, (ast.Tuple, ast.List)) else [target])
                for elt in elts:
                    if isinstance(elt, ast.Attribute):
                        writes.append((_expr_key(elt.value),
                                       node.lineno, elt.attr))
        for key, line, field_name in writes:
            if key in sealed and line > sealed[key]:
                self.report(
                    "AMB109", line,
                    f"write to '{_pretty_key(key)}.{field_name}' "
                    f"after SetImmutable at line {sealed[key]} "
                    f"sealed the object")

    def _scan_joins(self, body: List[ast.stmt]) -> None:
        """AMB107: a thread handle joined twice — the second join hangs
        forever in the live runtime (the thread is already gone)."""
        self._join_walk(body, {}, {})

    def _join_walk(self, stmts: List[ast.stmt],
                   handles: Dict[str, int],
                   joined: Dict[str, int]) -> Dict[str, int]:
        """Statement-order walk tracking fork-produced handles and the
        line of each handle's first join; returns the definitely-joined
        map at the end of the block.  Branch joins merge by
        intersection (a join on only one path is not a sure first
        join); loop bodies run twice so a join inside a loop over an
        outer handle sees its own first pass."""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for key, line in _join_targets(stmt):
                if key not in handles:
                    continue
                if key in joined:
                    self.report(
                        "AMB107", line,
                        f"thread handle '{_pretty_key(key)}' joined "
                        f"again (first joined at line {joined[key]}); "
                        f"the second join waits forever")
                else:
                    joined[key] = line
            for key, fork_line in _handle_assignments(stmt):
                if fork_line:
                    handles[key] = fork_line
                else:
                    handles.pop(key, None)
                joined.pop(key, None)
            if isinstance(stmt, ast.If):
                branch_a = self._join_walk(stmt.body, handles,
                                           dict(joined))
                branch_b = self._join_walk(stmt.orelse, handles,
                                           dict(joined))
                joined = {key: line
                          for key, line in branch_a.items()
                          if key in branch_b}
            elif isinstance(stmt, (ast.For, ast.While)):
                if isinstance(stmt, ast.For):
                    for target in ast.walk(stmt.target):
                        if isinstance(target, (ast.Name, ast.Attribute)):
                            handles.pop(_expr_key(target), None)
                            joined.pop(_expr_key(target), None)
                once = self._join_walk(stmt.body, handles, dict(joined))
                self._join_walk(stmt.body, handles, dict(once))
                self._join_walk(stmt.orelse, handles, dict(joined))
            elif isinstance(stmt, ast.Try):
                outcome = self._join_walk(stmt.body, handles,
                                          dict(joined))
                for handler in stmt.handlers:
                    self._join_walk(handler.body, handles, dict(joined))
                outcome = self._join_walk(stmt.orelse, handles, outcome)
                joined = self._join_walk(stmt.finalbody, handles,
                                         outcome)
            elif isinstance(stmt, ast.With):
                joined = self._join_walk(stmt.body, handles, joined)
        return joined


def _own_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The statement's own expressions: everything for a simple
    statement, only the header for a compound one."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef, ast.Try)):
        return []
    return [stmt]


def _walk_own(body: List[ast.stmt]) -> Iterable[ast.AST]:
    """Walk every node in ``body`` except nested function/class
    bodies (they are linted as their own scopes)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_fork_call(call: ast.Call) -> bool:
    if _call_name(call) in _FORK_NAMES:
        return True
    attr = _call_method(call)
    return attr is not None and attr[1] in _FORK_METHODS


def _barrier_parties(call: ast.Call) -> Optional[int]:
    """Constant party count of a ``Barrier(N)`` / ``New(Barrier, N)``
    construction, or None when not a barrier or not constant."""
    name = _call_name(call)
    if name == "Barrier":
        args = list(call.args)
    elif (name == "New" and call.args
          and isinstance(call.args[0], ast.Name)
          and call.args[0].id == "Barrier"):
        args = list(call.args[1:])
    else:
        return None
    candidates = args[:1] + [kw.value for kw in call.keywords
                             if kw.arg == "parties"]
    for node in candidates:
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool)):
            return node.value
    return None


def _range_len(node: ast.AST) -> Optional[int]:
    """Trip count of a ``range(...)`` call with constant bounds."""
    if not (isinstance(node, ast.Call) and _call_name(node) == "range"):
        return None
    bounds: List[int] = []
    for arg in node.args:
        if (isinstance(arg, ast.Constant)
                and isinstance(arg.value, int)
                and not isinstance(arg.value, bool)):
            bounds.append(arg.value)
        else:
            return None
    if len(bounds) == 1:
        return max(0, bounds[0])
    if len(bounds) == 2:
        return max(0, bounds[1] - bounds[0])
    if len(bounds) == 3 and bounds[2] != 0:
        step = bounds[2]
        span = (bounds[1] - bounds[0]) if step > 0 \
            else (bounds[0] - bounds[1])
        return max(0, -(-span // abs(step)))
    return None


def _count_forks(stmts: List[ast.stmt]) -> Optional[int]:
    """Statically-known number of threads forked by ``stmts``; None
    when any fork site is uncountable (variable trip count, fork under
    a conditional or exception handler, unequal branches)."""
    total = 0
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        own = 0
        for expr in _own_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call) and _is_fork_call(node):
                    own += 1
        if isinstance(stmt, ast.For):
            inner = _count_forks(stmt.body)
            tail = _count_forks(stmt.orelse)
            if inner is None or tail is None:
                return None
            if inner:
                mult = _range_len(stmt.iter)
                if mult is None:
                    return None
                inner *= mult
            total += own + inner + tail
        elif isinstance(stmt, ast.While):
            inner = _count_forks(stmt.body)
            if inner is None or inner:
                return None
            total += own
        elif isinstance(stmt, ast.If):
            then = _count_forks(stmt.body)
            alt = _count_forks(stmt.orelse)
            if then is None or alt is None or then != alt:
                return None
            total += own + then
        elif isinstance(stmt, ast.Try):
            parts = [_count_forks(stmt.body),
                     _count_forks(stmt.orelse),
                     _count_forks(stmt.finalbody)]
            if any(part is None for part in parts):
                return None
            for handler in stmt.handlers:
                inside = _count_forks(handler.body)
                if inside is None or inside:
                    return None
            total += own + sum(part or 0 for part in parts)
        elif isinstance(stmt, ast.With):
            inner = _count_forks(stmt.body)
            if inner is None:
                return None
            total += own + inner
        else:
            total += own
    return total


def _join_targets(stmt: ast.stmt) -> List[Tuple[str, int]]:
    """Receiver keys of every join in the statement's own expressions,
    in source order: ``Join(t)``, ``Invoke(t, "join")``, ``t.join()``."""
    out: List[Tuple[str, int]] = []

    def classify(call: ast.Call) -> None:
        name = _call_name(call)
        if name == "Join" and call.args:
            out.append((_expr_key(call.args[0]), call.lineno))
            return
        if name in ("Invoke", "FastInvoke") and len(call.args) >= 2 \
                and _const_str(call.args[1]) == "join":
            out.append((_expr_key(call.args[0]), call.lineno))
            return
        attr = _call_method(call)
        if attr is not None and attr[1] == "join":
            out.append((_expr_key(attr[0]), call.lineno))

    for expr in _own_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                classify(node)
    return out


def _handle_assignments(stmt: ast.stmt) -> List[Tuple[str, int]]:
    """Assignment targets of this statement: ``(key, fork line)`` when
    the assigned value forks a thread, ``(key, 0)`` for any other
    reassignment (which retires the old handle)."""
    pairs: List[Tuple[ast.expr, ast.expr]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            pairs.append((target, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        pairs.append((stmt.target, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        pairs.append((stmt.target, stmt.value))
    out: List[Tuple[str, int]] = []
    for target, value in pairs:
        fork_line = 0
        for node in ast.walk(value):
            if isinstance(node, ast.Call) and _is_fork_call(node):
                fork_line = node.lineno
                break
        targets: List[ast.expr] = [target]
        if isinstance(target, (ast.Tuple, ast.List)):
            targets = list(target.elts)
            fork_line = 0   # cannot tell which element got the handle
        for tgt in targets:
            if isinstance(tgt, (ast.Name, ast.Attribute)):
                out.append((_expr_key(tgt), fork_line))
    return out


_NAME_RE = re.compile(r"Name\(id='([^']+)'")
_ATTR_RE = re.compile(r"Attribute\(value=Name\(id='([^']+)'.*?"
                      r"attr='([^']+)'")


def _pretty_key(key: str) -> str:
    match = _ATTR_RE.match(key)
    if match:
        return f"{match.group(1)}.{match.group(2)}"
    match = _NAME_RE.match(key)
    if match:
        return match.group(1)
    return "<expr>"


def _noqa_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> None (suppress all) or the set of suppressed rules."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip() for r in rules.split(",")
                           if r.strip()}
    return out


def filter_noqa(findings: Iterable[LintFinding],
                source: str) -> List[LintFinding]:
    """Drop findings suppressed by ``# repro: noqa`` comments in the
    source they were reported against, sorted by position.  Shared by
    the lint pass and the AmberFlow diagnostics."""
    noqa = _noqa_lines(source)
    kept = []
    for finding in findings:
        suppressed = noqa.get(finding.line, ...)
        if suppressed is None:
            continue
        if isinstance(suppressed, set) and finding.rule in suppressed:
            continue
        kept.append(finding)
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule))


def lint_source(source: str, path: str = "<string>"
                ) -> List[LintFinding]:
    """Lint one module's source text; returns findings sorted by
    position."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, "AMB000",
                            f"syntax error: {exc.msg}")]
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        types = _Types()
        types.learn_function(node)
        findings.extend(_FunctionLinter(node, path, types).run())
    return filter_noqa(findings, source)


def lint_paths(paths: Iterable[str]) -> List[LintFinding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[LintFinding] = []
    for entry in paths:
        root = Path(entry)
        files = ([root] if root.is_file()
                 else sorted(root.rglob("*.py")))
        for file in files:
            try:
                source = file.read_text()
            except OSError as exc:
                findings.append(LintFinding(str(file), 0, "AMB000",
                                            f"unreadable: {exc}"))
                continue
            findings.extend(lint_source(source, str(file)))
    return findings
