"""AmberSan: concurrency-correctness analysis for Amber programs.

Three cooperating tools (see ``docs/ANALYSIS.md``):

* :mod:`repro.analyze.sanitizer` — a dynamic happens-before race
  sanitizer over simulated runs (vector clocks + per-field shadow
  state), reporting unsynchronized access to shared mutable objects,
  writes to ``immutable``-marked objects, and direct touches of
  non-resident state.
* :mod:`repro.analyze.lint` — a static AST lint (``repro lint``) for
  the concurrency idioms of the Amber programming model.
* :mod:`repro.analyze.lockorder` — a runtime lock-order graph whose
  cycle report predicts deadlocks even on runs that did not deadlock,
  plus the wait-for cycle report behind :class:`DeadlockError`.
* :mod:`repro.analyze.check` — AmberCheck (``repro check``): a
  stateless model checker that re-executes a bounded program through
  every relevantly-distinct thread schedule (dynamic partial-order
  reduction over recorded scheduling choices), running the sanitizer
  in each and reporting schedule-dependent races, deadlocks, and
  terminal-state divergences with minimal replayable choice traces.
* :mod:`repro.analyze.flow` — AmberFlow (``repro flow``): a
  whole-program object-flow and locality analysis that derives a
  deterministic :class:`PlacementHints` artifact for
  :class:`repro.placement.policies.HintedPlacement`, emits the
  AMB201-AMB205 locality diagnostics, and cross-validates its
  predictions against simulator runs of the bundled apps.

The subsystem is enabled per run (``AmberProgram(..., sanitize=True)``,
``--sanitize`` on the CLI, or :func:`repro.analyze.runtime.sanitize_runs`)
and is entirely passive: it schedules no simulator events, charges no
costs, and consumes no PRNG draws, so sanitized runs are bit-identical
to unsanitized ones.
"""

from __future__ import annotations

from typing import Any

_LAZY = {
    "Sanitizer": ("repro.analyze.sanitizer", "Sanitizer"),
    "SanitizerReport": ("repro.analyze.sanitizer", "SanitizerReport"),
    "Finding": ("repro.analyze.sanitizer", "Finding"),
    "VectorClock": ("repro.analyze.hb", "VectorClock"),
    "LockOrderGraph": ("repro.analyze.lockorder", "LockOrderGraph"),
    "lint_paths": ("repro.analyze.lint", "lint_paths"),
    "lint_source": ("repro.analyze.lint", "lint_source"),
    "LintFinding": ("repro.analyze.lint", "LintFinding"),
    "RULES": ("repro.analyze.lint", "RULES"),
    "sanitize_runs": ("repro.analyze.runtime", "sanitize_runs"),
    "run_analysis_scenarios": ("repro.analyze.scenario",
                               "run_analysis_scenarios"),
    "check_program": ("repro.analyze.check", "check_program"),
    "run_schedule": ("repro.analyze.check", "run_schedule"),
    "CheckReport": ("repro.analyze.check", "CheckReport"),
    "CheckFinding": ("repro.analyze.check", "CheckFinding"),
    "ChoiceController": ("repro.analyze.check", "ChoiceController"),
    "sample_random_schedules": ("repro.analyze.check",
                                "sample_random_schedules"),
    "run_check_scenarios": ("repro.analyze.checkscenario",
                            "run_check_scenarios"),
    "CHECK_FIXTURES": ("repro.analyze.checkscenario",
                       "CHECK_FIXTURES"),
    "FLOW_RULES": ("repro.analyze.flow", "FLOW_RULES"),
    "flow_diagnostics": ("repro.analyze.flow", "flow_diagnostics"),
    "FlowModel": ("repro.analyze.flow", "FlowModel"),
    "scan_paths": ("repro.analyze.flow", "scan_paths"),
    "scan_sources": ("repro.analyze.flow", "scan_sources"),
    "Hint": ("repro.analyze.flow", "Hint"),
    "PlacementHints": ("repro.analyze.flow", "PlacementHints"),
    "derive_hints": ("repro.analyze.flow", "derive_hints"),
    "load_hints": ("repro.analyze.flow", "load_hints"),
    "FlowReport": ("repro.analyze.flow", "FlowReport"),
    "run_flow_scenarios": ("repro.analyze.flow",
                           "run_flow_scenarios"),
}

__all__ = sorted(_LAZY)


def __getattr__(name: str) -> Any:
    """Lazy exports: keep ``import repro.analyze.runtime`` (done by the
    simulator's hot modules) from dragging in the whole subsystem."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
