"""Lock-order deadlock prediction and wait-for cycle reporting.

Two complementary views of the same hazard:

* :class:`LockOrderGraph` — fed by the sanitizer at every mutex/monitor
  acquisition: an edge ``A -> B`` means some thread acquired ``B`` while
  holding ``A``.  A cycle is a *potential* deadlock — reported with the
  threads, lock objects, and acquisition sites involved, even when the
  observed run happened not to interleave fatally.
* :func:`describe_wait_cycles` — a structural wait-for analysis of a
  *stalled* simulation (who is blocked on whose lock/monitor/join),
  used by :class:`repro.errors.DeadlockError` to replace the old
  "likely deadlock" guess with the actual cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Site:
    """A source location inside a simulated operation."""

    file: str
    line: int
    where: str

    def __str__(self) -> str:
        name = self.file.rsplit("/", 1)[-1]
        return f"{name}:{self.line} in {self.where}"


@dataclass
class OrderEdge:
    """``thread`` acquired ``dst`` while holding ``src`` (at least once)."""

    src_vaddr: int
    dst_vaddr: int
    src_cls: str
    dst_cls: str
    thread: str
    held_site: Optional[Site]
    acquire_site: Optional[Site]
    count: int = 1

    def describe(self) -> str:
        held = f" (held since {self.held_site})" if self.held_site else ""
        acq = f" at {self.acquire_site}" if self.acquire_site else ""
        return (f"thread {self.thread} acquired {self.dst_cls} "
                f"{self.dst_vaddr:#x}{acq} while holding {self.src_cls} "
                f"{self.src_vaddr:#x}{held}")


@dataclass
class LockCycle:
    """One lock-order cycle: the edges, in order, closing on themselves."""

    edges: List[OrderEdge]

    @property
    def vaddrs(self) -> List[int]:
        return [edge.src_vaddr for edge in self.edges]

    @property
    def threads(self) -> List[str]:
        seen: List[str] = []
        for edge in self.edges:
            if edge.thread not in seen:
                seen.append(edge.thread)
        return seen

    def render(self) -> str:
        ring = " -> ".join(f"{e.src_cls} {e.src_vaddr:#x}"
                           for e in self.edges)
        first = self.edges[0]
        lines = [f"potential deadlock: lock-order cycle {ring} -> "
                 f"{first.src_cls} {first.src_vaddr:#x}"]
        for edge in self.edges:
            lines.append(f"  {edge.describe()}")
        return "\n".join(lines)


class LockOrderGraph:
    """Directed graph over lock addresses, one edge per observed
    held-while-acquiring pair (first occurrence wins the sites)."""

    def __init__(self) -> None:
        self._edges: Dict[Tuple[int, int], OrderEdge] = {}
        self._adj: Dict[int, Set[int]] = {}

    def record(self, src_vaddr: int, dst_vaddr: int, src_cls: str,
               dst_cls: str, thread: str, held_site: Optional[Site],
               acquire_site: Optional[Site]) -> None:
        key = (src_vaddr, dst_vaddr)
        edge = self._edges.get(key)
        if edge is not None:
            edge.count += 1
            return
        self._edges[key] = OrderEdge(src_vaddr, dst_vaddr, src_cls,
                                     dst_cls, thread, held_site,
                                     acquire_site)
        self._adj.setdefault(src_vaddr, set()).add(dst_vaddr)

    @property
    def edges(self) -> List[OrderEdge]:
        return [self._edges[key] for key in sorted(self._edges)]

    def cycles(self) -> List[LockCycle]:
        """One representative cycle per strongly connected component
        with a cycle in it (deterministic order)."""
        out: List[LockCycle] = []
        for component in self._sccs():
            cycle = self._cycle_in(component)
            if cycle is not None:
                out.append(cycle)
        return out

    def render_cycles(self) -> List[str]:
        return [cycle.render() for cycle in self.cycles()]

    # ------------------------------------------------------------------

    def _nodes(self) -> List[int]:
        nodes: Set[int] = set(self._adj)
        for targets in self._adj.values():
            nodes |= targets
        return sorted(nodes)

    def _sccs(self) -> List[List[int]]:
        """Tarjan's SCC algorithm, iterative, deterministic order.
        Only components that can contain a cycle are returned."""
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = [0]
        sccs: List[List[int]] = []

        def targets(node: int) -> List[int]:
            return sorted(self._adj.get(node, ()))

        for root in self._nodes():
            if root in index:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child_i = work.pop()
                if child_i == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                children = targets(node)
                advanced = False
                for i in range(child_i, len(children)):
                    child = children[i]
                    if child not in index:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                if low[node] == index[node]:
                    component: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    has_self = node in self._adj.get(node, ())
                    if len(component) > 1 or has_self:
                        sccs.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs

    def _cycle_in(self, component: List[int]) -> Optional[LockCycle]:
        """Walk edges inside ``component`` from its smallest node until
        it closes; every node of an SCC lies on some cycle."""
        members = set(component)
        start = component[0]
        path = [start]
        seen = {start}
        node = start
        while True:
            next_nodes = [n for n in sorted(self._adj.get(node, ()))
                          if n in members]
            if not next_nodes:
                return None  # pragma: no cover - SCC guarantees an edge
            nxt = next((n for n in next_nodes if n == start), None)
            if nxt is None:
                nxt = next((n for n in next_nodes if n not in seen),
                           next_nodes[0])
            if nxt == start:
                edges = [self._edges[(path[i], path[i + 1])]
                         for i in range(len(path) - 1)]
                edges.append(self._edges[(path[-1], start)])
                return LockCycle(edges)
            if nxt in seen:
                # Trim the path to the inner cycle through ``nxt``.
                at = path.index(nxt)
                inner = path[at:]
                edges = [self._edges[(inner[i], inner[i + 1])]
                         for i in range(len(inner) - 1)]
                edges.append(self._edges[(node, nxt)])
                return LockCycle(edges)
            path.append(nxt)
            seen.add(nxt)
            node = nxt


# ---------------------------------------------------------------------------
# Wait-for analysis of a stalled run (DeadlockError upgrade)
# ---------------------------------------------------------------------------


@dataclass
class _Wait:
    waiter: Any          # SimThread
    holder: Any          # SimThread
    via: str             # human description of the edge


def describe_wait_cycles(kernel: Any) -> List[str]:
    """Render the wait-for cycles of a stalled simulation.

    Edges: a thread parked in ``Lock.acquire``/``Monitor.enter`` waits
    for the current owner; a joiner waits for its join target.  The
    returned lines are empty when no cycle exists (the stall has another
    cause, e.g. a lost wakeup).  When a sanitizer observed the run, each
    held lock is annotated with its acquisition site.
    """
    san = getattr(kernel.cluster, "sanitizer", None)
    waits: Dict[int, List[_Wait]] = {}
    threads: Dict[int, Any] = {t.tid: t for t in kernel.threads}

    for vaddr in sorted(kernel.cluster.objects):
        obj = kernel.cluster.objects[vaddr]
        owner = getattr(obj, "_owner", None)
        waiters = getattr(obj, "_waiters", None)
        if owner is None or not waiters:
            continue
        site = None
        if san is not None:
            site = san.held_site(owner.tid, vaddr)
        held = f", acquired at {site}" if site is not None else ""
        via = (f"{type(obj).__name__} {vaddr:#x} held by "
               f"{owner.name}{held}")
        for waiter in waiters:
            waits.setdefault(waiter.tid, []).append(
                _Wait(waiter, owner, via))
    for target in kernel.threads:
        for joiner in target.joiners:
            waits.setdefault(joiner.tid, []).append(
                _Wait(joiner, target, f"join of {target.name}"))

    cycle = _find_thread_cycle(waits, threads)
    if cycle is None:
        return []
    lines = ["wait-for cycle detected:"]
    for wait in cycle:
        lines.append(f"  thread {wait.waiter.name} waits on {wait.via}")
    return lines


def _find_thread_cycle(waits: Dict[int, List[_Wait]],
                       threads: Dict[int, Any]) -> Optional[List[_Wait]]:
    """DFS over the wait-for multigraph; first cycle found wins
    (iteration order is deterministic)."""
    for start in sorted(waits):
        path: List[_Wait] = []
        on_path: List[int] = [start]
        found = _dfs_cycle(start, waits, path, on_path, set())
        if found is not None:
            return found
    return None


def _dfs_cycle(tid: int, waits: Dict[int, List[_Wait]],
               path: List[_Wait], on_path: List[int],
               dead: Set[int]) -> Optional[List[_Wait]]:
    for wait in waits.get(tid, ()):
        holder = wait.holder.tid
        if holder in on_path:
            at = on_path.index(holder)
            return path[at:] + [wait]
        if holder in dead:
            continue
        path.append(wait)
        on_path.append(holder)
        found = _dfs_cycle(holder, waits, path, on_path, dead)
        if found is not None:
            return found
        path.pop()
        on_path.pop()
    dead.add(tid)
    return None
