"""AmberElide: static escape/confinement analysis with verified elision.

The pass classifies, on top of the AmberFlow object-flow model
(:mod:`repro.analyze.flow`):

* **thread-confined classes** — every instance is only ever reachable
  from the thread that created it (references never cross a
  ``Fork``/ctor-argument/shared-field boundary),
* **effectively-immutable classes** — no field writes outside
  ``__init__``, and
* **elidable lock sites** — ``Lock``/``SpinLock``/``Monitor`` creations
  whose instances only guard confined or immutable state or are only
  reachable from one thread.

The result is a deterministic, sha256-fingerprinted ``amberelide/1``
artifact (:mod:`repro.analyze.elide.artifact`) that the runtime
consumes: the sync objects elide uncontended acquire/release of proven
locks (no scheduler event; simulated time is preserved via the
thread's surcharge accumulator), the sanitizer skips field
interposition for proven-confined/immutable classes, and the placement
hints promote effectively-immutable classes to ``replicate``.

Soundness is *verified*, not assumed — ``repro elide --verify`` runs
the fixture catalog and the bundled apps with elision active under an
auditing sanitizer and asserts zero cross-thread traffic on anything
the analysis elided (any violation is a hard ``AMBELIDE-UNSOUND``
finding) and bit-identical results with elision on vs. off.  See
docs/ANALYSIS.md.

This ``__init__`` deliberately imports nothing: the simulator's hot
paths import :mod:`repro.analyze.elide.runtime` (stdlib-only), and
pulling the analysis machinery in here would tax every simulated run.
"""
