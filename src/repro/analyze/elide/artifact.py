"""The deterministic ``amberelide/1`` artifact.

Same schema discipline as the AmberFlow ``amberflow-hints/1`` file:
the payload is canonical (sorted keys, sorted entries, nothing time-
or path-order-dependent), the fingerprint is a sha256 over the
canonical JSON encoding, and :func:`load_artifact` never raises — a
mangled file loads with a wrong ``schema`` and fails ``valid``.

Unlike the hints artifact, elision changes *runtime mechanism*, so
staleness is checked before activation: the artifact records a sha256
per analyzed source, and :meth:`ElideArtifact.activate` refuses (and
counts, via :func:`repro.analyze.elide.runtime.note_stale`) when the
sources on disk no longer match.  A stale artifact silently disables
elision; it never half-applies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.analyze.elide import runtime as _ert

#: Schema tag checked by consumers; bump on incompatible change.
ELIDE_SCHEMA = "amberelide/1"

_LOCK_KEYS = ("path", "line", "owner", "var", "cls", "elidable",
              "reason")


def source_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class ElideArtifact:
    """The elision facts derived from one analysis run."""

    schema: str
    #: Analyzed sources: path -> sha256 of the text that was analyzed.
    sources: Dict[str, str] = field(default_factory=dict)
    #: Thread-confined classes (sorted).
    confined: List[str] = field(default_factory=list)
    #: Effectively-immutable classes (sorted).
    immutable: List[str] = field(default_factory=list)
    #: Lock creation sites (sorted by path/line/var), each a dict with
    #: keys ``path line owner var cls elidable reason``.
    locks: List[Dict[str, Any]] = field(default_factory=list)

    # -- derived views ---------------------------------------------------

    @property
    def skip_classes(self) -> List[str]:
        """Classes whose field interposition may be skipped."""
        return sorted(set(self.confined) | set(self.immutable))

    @property
    def lock_owners(self) -> List[Tuple[str, str]]:
        """``(owner, lock_cls)`` pairs where *every* lock site of that
        owner and class is elidable — the all-sites rule keeps the
        runtime's per-creation marking sound at pair granularity."""
        verdict: Dict[Tuple[str, str], bool] = {}
        for lock in self.locks:
            key = (str(lock.get("owner", "")), str(lock.get("cls", "")))
            verdict[key] = verdict.get(key, True) \
                and bool(lock.get("elidable"))
        return sorted(key for key, ok in verdict.items() if ok)

    def to_elide_set(self) -> _ert.ElideSet:
        return _ert.ElideSet(
            skip_classes=frozenset(self.skip_classes),
            lock_owners=frozenset(self.lock_owners),
            confined=frozenset(self.confined),
            immutable=frozenset(self.immutable),
            fingerprint=self.fingerprint)

    # -- staleness -------------------------------------------------------

    def stale_sources(
            self,
            source_texts: Optional[Mapping[str, str]] = None
    ) -> List[str]:
        """Paths whose current text no longer matches the recorded
        sha256.  ``source_texts`` supplies in-memory texts (fixtures);
        otherwise the paths are read from disk.  Unreadable paths
        count as stale."""
        stale: List[str] = []
        for path, sha in sorted(self.sources.items()):
            if source_texts is not None:
                text = source_texts.get(path)
            else:
                try:
                    text = Path(path).read_text()
                except OSError:
                    text = None
            if text is None or source_sha(text) != sha:
                stale.append(path)
        return stale

    def activate(self,
                 source_texts: Optional[Mapping[str, str]] = None,
                 audit: bool = False) -> bool:
        """Activate this artifact's elision set for the process.

        Returns False — and bumps the stale counter — without
        activating anything when the artifact is invalid or any
        analyzed source changed since the analysis ran."""
        if not self.valid or self.stale_sources(source_texts):
            _ert.note_stale()
            return False
        _ert.activate(self.to_elide_set(), audit=audit)
        return True

    # -- serialization ---------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Canonical content, *excluding* the fingerprint."""
        return {
            "schema": self.schema,
            "sources": {path: self.sources[path]
                        for path in sorted(self.sources)},
            "confined": sorted(self.confined),
            "immutable": sorted(self.immutable),
            "locks": sorted(
                ({key: lock.get(key) for key in _LOCK_KEYS}
                 for lock in self.locks),
                key=lambda d: (str(d["path"]), int(d["line"] or 0),
                               str(d["var"]))),
            "skip_classes": self.skip_classes,
            "lock_owners": [list(pair) for pair in self.lock_owners],
        }

    @property
    def fingerprint(self) -> str:
        blob = json.dumps(self.payload(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, Any]:
        data = self.payload()
        data["fingerprint"] = self.fingerprint
        return data

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) \
            + "\n"

    @property
    def valid(self) -> bool:
        return self.schema == ELIDE_SCHEMA

    @staticmethod
    def from_dict(raw: Mapping[str, Any]) -> "ElideArtifact":
        sources_raw = raw.get("sources", {})
        sources = ({str(k): str(v) for k, v in sources_raw.items()}
                   if isinstance(sources_raw, Mapping) else {})
        locks_raw = raw.get("locks", [])
        locks: List[Dict[str, Any]] = []
        if isinstance(locks_raw, list):
            for lock in locks_raw:
                if isinstance(lock, Mapping):
                    locks.append({key: lock.get(key)
                                  for key in _LOCK_KEYS})
        def str_list(key: str) -> List[str]:
            value = raw.get(key, [])
            return ([str(c) for c in value]
                    if isinstance(value, list) else [])

        return ElideArtifact(
            schema=str(raw.get("schema", "")),
            sources=sources,
            confined=str_list("confined"),
            immutable=str_list("immutable"),
            locks=locks)


def build_artifact(emodel: Any,
                   sources: Sequence[Tuple[str, str]]) -> ElideArtifact:
    """Freeze an :class:`~repro.analyze.elide.model.ElideModel` (duck-
    typed to avoid importing the analysis into artifact consumers)."""
    return ElideArtifact(
        schema=ELIDE_SCHEMA,
        sources={path: source_sha(text) for path, text in sources},
        confined=sorted(emodel.confined),
        immutable=sorted(emodel.immutable),
        locks=[{"path": site.path, "line": site.line,
                "owner": site.owner, "var": site.var, "cls": site.cls,
                "elidable": site.elidable, "reason": site.reason}
               for site in emodel.lock_sites])


def load_artifact(source: Union[str, Path, Mapping[str, Any]]
                  ) -> ElideArtifact:
    """Load an elide artifact from a JSON file path or a parsed dict.

    Never raises on bad content — truncated, malformed, or unknown-
    schema files load with a wrong ``schema`` and fail ``valid``,
    which consumers treat as stale (elision silently disabled)."""
    if isinstance(source, Mapping):
        return ElideArtifact.from_dict(source)
    try:
        raw = json.loads(Path(source).read_text())
    except (OSError, ValueError):
        return ElideArtifact(schema="unreadable")
    if not isinstance(raw, dict):
        return ElideArtifact(schema="malformed")
    return ElideArtifact.from_dict(raw)
